//! Deterministic random-number plumbing.
//!
//! Experiments in this repository are reproducible: every simulation takes a
//! `u64` master seed, and per-agent / per-trial generators are derived with
//! [`SeedSequence`], a SplitMix64-based splitter. Two runs with the same
//! master seed produce bit-identical results regardless of agent count or
//! iteration order.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Advance a SplitMix64 state and return the next output word.
///
/// SplitMix64 is the standard generator for deriving independent seeds from
/// one master seed (Steele, Lea, Flood — OOPSLA 2014). It is not used for
/// sampling itself, only for seeding [`StdRng`] instances.
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives independent child seeds and generators from a master seed.
///
/// ```
/// use sprint_stats::rng::SeedSequence;
///
/// let mut seq = SeedSequence::new(42);
/// let a = seq.next_seed();
/// let b = seq.next_seed();
/// assert_ne!(a, b);
///
/// // Identical master seeds produce identical sequences.
/// let mut seq2 = SeedSequence::new(42);
/// assert_eq!(seq2.next_seed(), a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedSequence {
    state: u64,
}

impl SeedSequence {
    /// Create a sequence rooted at `master_seed`.
    #[must_use]
    pub fn new(master_seed: u64) -> Self {
        SeedSequence { state: master_seed }
    }

    /// Produce the next child seed.
    pub fn next_seed(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Produce a generator seeded with the next child seed.
    pub fn next_rng(&mut self) -> StdRng {
        StdRng::seed_from_u64(self.next_seed())
    }

    /// Derive a seed for a named stream without advancing this sequence.
    ///
    /// Useful when the same logical entity (e.g. agent `i` in trial `t`)
    /// must observe the same randomness across code paths.
    #[must_use]
    pub fn derive(&self, stream: u64) -> u64 {
        let mut s = self.state ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        splitmix64(&mut s)
    }
}

/// Build a deterministic generator from a master seed.
///
/// ```
/// use rand::Rng;
/// let mut rng = sprint_stats::rng::seeded_rng(7);
/// let x: f64 = rng.gen();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[must_use]
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Finalize a 64-bit word through the SplitMix64 avalanche function
/// (without the additive state step).
#[inline]
#[must_use]
fn finalize(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A stateless counter-based random stream: every draw is a pure
/// function of `(purpose key, agent, epoch, slot)`.
///
/// Unlike a sequential generator, draws consume no shared state, so any
/// subset of agents can be evaluated on any thread in any order — or
/// speculatively, then discarded — and the realized randomness is
/// bit-identical. This is the primitive behind the engine's
/// jobs-invariant parallel epoch loop: the *coordinates* of a draw, not
/// the order draws are made in, determine its value.
///
/// The mixing is three chained SplitMix64 avalanche rounds, one per
/// coordinate, each perturbed by a distinct odd multiplier so that
/// `(agent, epoch)` and `(epoch, agent)` never collide structurally.
///
/// ```
/// use sprint_stats::rng::CounterRng;
///
/// let stream = CounterRng::new(42, 7);
/// // Pure: same coordinates, same draw — in any order, on any thread.
/// assert_eq!(stream.word(3, 100, 0), stream.word(3, 100, 0));
/// assert_ne!(stream.word(3, 100, 0), stream.word(4, 100, 0));
/// let u = stream.uniform(3, 100, 0);
/// assert!((0.0..1.0).contains(&u));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CounterRng {
    key: u64,
}

impl CounterRng {
    /// Create a stream for one `(seed, purpose)` pair. Distinct purposes
    /// (crash churn, sensor noise, breaker trips, …) rooted at the same
    /// seed yield statistically independent streams.
    #[must_use]
    pub fn new(seed: u64, purpose: u64) -> Self {
        let mut state = seed ^ purpose.wrapping_mul(0xA24B_AED4_963E_E407);
        CounterRng {
            key: splitmix64(&mut state),
        }
    }

    /// The raw 64-bit draw at `(agent, epoch, slot)`.
    #[inline]
    #[must_use]
    pub fn word(&self, agent: u64, epoch: u64, slot: u64) -> u64 {
        let z = finalize(self.key ^ agent.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let z = finalize(z ^ epoch.wrapping_mul(0xD133_7B3B_24AF_F163));
        finalize(z ^ slot.wrapping_mul(0x8CB9_2BA7_2F3D_8DD7) ^ 0x6A09_E667_F3BC_C909)
    }

    /// A uniform draw in `[0, 1)` at `(agent, epoch, slot)`, using the
    /// same 53-bit mantissa scaling as the sequential generators.
    #[inline]
    #[must_use]
    pub fn uniform(&self, agent: u64, epoch: u64, slot: u64) -> f64 {
        (self.word(agent, epoch, slot) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// An unbiased-enough index in `[0, n)` via fixed-point 128-bit
    /// multiply (Lemire's multiply-shift; bias < 2⁻⁵⁹ for the small `n`
    /// used for stagger slots). Returns 0 when `n == 0`.
    #[inline]
    #[must_use]
    pub fn index(&self, agent: u64, epoch: u64, slot: u64, n: u64) -> u64 {
        ((u128::from(self.word(agent, epoch, slot)) * u128::from(n)) >> 64) as u64
    }

    /// A standard-normal draw at `(agent, epoch, slot)` via Box–Muller on
    /// the uniforms at slots `slot` and `slot + 1`.
    #[inline]
    #[must_use]
    pub fn normal(&self, agent: u64, epoch: u64, slot: u64) -> f64 {
        let u1 = self.uniform(agent, epoch, slot).max(f64::MIN_POSITIVE);
        let u2 = self.uniform(agent, epoch, slot + 1);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Pre-mix the `agent` coordinate into a [`CounterLane`], so a hot
    /// loop that draws many `(epoch, slot)` values for one agent pays the
    /// first avalanche round once instead of per draw. Draws through the
    /// lane are bit-identical to [`CounterRng::word`] at the same
    /// coordinates.
    #[inline]
    #[must_use]
    pub fn lane(&self, agent: u64) -> CounterLane {
        CounterLane {
            z1: finalize(self.key ^ agent.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }
}

/// A [`CounterRng`] with the agent coordinate already mixed in — the
/// per-agent handle the simulation engine stores in a flat lane. See
/// [`CounterRng::lane`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CounterLane {
    z1: u64,
}

impl CounterLane {
    /// The raw 64-bit draw at `(epoch, slot)` — identical to
    /// [`CounterRng::word`] for the lane's agent.
    #[inline]
    #[must_use]
    pub fn word(&self, epoch: u64, slot: u64) -> u64 {
        let z = finalize(self.z1 ^ epoch.wrapping_mul(0xD133_7B3B_24AF_F163));
        finalize(z ^ slot.wrapping_mul(0x8CB9_2BA7_2F3D_8DD7) ^ 0x6A09_E667_F3BC_C909)
    }

    /// A uniform draw in `[0, 1)` at `(epoch, slot)` — identical to
    /// [`CounterRng::uniform`] for the lane's agent.
    #[inline]
    #[must_use]
    pub fn uniform(&self, epoch: u64, slot: u64) -> f64 {
        (self.word(epoch, slot) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_known_values() {
        // Reference values from the SplitMix64 reference implementation
        // seeded with 0.
        let mut state = 0u64;
        assert_eq!(splitmix64(&mut state), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut state), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut state), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn sequences_are_reproducible() {
        let mut a = SeedSequence::new(123);
        let mut b = SeedSequence::new(123);
        for _ in 0..16 {
            assert_eq!(a.next_seed(), b.next_seed());
        }
    }

    #[test]
    fn different_masters_diverge() {
        let mut a = SeedSequence::new(1);
        let mut b = SeedSequence::new(2);
        let hits = (0..64).filter(|_| a.next_seed() == b.next_seed()).count();
        assert_eq!(hits, 0);
    }

    #[test]
    fn derive_is_stable_and_stream_dependent() {
        let seq = SeedSequence::new(99);
        assert_eq!(seq.derive(5), seq.derive(5));
        assert_ne!(seq.derive(5), seq.derive(6));
    }

    #[test]
    fn rngs_from_same_seed_agree() {
        let mut r1 = seeded_rng(77);
        let mut r2 = seeded_rng(77);
        for _ in 0..8 {
            assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
        }
    }

    #[test]
    fn counter_rng_is_pure_and_coordinate_sensitive() {
        let s = CounterRng::new(7, 3);
        assert_eq!(s.word(1, 2, 0), s.word(1, 2, 0));
        // Every coordinate matters.
        assert_ne!(s.word(1, 2, 0), s.word(2, 2, 0));
        assert_ne!(s.word(1, 2, 0), s.word(1, 3, 0));
        assert_ne!(s.word(1, 2, 0), s.word(1, 2, 1));
        // Swapped coordinates do not collide.
        assert_ne!(s.word(5, 9, 0), s.word(9, 5, 0));
        // Purpose and seed both separate streams.
        assert_ne!(CounterRng::new(7, 4).word(1, 2, 0), s.word(1, 2, 0));
        assert_ne!(CounterRng::new(8, 3).word(1, 2, 0), s.word(1, 2, 0));
    }

    #[test]
    fn counter_uniform_is_in_range_with_plausible_mean() {
        let s = CounterRng::new(123, 0);
        let mut sum = 0.0;
        const N: u64 = 20_000;
        for i in 0..N {
            let u = s.uniform(i, i / 7, 0);
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / N as f64;
        assert!((mean - 0.5).abs() < 0.01, "uniform mean {mean}");
    }

    #[test]
    fn counter_index_stays_in_bounds_and_covers() {
        let s = CounterRng::new(9, 1);
        let mut seen = [false; 8];
        for i in 0..512u64 {
            let k = s.index(i, 0, 0, 8);
            assert!(k < 8);
            seen[k as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "all 8 slots reachable");
        assert_eq!(s.index(1, 2, 3, 0), 0, "n = 0 maps to 0");
    }

    #[test]
    fn counter_normal_has_plausible_moments() {
        let s = CounterRng::new(55, 2);
        let (mut sum, mut sq) = (0.0, 0.0);
        const N: u64 = 20_000;
        for i in 0..N {
            let z = s.normal(i, 0, 0);
            sum += z;
            sq += z * z;
        }
        let mean = sum / N as f64;
        let var = sq / N as f64 - mean * mean;
        assert!(mean.abs() < 0.03, "normal mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "normal variance {var}");
    }

    #[test]
    fn next_rng_streams_are_independent() {
        let mut seq = SeedSequence::new(0xDEAD_BEEF);
        let mut r1 = seq.next_rng();
        let mut r2 = seq.next_rng();
        // Not a statistical test; just confirms the streams are not identical.
        let same = (0..32)
            .filter(|_| r1.gen::<u64>() == r2.gen::<u64>())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn lane_draws_match_counter_rng() {
        let rng = CounterRng::new(0xDEAD_BEEF, 8);
        for agent in [0u64, 1, 7, 1_000_003] {
            let lane = rng.lane(agent);
            for epoch in [0u64, 1, 63, u64::MAX] {
                for slot in [0u64, 1, 2] {
                    assert_eq!(lane.word(epoch, slot), rng.word(agent, epoch, slot));
                    assert_eq!(
                        lane.uniform(epoch, slot).to_bits(),
                        rng.uniform(agent, epoch, slot).to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn lanes_of_distinct_agents_differ() {
        let rng = CounterRng::new(5, 8);
        let words: Vec<u64> = (0..64).map(|a| rng.lane(a).word(0, 0)).collect();
        let mut sorted = words.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), words.len());
    }
}
