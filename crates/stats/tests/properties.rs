//! Property-based tests for the numerical substrate.

use proptest::prelude::*;

use sprint_stats::dist::{ContinuousDistribution, LogNormal, Mixture, TruncatedNormal, Uniform};
use sprint_stats::histogram::Histogram;
use sprint_stats::kde::{kernel_density_with_bandwidth, silverman_bandwidth};
use sprint_stats::markov::MarkovChain;
use sprint_stats::rng::{seeded_rng, SeedSequence};
use sprint_stats::summary::{confidence_interval_95, percentile, OnlineStats};

fn arb_uniform() -> impl Strategy<Value = Uniform> {
    (-100.0f64..100.0, 0.1f64..100.0)
        .prop_map(|(lo, width)| Uniform::new(lo, lo + width).expect("valid bounds"))
}

fn arb_truncated_normal() -> impl Strategy<Value = TruncatedNormal> {
    (-10.0f64..10.0, 0.1f64..5.0, 0.5f64..8.0).prop_map(|(mu, sigma, half)| {
        TruncatedNormal::new(mu, sigma, mu - half, mu + half).expect("valid truncation")
    })
}

proptest! {
    #[test]
    fn uniform_cdf_bounds_and_monotonicity(u in arb_uniform(), a in -200.0f64..200.0, b in -200.0f64..200.0) {
        let (x, y) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(u.cdf(x) <= u.cdf(y) + 1e-12);
        prop_assert!((0.0..=1.0).contains(&u.cdf(a)));
    }

    #[test]
    fn truncated_normal_mean_inside_support(d in arb_truncated_normal()) {
        let (lo, hi) = d.support();
        let m = d.mean();
        prop_assert!(m >= lo && m <= hi);
        prop_assert!(d.cdf(lo) <= 1e-12);
        prop_assert!((d.cdf(hi) - 1.0).abs() <= 1e-9);
    }

    #[test]
    fn samples_stay_in_support(d in arb_truncated_normal(), seed in 0u64..1000) {
        let mut rng = seeded_rng(seed);
        let (lo, hi) = d.support();
        for _ in 0..64 {
            let x = d.sample(&mut rng);
            prop_assert!((lo..=hi).contains(&x));
        }
    }

    #[test]
    fn lognormal_median_is_exp_mu(mu in -2.0f64..2.0, sigma in 0.05f64..1.5) {
        let d = LogNormal::new(mu, sigma).expect("valid sigma");
        // cdf(exp(mu)) = 1/2 for any sigma.
        prop_assert!((d.cdf(mu.exp()) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn mixture_cdf_between_component_cdfs(
        w in 0.0f64..1.0,
        x in -50.0f64..50.0,
    ) {
        let a = Uniform::new(-10.0, 0.0).expect("valid");
        let b = Uniform::new(0.0, 10.0).expect("valid");
        let ca = a.cdf(x);
        let cb = b.cdf(x);
        let m = Mixture::new(
            vec![Box::new(a), Box::new(b)],
            vec![1.0 - w, w],
        )
        .expect("valid mixture");
        let cm = m.cdf(x);
        prop_assert!(cm >= ca.min(cb) - 1e-12 && cm <= ca.max(cb) + 1e-12);
    }

    #[test]
    fn histogram_counts_everything(
        samples in prop::collection::vec(-100.0f64..100.0, 1..200),
        bins in 1usize..64,
    ) {
        let h = Histogram::from_samples(&samples, bins).expect("valid samples");
        prop_assert_eq!(h.count(), samples.len() as u64);
        let mass: f64 = h.densities().iter().map(|d| d * h.bin_width()).sum();
        prop_assert!((mass - 1.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles_are_monotone(
        samples in prop::collection::vec(0.0f64..10.0, 2..100),
        qa in 0.0f64..1.0,
        qb in 0.0f64..1.0,
    ) {
        let h = Histogram::from_samples(&samples, 16).expect("valid samples");
        let (lo_q, hi_q) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        prop_assert!(h.quantile(lo_q).unwrap() <= h.quantile(hi_q).unwrap() + 1e-9);
    }

    #[test]
    fn kde_integrates_to_one(
        samples in prop::collection::vec(-5.0f64..5.0, 2..100),
        bw in 0.05f64..2.0,
    ) {
        let d = kernel_density_with_bandwidth(&samples, 128, bw).expect("valid inputs");
        prop_assert!((d.total_mass() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn silverman_bandwidth_positive(samples in prop::collection::vec(-50.0f64..50.0, 1..100)) {
        prop_assert!(silverman_bandwidth(&samples).expect("non-empty") > 0.0);
    }

    #[test]
    fn markov_stationary_is_fixed_point(
        rows in prop::collection::vec(
            prop::collection::vec(0.05f64..1.0, 3),
            3,
        ),
    ) {
        let p: Vec<Vec<f64>> = rows
            .into_iter()
            .map(|r| {
                let s: f64 = r.iter().sum();
                r.into_iter().map(|x| x / s).collect()
            })
            .collect();
        let mc = MarkovChain::new(p).expect("normalized rows");
        let pi = mc.stationary_direct().expect("irreducible by construction");
        let stepped = mc.step(&pi).expect("matching dimension");
        for (a, b) in pi.iter().zip(&stepped) {
            prop_assert!((a - b).abs() < 1e-8);
        }
        prop_assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn online_stats_merge_is_order_independent(
        a in prop::collection::vec(-100.0f64..100.0, 0..50),
        b in prop::collection::vec(-100.0f64..100.0, 0..50),
    ) {
        let mut ab: OnlineStats = a.iter().copied().collect();
        let sb: OnlineStats = b.iter().copied().collect();
        ab.merge(&sb);
        let mut ba: OnlineStats = b.iter().copied().collect();
        let sa: OnlineStats = a.iter().copied().collect();
        ba.merge(&sa);
        prop_assert_eq!(ab.count(), ba.count());
        prop_assert!((ab.mean() - ba.mean()).abs() < 1e-9);
        prop_assert!((ab.variance() - ba.variance()).abs() < 1e-7);
    }

    #[test]
    fn percentile_brackets_extremes(data in prop::collection::vec(-10.0f64..10.0, 1..60)) {
        let min = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(percentile(&data, 0.0).unwrap(), min);
        prop_assert_eq!(percentile(&data, 100.0).unwrap(), max);
        let p50 = percentile(&data, 50.0).unwrap();
        prop_assert!((min..=max).contains(&p50));
    }

    #[test]
    fn confidence_interval_brackets_the_sample_mean(
        data in prop::collection::vec(-10.0f64..10.0, 2..60),
    ) {
        let ci = confidence_interval_95(&data).expect("enough samples");
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        prop_assert!(ci.contains(mean));
        prop_assert!(ci.half_width >= 0.0);
    }

    #[test]
    fn seed_sequences_never_collide_within_a_run(master in 0u64..u64::MAX, n in 2usize..64) {
        let mut seq = SeedSequence::new(master);
        let seeds: Vec<u64> = (0..n).map(|_| seq.next_seed()).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        prop_assert_eq!(unique.len(), seeds.len());
    }
}
