//! Property-based tests for the folk-theorem enforcement analysis
//! (§6.4): the grim-trigger sustainability condition must be monotone
//! in the discount factor, and the best response can never be worse
//! than conforming.

use proptest::prelude::*;

use sprint_game::cooperative::CooperativeSearch;
use sprint_game::folk::{analyze_deviation, punishment_sustains_cooperation};
use sprint_game::GameConfig;
use sprint_workloads::Benchmark;

fn arb_benchmark() -> impl Strategy<Value = Benchmark> {
    prop::sample::select(Benchmark::ALL.to_vec())
}

fn config(p_recovery: f64, discount: f64) -> GameConfig {
    GameConfig::builder()
        .p_recovery(p_recovery)
        .discount(discount)
        .build()
        .expect("generated parameters are in-domain")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Patience only ever helps the threat: if banning deviators
    /// sustains cooperation at some discount factor, it sustains it at
    /// every higher discount factor (`u_max − u_T < δ·V_conform` has an
    /// increasing right-hand side in `δ`).
    #[test]
    fn punishment_sustainability_is_monotone_in_discount(
        b in arb_benchmark(),
        pr in 0.5f64..=1.0,
        d_lo in 0.5f64..0.99,
        step in 0.001f64..0.4,
    ) {
        let d_hi = (d_lo + step).min(0.995);
        let density = b.utility_density(128).expect("valid bins");
        let ct = CooperativeSearch::default_resolution()
            .solve(&config(pr, d_lo), &density)
            .expect("cooperative search converges")
            .threshold;
        let lo = punishment_sustains_cooperation(&config(pr, d_lo), &density, ct)
            .expect("solver converges");
        let hi = punishment_sustains_cooperation(&config(pr, d_hi), &density, ct)
            .expect("solver converges");
        prop_assert!(
            !lo || hi,
            "sustained at discount {d_lo} but not at {d_hi} (threshold {ct})"
        );
    }

    /// The deviator's best response is found by optimizing over all
    /// thresholds, so it can never pay less than conforming to the
    /// cooperative assignment: the one-shot gain is non-negative.
    #[test]
    fn deviation_gain_is_non_negative_at_the_cooperative_threshold(
        b in arb_benchmark(),
        pr in 0.5f64..=1.0,
        discount in 0.5f64..0.995,
    ) {
        let cfg = config(pr, discount);
        let density = b.utility_density(128).expect("valid bins");
        let ct = CooperativeSearch::default_resolution()
            .solve(&cfg, &density)
            .expect("cooperative search converges")
            .threshold;
        let dev = analyze_deviation(&cfg, &density, ct).expect("solver converges");
        prop_assert!(
            dev.deviation_gain() >= -1e-9,
            "best response {} pays {} less than conforming at {}",
            dev.best_response_threshold,
            -dev.deviation_gain(),
            ct
        );
    }
}
