//! Property tests for the retry/backoff schedule ([`sprint_game::retry`]).
//!
//! The control plane leans on three guarantees: delays never shrink
//! (monotone non-decreasing), the cap is absolute (jitter can never
//! push past `max_delay`), and equal seeds yield bit-identical jitter
//! sequences (determinism survives the randomization).

use proptest::prelude::*;
use sprint_game::RetryPolicy;

fn policies() -> impl Strategy<Value = RetryPolicy> {
    (1u32..12, 0u32..64, 0u32..512, 0.0f64..=1.0).prop_map(
        |(max_attempts, base_delay, max_delay, jitter)| RetryPolicy {
            max_attempts,
            base_delay,
            max_delay,
            jitter,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn delays_are_monotone_nondecreasing(policy in policies(), seed in 0u64..u64::MAX) {
        let delays: Vec<u32> = policy.schedule(seed).collect();
        prop_assert_eq!(delays.len(), policy.retries() as usize);
        for pair in delays.windows(2) {
            prop_assert!(
                pair[0] <= pair[1],
                "delay shrank: {} then {} in {:?}",
                pair[0],
                pair[1],
                delays
            );
        }
    }

    #[test]
    fn jitter_never_pushes_past_the_cap(policy in policies(), seed in 0u64..u64::MAX) {
        for (i, delay) in policy.schedule(seed).enumerate() {
            prop_assert!(
                delay <= policy.max_delay,
                "delay #{i} = {delay} exceeds cap {}",
                policy.max_delay
            );
        }
    }

    #[test]
    fn equal_seeds_are_bit_identical(policy in policies(), seed in 0u64..u64::MAX) {
        let a: Vec<u32> = policy.schedule(seed).collect();
        let b: Vec<u32> = policy.schedule(seed).collect();
        prop_assert_eq!(a, b, "same seed must replay the same jitter");
    }

    #[test]
    fn unjittered_schedules_are_pure_binary_exponential(
        (max_attempts, base, cap) in (1u32..12, 1u32..64, 1u32..512),
        seed in 0u64..u64::MAX,
    ) {
        let policy = RetryPolicy { max_attempts, base_delay: base, max_delay: cap, jitter: 0.0 };
        for (i, delay) in policy.schedule(seed).enumerate() {
            let expected = u64::from(base)
                .checked_shl(u32::try_from(i).unwrap())
                .map_or(u64::from(cap), |raw| raw.min(u64::from(cap)));
            prop_assert_eq!(u64::from(delay), expected);
        }
    }
}
