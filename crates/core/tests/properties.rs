//! Property-based tests for the game's solvers and equilibrium concepts.

use proptest::prelude::*;

use sprint_game::bellman::{self, BellmanMethod};
use sprint_game::cooperative::analytic_throughput;
use sprint_game::meanfield::MeanFieldSolver;
use sprint_game::sprint_dist::SprintDistribution;
use sprint_game::GameConfig;
use sprint_telemetry::Telemetry;
use sprint_workloads::Benchmark;

fn arb_benchmark() -> impl Strategy<Value = Benchmark> {
    prop::sample::select(Benchmark::ALL.to_vec())
}

fn arb_config() -> impl Strategy<Value = GameConfig> {
    (
        0.0f64..0.9,   // p_cooling
        0.0f64..=1.0,  // p_recovery
        0.5f64..0.995, // discount
        10.0f64..400.0,
        50.0f64..500.0,
    )
        .prop_map(|(pc, pr, d, n_min, width)| {
            GameConfig::builder()
                .p_cooling(pc)
                .p_recovery(pr)
                .discount(d)
                .n_min(n_min)
                .n_max(n_min + width)
                .build()
                .expect("generated parameters are in-domain")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bellman_solvers_agree(
        b in arb_benchmark(),
        p_trip in 0.0f64..=1.0,
    ) {
        let cfg = GameConfig::paper_defaults();
        let d = b.utility_density(128).expect("valid bins");
        let vi = bellman::solve_value_iteration(&cfg, &d, p_trip, 1e-11, 2_000_000)
            .expect("value iteration converges");
        let pi = bellman::solve_policy_iteration(&cfg, &d, p_trip, 1e-11, 10_000)
            .expect("policy iteration converges");
        prop_assert!(
            (vi.threshold - pi.threshold).abs() < 1e-4,
            "VI {} vs PI {}",
            vi.threshold,
            pi.threshold
        );
    }

    #[test]
    fn value_functions_scale_sensibly(cfg in arb_config(), b in arb_benchmark()) {
        let d = b.utility_density(128).expect("valid bins");
        let sol = bellman::solve(&cfg, &d, 0.1, BellmanMethod::PolicyIteration)
            .expect("solver converges");
        // Discounted utility streams are bounded by u_max/(1 − δ).
        let bound = d.hi() / (1.0 - cfg.discount());
        prop_assert!(sol.values.v_active <= bound + 1e-6);
        prop_assert!(sol.values.v_active >= 0.0);
        prop_assert!(sol.threshold >= 0.0 && sol.threshold <= d.hi());
    }

    #[test]
    fn equilibrium_is_internally_consistent(b in arb_benchmark()) {
        let cfg = GameConfig::paper_defaults();
        let d = b.utility_density(256).expect("valid bins");
        let eq = MeanFieldSolver::new(cfg)
            .run(&d, &mut Telemetry::noop())
            .expect("equilibrium exists");
        // Equations 9-10 recompose.
        let dist = SprintDistribution::from_sprint_probability(&cfg, eq.sprint_probability())
            .expect("valid probability");
        prop_assert!((dist.expected_sprinters - eq.expected_sprinters()).abs() < 1e-6);
        // The verification passes.
        let check = eq.verify(&cfg, &d, 40).expect("verification runs");
        prop_assert!(check.holds(1e-3), "{check:?}");
    }

    #[test]
    fn threshold_monotone_in_cooling_persistence(b in arb_benchmark(), p_trip in 0.0f64..0.9) {
        let d = b.utility_density(128).expect("valid bins");
        let t_at = |pc: f64| {
            let cfg = GameConfig::builder().p_cooling(pc).build().expect("valid");
            bellman::solve(&cfg, &d, p_trip, BellmanMethod::PolicyIteration)
                .expect("solver converges")
                .threshold
        };
        prop_assert!(t_at(0.2) <= t_at(0.6) + 1e-6);
        prop_assert!(t_at(0.6) <= t_at(0.9) + 1e-6);
    }

    #[test]
    fn analytic_throughput_at_least_recovers_baseline(
        cfg in arb_config(),
        b in arb_benchmark(),
    ) {
        let d = b.utility_density(128).expect("valid bins");
        // Never sprinting scores exactly 1; the cooperative optimum can
        // only improve on it.
        let never = analytic_throughput(&cfg, &d, d.hi() + 1.0).expect("valid threshold");
        prop_assert!((never.tasks_per_epoch - 1.0).abs() < 1e-9);
        let best = sprint_game::cooperative::CooperativeSearch::default_resolution()
            .solve(&cfg, &d)
            .expect("search succeeds");
        prop_assert!(best.throughput.tasks_per_epoch >= 1.0 - 1e-9);
    }

    #[test]
    fn throughput_zero_only_under_infinite_recovery(
        b in arb_benchmark(),
        threshold in 0.0f64..4.0,
    ) {
        let cfg = GameConfig::builder().p_recovery(1.0).build().expect("valid");
        let t = analytic_throughput(&cfg, &d_of(b), threshold).expect("valid threshold");
        if t.p_trip > 0.0 {
            prop_assert_eq!(t.tasks_per_epoch, 0.0);
        } else {
            prop_assert!(t.tasks_per_epoch >= 1.0 - 1e-9);
        }
    }
}

fn d_of(b: Benchmark) -> sprint_stats::density::DiscreteDensity {
    b.utility_density(128).expect("valid bins")
}

proptest! {
    #[test]
    fn equation11_band_semantics(
        n_min in 10.0f64..400.0,
        width in 1.0f64..500.0,
        frac in 0.0f64..=1.0,
        n1 in 0.0f64..1200.0,
        n2 in 0.0f64..1200.0,
    ) {
        let c = sprint_game::trip::TripCurve::new(n_min, n_min + width);
        // Exactly 0 at and below N_min; exactly 1 at and above N_max.
        prop_assert_eq!(c.p_trip(n_min), 0.0);
        prop_assert_eq!(c.p_trip(n_min * frac), 0.0);
        prop_assert_eq!(c.p_trip(c.n_max()), 1.0);
        prop_assert_eq!(c.p_trip(c.n_max() * (1.0 + frac)), 1.0);
        // Monotone non-decreasing and bounded.
        let (lo, hi) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
        prop_assert!(c.p_trip(lo) <= c.p_trip(hi));
        prop_assert!((0.0..=1.0).contains(&c.p_trip(n1)));
    }

    #[test]
    fn equation11_stable_under_drift(
        n_min in 10.0f64..400.0,
        width in 1.0f64..500.0,
        shift in -0.9f64..1.0,
        n in 0.0f64..1200.0,
    ) {
        let c = sprint_game::trip::TripCurve::new(n_min, n_min + width);
        let d = c.with_band_shift(shift);
        // Band edges scale by exactly 1 + shift, and the drifted curve
        // keeps Equation 11's exact boundary semantics.
        prop_assert!((d.n_min() - n_min * (1.0 + shift)).abs() < 1e-9);
        prop_assert_eq!(d.p_trip(d.n_min()), 0.0);
        prop_assert_eq!(d.p_trip(d.n_max()), 1.0);
        prop_assert!((0.0..=1.0).contains(&d.p_trip(n)));
        // A breaker that trips early can only raise the trip probability;
        // one that trips late can only lower it.
        let (base, drifted) = (c.p_trip(n), d.p_trip(n));
        if shift <= 0.0 {
            prop_assert!(drifted >= base - 1e-12);
        } else {
            prop_assert!(drifted <= base + 1e-12);
        }
    }
}
