//! The coordinator's offline analysis (paper §2.3 and Figure 4).
//!
//! Agents send performance profiles (utility densities) to the
//! coordinator; the coordinator runs Algorithm 1 over the population and
//! returns a tailored threshold strategy to each agent. Communication is
//! infrequent — "global communication between agents and the coordinator
//! ... occurs only when system profiles change" — because the assigned
//! strategies form an equilibrium that agents self-enforce.

use sprint_stats::density::DiscreteDensity;
use sprint_telemetry::{Event, Recorder, Telemetry};

use crate::config::GameConfig;
use crate::meanfield::SolverOptions;
use crate::multi::{AgentTypeSpec, HeterogeneousEquilibrium, MultiSolver};
use crate::threshold::ThresholdStrategy;
use crate::GameError;

/// The rack coordinator: collects profiles, optimizes strategies.
#[derive(Debug, Clone, PartialEq)]
pub struct Coordinator {
    config: GameConfig,
    options: SolverOptions,
    profiles: Vec<AgentTypeSpec>,
}

impl Coordinator {
    /// Create a coordinator for a rack configuration.
    #[must_use]
    pub fn new(config: GameConfig) -> Self {
        Coordinator {
            config,
            options: SolverOptions::default(),
            profiles: Vec::new(),
        }
    }

    /// Create a coordinator with explicit solver options.
    #[must_use]
    pub fn with_options(config: GameConfig, options: SolverOptions) -> Self {
        Coordinator {
            config,
            options,
            profiles: Vec::new(),
        }
    }

    /// The rack's game configuration.
    #[must_use]
    pub fn config(&self) -> &GameConfig {
        &self.config
    }

    /// Register (or replace) the profile for an application type.
    ///
    /// Agents report densities estimated from sampled epochs (§4.4,
    /// "Offline Analysis"); re-registering a name replaces its profile,
    /// which is how evolving application mixes trigger re-optimization.
    pub fn register_profile(
        &mut self,
        name: impl Into<String>,
        density: DiscreteDensity,
        count: u32,
    ) {
        let name = name.into();
        if let Some(existing) = self.profiles.iter_mut().find(|p| p.name == name) {
            existing.density = density;
            existing.count = count;
        } else {
            self.profiles.push(AgentTypeSpec::new(name, density, count));
        }
    }

    /// Registered profile count.
    #[must_use]
    pub fn profile_count(&self) -> usize {
        self.profiles.len()
    }

    /// Run the offline analysis: solve the (possibly heterogeneous)
    /// mean-field game and produce per-type strategy assignments — the
    /// unified entry point (pass [`Telemetry::noop()`] for an unobserved
    /// solve).
    ///
    /// With an enabled kit this emits one [`Event::CoordinatorResolve`]
    /// summarizing the completed solve (type count, iterations, residual,
    /// advertised trip probability); results are bit-identical with
    /// telemetry on or off.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidParameter`] when no profiles are
    /// registered or counts do not sum to `N`, and
    /// [`GameError::NoEquilibrium`] when the solve fails.
    pub fn run(&self, telemetry: &mut Telemetry) -> crate::Result<StrategyAssignments> {
        self.optimize_impl(telemetry.recorder())
    }

    fn optimize_impl(&self, recorder: &mut dyn Recorder) -> crate::Result<StrategyAssignments> {
        if self.profiles.is_empty() {
            return Err(GameError::InvalidParameter {
                name: "profiles",
                value: 0.0,
                expected: "at least one registered profile",
            });
        }
        let equilibrium =
            MultiSolver::with_options(self.config, self.options).solve(&self.profiles)?;
        if recorder.enabled() {
            recorder.record(&Event::CoordinatorResolve {
                types: self.profiles.len(),
                converged: true,
                iterations: equilibrium.iterations(),
                residual: equilibrium.residual(),
                trip_probability: equilibrium.trip_probability(),
            });
        }
        Ok(StrategyAssignments { equilibrium })
    }
}

/// Optimized strategies for every registered application type.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyAssignments {
    equilibrium: HeterogeneousEquilibrium,
}

impl StrategyAssignments {
    /// The underlying heterogeneous equilibrium.
    #[must_use]
    pub fn equilibrium(&self) -> &HeterogeneousEquilibrium {
        &self.equilibrium
    }

    /// The strategy assigned to an application type, by name.
    #[must_use]
    pub fn strategy_for(&self, name: &str) -> Option<ThresholdStrategy> {
        self.equilibrium.type_named(name).map(|t| t.strategy())
    }

    /// The stationary tripping probability the coordinator advertises.
    #[must_use]
    pub fn trip_probability(&self) -> f64 {
        self.equilibrium.trip_probability()
    }

    /// Iterate over `(type name, strategy)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, ThresholdStrategy)> + '_ {
        self.equilibrium
            .types()
            .iter()
            .map(|t| (t.name.as_str(), t.strategy()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprint_workloads::Benchmark;

    #[test]
    fn empty_coordinator_errors() {
        let c = Coordinator::new(GameConfig::paper_defaults());
        assert!(c.run(&mut Telemetry::noop()).is_err());
        assert_eq!(c.profile_count(), 0);
    }

    #[test]
    fn registers_and_replaces_profiles() {
        let mut c = Coordinator::new(GameConfig::paper_defaults());
        c.register_profile(
            "decision",
            Benchmark::DecisionTree.utility_density(256).unwrap(),
            600,
        );
        c.register_profile(
            "pagerank",
            Benchmark::PageRank.utility_density(256).unwrap(),
            400,
        );
        assert_eq!(c.profile_count(), 2);
        // Replace, not duplicate.
        c.register_profile(
            "decision",
            Benchmark::DecisionTree.utility_density(256).unwrap(),
            600,
        );
        assert_eq!(c.profile_count(), 2);
    }

    #[test]
    fn optimize_assigns_tailored_strategies() {
        let mut c = Coordinator::new(GameConfig::paper_defaults());
        c.register_profile(
            "linear",
            Benchmark::LinearRegression.utility_density(512).unwrap(),
            500,
        );
        c.register_profile(
            "pagerank",
            Benchmark::PageRank.utility_density(512).unwrap(),
            500,
        );
        let assignments = c.run(&mut Telemetry::noop()).unwrap();
        let linear = assignments.strategy_for("linear").unwrap();
        let pagerank = assignments.strategy_for("pagerank").unwrap();
        assert!(pagerank.threshold() > linear.threshold());
        assert!(assignments.strategy_for("nosuch").is_none());
        assert_eq!(assignments.iter().count(), 2);
        assert!((0.0..=1.0).contains(&assignments.trip_probability()));
    }

    #[test]
    fn observed_optimize_emits_a_resolve_event() {
        use sprint_telemetry::EventKind;

        let mut c = Coordinator::new(GameConfig::paper_defaults());
        c.register_profile("svm", Benchmark::Svm.utility_density(256).unwrap(), 1000);
        let mut kit = Telemetry::in_memory();
        let assignments = c.run(&mut kit).unwrap();
        let events = kit.events().unwrap().to_vec();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind(), EventKind::CoordinatorResolve);
        match &events[0] {
            Event::CoordinatorResolve {
                types,
                converged,
                trip_probability,
                ..
            } => {
                assert_eq!(*types, 1);
                assert!(*converged);
                assert!((trip_probability - assignments.trip_probability()).abs() < 1e-15);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn counts_must_cover_the_rack() {
        let mut c = Coordinator::new(GameConfig::paper_defaults());
        c.register_profile("svm", Benchmark::Svm.utility_density(256).unwrap(), 123);
        assert!(
            c.run(&mut Telemetry::noop()).is_err(),
            "counts must sum to N = 1000"
        );
    }
}
