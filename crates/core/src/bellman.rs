//! Dynamic-programming solution of the agent's Bellman equation
//! (paper Equations 1–8).
//!
//! Given the population's tripping probability `P_trip` and the agent's
//! utility density `f(u)`, the agent maximizes expected discounted utility:
//!
//! ```text
//! V(u, A) = max{ V_S(u, A), V_¬S(u, A) }                        (1)
//! V_S(u, A)  = u + δ [ V(C)(1 − P) + V(R) P ]                   (2)
//! V_¬S(u, A) =     δ [ V(A)(1 − P) + V(R) P ]                   (3)
//! V(A) = ∫ V(u, A) f(u) du                                      (4)
//! V(C) = δ [V(C) p_c + V(A)(1 − p_c)](1 − P) + δ V(R) P         (5)
//! V(R) = δ [V(R) p_r + V(A)(1 − p_r)]                           (6)
//! ```
//!
//! The optimal policy is a threshold: sprint iff
//! `u > u_T = δ (V(A) − V(C)) (1 − P)` (Equation 8).
//!
//! Two solvers are provided and cross-validated:
//!
//! - [`solve_value_iteration`] — the paper's method ("the game solves the
//!   dynamic program with value-iteration, which has a convergence rate
//!   that depends on the discount factor", §4.4). Robust, `O((1−δ)^{-1})`
//!   iterations.
//! - [`solve_policy_iteration`] — our refinement: for a *fixed* threshold
//!   the three value equations are linear and solvable in closed form
//!   ([`evaluate_threshold_policy`]), so iterating on the scalar threshold
//!   converges in a handful of steps. This is the ablation DESIGN.md
//!   calls out; `perf_solver` benchmarks both.

use sprint_stats::density::DiscreteDensity;

use crate::config::GameConfig;
use crate::GameError;

/// Default absolute tolerance on value/threshold fixed points.
pub const DEFAULT_TOLERANCE: f64 = 1e-10;

/// Default iteration budget.
pub const DEFAULT_MAX_ITERATIONS: usize = 200_000;

/// Expected values of the three agent states.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ValueFunctions {
    /// `V(A)`: expected value of being active.
    pub v_active: f64,
    /// `V(C)`: expected value of cooling.
    pub v_cooling: f64,
    /// `V(R)`: expected value of recovery.
    pub v_recovery: f64,
}

impl ValueFunctions {
    /// The sprint threshold these values imply at tripping probability
    /// `p_trip` (Equation 8).
    #[must_use]
    pub fn threshold(&self, config: &GameConfig, p_trip: f64) -> f64 {
        (config.discount() * (self.v_active - self.v_cooling) * (1.0 - p_trip)).max(0.0)
    }
}

/// A solved Bellman equation: optimal values, threshold, iteration count.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BellmanSolution {
    /// Optimal state values.
    pub values: ValueFunctions,
    /// Optimal sprint threshold `u_T`.
    pub threshold: f64,
    /// Iterations used by the solver.
    pub iterations: usize,
}

/// Which dynamic-programming solver to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BellmanMethod {
    /// Paper's value iteration over the discretized utility grid.
    ValueIteration,
    /// Threshold-policy fixed point with closed-form policy evaluation
    /// (default; orders of magnitude faster at equal accuracy).
    #[default]
    PolicyIteration,
}

fn validate_p_trip(p_trip: f64) -> crate::Result<()> {
    if !(0.0..=1.0).contains(&p_trip) {
        return Err(GameError::InvalidParameter {
            name: "p_trip",
            value: p_trip,
            expected: "a probability in [0, 1]",
        });
    }
    Ok(())
}

/// Exactly evaluate the threshold policy "sprint iff `u > threshold`"
/// (closed-form solution of the linear Equations 2–6 for a fixed policy).
///
/// This is *policy evaluation*, not optimization: it reports the value an
/// agent obtains by following an arbitrary threshold while the rest of the
/// system behaves as summarized by `p_trip`. The equilibrium verifier uses
/// it to check that no unilateral threshold deviation is profitable.
///
/// # Errors
///
/// Returns [`GameError::InvalidParameter`] for `p_trip` outside `[0, 1]`.
pub fn evaluate_threshold_policy(
    config: &GameConfig,
    density: &DiscreteDensity,
    p_trip: f64,
    threshold: f64,
) -> crate::Result<ValueFunctions> {
    validate_p_trip(p_trip)?;
    let d = config.discount();
    let pc = config.p_cooling();
    let pr = config.p_recovery();
    let p = p_trip;

    let ps = density.tail_mass(threshold);
    let gain = density.partial_expectation(threshold);

    // V(R) = r · V(A) with r = δ(1 − p_r) / (1 − δ p_r).
    let r = d * (1.0 - pr) / (1.0 - d * pr);
    // V(C) = c · V(A) from Equation 5.
    let c = (d * (1.0 - p) * (1.0 - pc) + d * p * r) / (1.0 - d * (1.0 - p) * pc);
    // V(A) = G + a · V(A) from Equations 2–4 under the fixed policy.
    let a = d * (1.0 - p) * (1.0 - ps) + d * (1.0 - p) * ps * c + d * p * r;
    debug_assert!(a < 1.0, "contraction modulus must stay below 1");
    let v_active = gain / (1.0 - a);
    Ok(ValueFunctions {
        v_active,
        v_cooling: c * v_active,
        v_recovery: r * v_active,
    })
}

/// Solve the Bellman equation by the paper's value iteration.
///
/// Iterates Equations 2–6 over the discretized density until the state
/// values move less than `tol`, then reads the threshold from Equation 8.
///
/// # Errors
///
/// Returns [`GameError::InvalidParameter`] for an invalid `p_trip` and
/// [`GameError::NoEquilibrium`] if `max_iter` is exhausted (which, for a
/// valid `δ < 1`, indicates a tolerance below floating-point resolution).
pub fn solve_value_iteration(
    config: &GameConfig,
    density: &DiscreteDensity,
    p_trip: f64,
    tol: f64,
    max_iter: usize,
) -> crate::Result<BellmanSolution> {
    validate_p_trip(p_trip)?;
    let d = config.discount();
    let pc = config.p_cooling();
    let pr = config.p_recovery();
    let p = p_trip;

    let mut va = 0.0f64;
    let mut vc = 0.0f64;
    let mut vr = 0.0f64;
    for it in 0..max_iter {
        // Continuation values for the two actions.
        let cont_sprint = d * (vc * (1.0 - p) + vr * p);
        let cont_stay = d * (va * (1.0 - p) + vr * p);
        // V(A) = ∫ max(u + cont_sprint, cont_stay) f(u) du. The max tips
        // at u* = cont_stay − cont_sprint (= u_T by Equation 8).
        let u_star = (cont_stay - cont_sprint).max(0.0);
        let ps = density.tail_mass(u_star);
        let gain = density.partial_expectation(u_star);
        let va_next = gain + ps * cont_sprint + (1.0 - ps) * cont_stay;
        let vc_next = d * (vc * pc + va * (1.0 - pc)) * (1.0 - p) + d * vr * p;
        let vr_next = d * (vr * pr + va * (1.0 - pr));

        let residual = (va_next - va)
            .abs()
            .max((vc_next - vc).abs())
            .max((vr_next - vr).abs());
        va = va_next;
        vc = vc_next;
        vr = vr_next;
        if residual < tol {
            let values = ValueFunctions {
                v_active: va,
                v_cooling: vc,
                v_recovery: vr,
            };
            return Ok(BellmanSolution {
                threshold: values.threshold(config, p),
                values,
                iterations: it + 1,
            });
        }
    }
    Err(GameError::NoEquilibrium {
        iterations: max_iter,
        residual: f64::NAN,
    })
}

/// Solve the Bellman equation by threshold-policy iteration.
///
/// Repeats: evaluate the current threshold in closed form
/// ([`evaluate_threshold_policy`]), then improve the threshold via
/// Equation 8. Damped (averaged) updates guarantee convergence of the
/// scalar fixed point.
///
/// # Errors
///
/// Returns [`GameError::InvalidParameter`] for an invalid `p_trip` and
/// [`GameError::NoEquilibrium`] if the threshold fails to settle within
/// `max_iter` iterations.
pub fn solve_policy_iteration(
    config: &GameConfig,
    density: &DiscreteDensity,
    p_trip: f64,
    tol: f64,
    max_iter: usize,
) -> crate::Result<BellmanSolution> {
    validate_p_trip(p_trip)?;
    let mut threshold = 0.0f64;
    let mut last_residual = f64::INFINITY;
    for it in 0..max_iter {
        let values = evaluate_threshold_policy(config, density, p_trip, threshold)?;
        let improved = values.threshold(config, p_trip);
        last_residual = (improved - threshold).abs();
        if last_residual < tol {
            return Ok(BellmanSolution {
                values,
                threshold: improved,
                iterations: it + 1,
            });
        }
        // Damped update: the improvement map is monotone but can
        // overshoot; averaging makes it a contraction in practice.
        threshold = 0.5 * threshold + 0.5 * improved;
    }
    Err(GameError::NoEquilibrium {
        iterations: max_iter,
        residual: last_residual,
    })
}

/// Solve the Bellman equation with the chosen method and default
/// tolerances.
///
/// # Errors
///
/// Propagates the method-specific errors.
pub fn solve(
    config: &GameConfig,
    density: &DiscreteDensity,
    p_trip: f64,
    method: BellmanMethod,
) -> crate::Result<BellmanSolution> {
    match method {
        BellmanMethod::ValueIteration => solve_value_iteration(
            config,
            density,
            p_trip,
            DEFAULT_TOLERANCE,
            DEFAULT_MAX_ITERATIONS,
        ),
        BellmanMethod::PolicyIteration => solve_policy_iteration(
            config,
            density,
            p_trip,
            DEFAULT_TOLERANCE,
            DEFAULT_MAX_ITERATIONS,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprint_workloads::Benchmark;

    fn density_of(b: Benchmark) -> DiscreteDensity {
        b.utility_density(512).unwrap()
    }

    #[test]
    fn rejects_invalid_p_trip() {
        let cfg = GameConfig::paper_defaults();
        let d = density_of(Benchmark::DecisionTree);
        assert!(solve(&cfg, &d, -0.1, BellmanMethod::PolicyIteration).is_err());
        assert!(solve(&cfg, &d, 1.1, BellmanMethod::ValueIteration).is_err());
        assert!(evaluate_threshold_policy(&cfg, &d, 2.0, 1.0).is_err());
    }

    #[test]
    fn methods_agree_across_benchmarks_and_trip_probabilities() {
        let cfg = GameConfig::paper_defaults();
        for b in [
            Benchmark::DecisionTree,
            Benchmark::LinearRegression,
            Benchmark::PageRank,
        ] {
            let d = density_of(b);
            for p in [0.0, 0.05, 0.3, 0.9] {
                let vi = solve_value_iteration(&cfg, &d, p, 1e-11, 2_000_000).unwrap();
                let pi = solve_policy_iteration(&cfg, &d, p, 1e-11, 10_000).unwrap();
                assert!(
                    (vi.threshold - pi.threshold).abs() < 1e-5,
                    "{b} @ P={p}: VI threshold {} vs PI {}",
                    vi.threshold,
                    pi.threshold
                );
                assert!(
                    (vi.values.v_active - pi.values.v_active).abs() / vi.values.v_active.max(1.0)
                        < 1e-6,
                    "{b} @ P={p}: V(A) {} vs {}",
                    vi.values.v_active,
                    pi.values.v_active
                );
            }
        }
    }

    #[test]
    fn policy_iteration_is_much_cheaper() {
        let cfg = GameConfig::paper_defaults();
        let d = density_of(Benchmark::DecisionTree);
        let vi = solve_value_iteration(&cfg, &d, 0.05, 1e-10, 2_000_000).unwrap();
        let pi = solve_policy_iteration(&cfg, &d, 0.05, 1e-10, 10_000).unwrap();
        assert!(
            pi.iterations * 10 < vi.iterations,
            "PI {} iters vs VI {}",
            pi.iterations,
            vi.iterations
        );
    }

    #[test]
    fn value_ordering_is_active_cooling_recovery() {
        // Being free to sprint is worth more than cooling, which is worth
        // more than rack-wide recovery (recovery lasts longer).
        let cfg = GameConfig::paper_defaults();
        let d = density_of(Benchmark::DecisionTree);
        let s = solve(&cfg, &d, 0.1, BellmanMethod::PolicyIteration).unwrap();
        assert!(s.values.v_active > s.values.v_cooling);
        assert!(s.values.v_cooling > s.values.v_recovery);
        assert!(s.values.v_recovery > 0.0);
    }

    #[test]
    fn linear_regression_sprints_every_epoch() {
        // Figure 11: the narrow band sets the threshold below the entire
        // support, so the agent sprints at every opportunity.
        let cfg = GameConfig::paper_defaults();
        let d = density_of(Benchmark::LinearRegression);
        let s = solve(&cfg, &d, 0.0, BellmanMethod::PolicyIteration).unwrap();
        assert!(
            s.threshold < d.lo(),
            "threshold {} must sit below the 3x support floor",
            s.threshold
        );
        assert!((d.tail_mass(s.threshold) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pagerank_threshold_cuts_the_bimodal_valley() {
        // Figure 10/11: PageRank's high threshold selects only the
        // high-gain mode, sprinting for roughly its weight (0.4).
        let cfg = GameConfig::paper_defaults();
        let d = density_of(Benchmark::PageRank);
        let s = solve(&cfg, &d, 0.0, BellmanMethod::PolicyIteration).unwrap();
        let ps = d.tail_mass(s.threshold);
        assert!(
            (0.2..=0.6).contains(&ps),
            "pagerank sprints judiciously, got ps = {ps} at threshold {}",
            s.threshold
        );
    }

    #[test]
    fn threshold_shrinks_with_trip_probability() {
        // Equation 8's (1 − P) factor: a riskier rack lowers the bar —
        // the "ironic" aggression of §6.5.
        let cfg = GameConfig::paper_defaults();
        let d = density_of(Benchmark::DecisionTree);
        let t0 = solve(&cfg, &d, 0.0, BellmanMethod::PolicyIteration)
            .unwrap()
            .threshold;
        let t5 = solve(&cfg, &d, 0.5, BellmanMethod::PolicyIteration)
            .unwrap()
            .threshold;
        let t9 = solve(&cfg, &d, 0.9, BellmanMethod::PolicyIteration)
            .unwrap()
            .threshold;
        assert!(t0 > t5 && t5 > t9, "thresholds {t0} > {t5} > {t9}");
    }

    #[test]
    fn threshold_rises_with_cooling_duration() {
        // Figure 13 (p_c panel): longer cooling raises the opportunity
        // cost of a sprint.
        let d = density_of(Benchmark::DecisionTree);
        let mut last = -1.0;
        for pc in [0.0, 0.3, 0.6, 0.9] {
            let cfg = GameConfig::builder().p_cooling(pc).build().unwrap();
            let t = solve(&cfg, &d, 0.0, BellmanMethod::PolicyIteration)
                .unwrap()
                .threshold;
            assert!(t > last, "p_c = {pc}: threshold {t} must rise");
            last = t;
        }
    }

    #[test]
    fn threshold_insensitive_to_recovery_duration() {
        // Figure 13 (p_r panel): "thresholds are insensitive to recovery
        // cost".
        let d = density_of(Benchmark::DecisionTree);
        let t_at = |pr: f64| {
            let cfg = GameConfig::builder().p_recovery(pr).build().unwrap();
            solve(&cfg, &d, 0.05, BellmanMethod::PolicyIteration)
                .unwrap()
                .threshold
        };
        let spread = (t_at(0.0) - t_at(0.99)).abs();
        assert!(
            spread < 0.2,
            "threshold moved {spread} across the whole p_r range"
        );
    }

    #[test]
    fn policy_evaluation_peaks_at_optimal_threshold() {
        // V(A) as a function of the followed threshold must be maximized
        // at the solver's optimum (Bellman optimality).
        let cfg = GameConfig::paper_defaults();
        let d = density_of(Benchmark::Svm);
        let opt = solve(&cfg, &d, 0.1, BellmanMethod::PolicyIteration).unwrap();
        let v_opt = opt.values.v_active;
        for i in 0..=40 {
            let alt = d.lo() + (d.hi() - d.lo()) * i as f64 / 40.0;
            let v_alt = evaluate_threshold_policy(&cfg, &d, 0.1, alt)
                .unwrap()
                .v_active;
            assert!(
                v_alt <= v_opt + 1e-6,
                "threshold {alt} yields V(A) = {v_alt} > optimal {v_opt}"
            );
        }
    }

    #[test]
    fn indefinite_recovery_zeroes_v_recovery() {
        // §6.4: with p_r = 1 recovery is an absorbing zero-value state.
        let cfg = GameConfig::builder().p_recovery(1.0).build().unwrap();
        let d = density_of(Benchmark::DecisionTree);
        let s = solve(&cfg, &d, 0.1, BellmanMethod::PolicyIteration).unwrap();
        assert_eq!(s.values.v_recovery, 0.0);
        assert!(s.values.v_active > 0.0);
    }

    #[test]
    fn certain_trip_zeroes_threshold() {
        // P = 1: sprinting cannot make the emergency more certain, so the
        // threshold collapses and agents grab utility now.
        let cfg = GameConfig::paper_defaults();
        let d = density_of(Benchmark::PageRank);
        let s = solve(&cfg, &d, 1.0, BellmanMethod::PolicyIteration).unwrap();
        assert!(s.threshold.abs() < 1e-9);
    }
}
