//! Characterizing the sprint distribution (paper §4.3, Equations 9–10).
//!
//! Given every agent's threshold, the population's behavior follows from
//! the Figure-5 Markov chain: active agents sprint with probability `p_s`
//! (Equation 9) and enter cooling; cooling agents leave with probability
//! `1 − p_c`. In the stationary distribution the expected sprinter count
//! is `n_S = p_s · p_A · N` (Equation 10).

use sprint_stats::density::DiscreteDensity;
use sprint_stats::markov::active_cooling_stationary;

use crate::config::GameConfig;
use crate::threshold::ThresholdStrategy;
use crate::GameError;

/// Stationary population behavior implied by a threshold strategy.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SprintDistribution {
    /// Probability an active agent's epoch clears the threshold (`p_s`).
    pub p_sprint: f64,
    /// Stationary probability of being active rather than cooling (`p_A`),
    /// conditioned on the rack not being in recovery.
    pub p_active: f64,
    /// Expected number of simultaneous sprinters (`n_S`).
    pub expected_sprinters: f64,
}

impl SprintDistribution {
    /// Characterize the population when every agent plays `strategy`
    /// against utility density `density` (Equations 9–10).
    ///
    /// # Errors
    ///
    /// Returns [`GameError::Stats`] if the configuration's `p_c` is
    /// outside `[0, 1)` (prevented by [`GameConfig`]'s builder).
    pub fn characterize(
        config: &GameConfig,
        density: &DiscreteDensity,
        strategy: &ThresholdStrategy,
    ) -> crate::Result<Self> {
        let p_sprint = strategy.sprint_probability(density);
        Self::from_sprint_probability(config, p_sprint)
    }

    /// Characterize the population directly from a sprint probability.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidParameter`] for `p_sprint` outside
    /// `[0, 1]` and [`GameError::Stats`] for an invalid `p_c`.
    pub fn from_sprint_probability(config: &GameConfig, p_sprint: f64) -> crate::Result<Self> {
        if !(0.0..=1.0).contains(&p_sprint) {
            return Err(GameError::InvalidParameter {
                name: "p_sprint",
                value: p_sprint,
                expected: "a probability in [0, 1]",
            });
        }
        let (p_active, _) = active_cooling_stationary(p_sprint, config.p_cooling())?;
        Ok(SprintDistribution {
            p_sprint,
            p_active,
            expected_sprinters: p_sprint * p_active * f64::from(config.n_agents()),
        })
    }

    /// Stationary probability of cooling (complement of active).
    #[must_use]
    pub fn p_cooling_state(&self) -> f64 {
        1.0 - self.p_active
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprint_workloads::Benchmark;

    #[test]
    fn equation_10_composition() {
        let cfg = GameConfig::paper_defaults();
        // ps = 0.25, pc = 0.5: p_A = 0.5/0.75 = 2/3, n_S = 0.25 * 2/3 * 1000.
        let d = SprintDistribution::from_sprint_probability(&cfg, 0.25).unwrap();
        assert!((d.p_active - 2.0 / 3.0).abs() < 1e-12);
        assert!((d.expected_sprinters - 500.0 / 3.0).abs() < 1e-9);
        assert!((d.p_cooling_state() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn never_sprinting_keeps_everyone_active() {
        let cfg = GameConfig::paper_defaults();
        let d = SprintDistribution::from_sprint_probability(&cfg, 0.0).unwrap();
        assert_eq!(d.p_active, 1.0);
        assert_eq!(d.expected_sprinters, 0.0);
    }

    #[test]
    fn greedy_sprinting_caps_at_one_third() {
        // With p_c = 0.5 and p_s = 1, agents alternate 1 sprint : 2 cooling
        // epochs, so at most N/3 sprint simultaneously in steady state —
        // why even Greedy cannot keep everyone sprinting.
        let cfg = GameConfig::paper_defaults();
        let d = SprintDistribution::from_sprint_probability(&cfg, 1.0).unwrap();
        assert!((d.expected_sprinters - 1000.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn characterize_uses_density_tail() {
        let cfg = GameConfig::paper_defaults();
        let density = Benchmark::PageRank.utility_density(256).unwrap();
        let strategy = ThresholdStrategy::new(8.0).unwrap();
        let d = SprintDistribution::characterize(&cfg, &density, &strategy).unwrap();
        assert!((d.p_sprint - density.tail_mass(8.0)).abs() < 1e-12);
        assert!(d.expected_sprinters > 0.0);
        assert!(d.expected_sprinters < 1000.0);
    }

    #[test]
    fn invalid_p_sprint_rejected() {
        let cfg = GameConfig::paper_defaults();
        assert!(SprintDistribution::from_sprint_probability(&cfg, -0.1).is_err());
        assert!(SprintDistribution::from_sprint_probability(&cfg, 1.1).is_err());
    }

    #[test]
    fn more_sprinting_means_fewer_active() {
        let cfg = GameConfig::paper_defaults();
        let lo = SprintDistribution::from_sprint_probability(&cfg, 0.2).unwrap();
        let hi = SprintDistribution::from_sprint_probability(&cfg, 0.8).unwrap();
        assert!(hi.p_active < lo.p_active);
        assert!(hi.expected_sprinters > lo.expected_sprinters);
    }
}
