//! Cooperative thresholds and analytic throughput (the paper's C-T
//! policy, §6).
//!
//! "Cooperative Threshold (C-T) assigns each agent the globally optimal
//! threshold for sprinting. The coordinator exhaustively searches for the
//! threshold that maximizes system performance... These thresholds do not
//! produce an equilibrium but do provide an upper bound on performance."
//!
//! The search needs a system-performance model. [`analytic_throughput`]
//! computes long-run tasks-per-epoch per agent from the stationary
//! analysis: normal-mode epochs produce 1 task-unit, sprinted epochs
//! produce the conditional mean speedup, recovery epochs produce nothing,
//! and the up/recovery duty cycle follows from the tripping probability
//! and the recovery duration.

use sprint_stats::density::DiscreteDensity;

use crate::config::GameConfig;
use crate::sprint_dist::SprintDistribution;
use crate::threshold::ThresholdStrategy;
use crate::trip::TripCurve;
use crate::GameError;

/// Stationary throughput estimate for a common threshold.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ThroughputEstimate {
    /// Long-run task throughput per agent per epoch, normalized so an
    /// agent computing in normal mode all the time scores 1.
    pub tasks_per_epoch: f64,
    /// Throughput during up (non-recovery) periods.
    pub up_tasks_per_epoch: f64,
    /// Fraction of epochs the rack is up (not recovering).
    pub uptime: f64,
    /// Stationary tripping probability per up epoch.
    pub p_trip: f64,
    /// Expected simultaneous sprinters while up.
    pub expected_sprinters: f64,
}

/// Estimate long-run per-agent throughput when every agent plays
/// `threshold` (paper §5's tasks-per-second metric, normalized).
///
/// # Errors
///
/// Returns [`GameError::InvalidParameter`] for a negative threshold
/// (via [`ThresholdStrategy`]).
pub fn analytic_throughput(
    config: &GameConfig,
    density: &DiscreteDensity,
    threshold: f64,
) -> crate::Result<ThroughputEstimate> {
    let strategy = ThresholdStrategy::new(threshold)?;
    let dist = SprintDistribution::characterize(config, density, &strategy)?;
    let p_trip = TripCurve::from_config(config).p_trip(dist.expected_sprinters);

    // Per up epoch: active non-sprinters and cooling agents run in normal
    // mode (1 task-unit); sprinters produce their speedup. With
    // `partial_expectation` PE(u_T) = E[u · 1{u > u_T}]:
    // t_up = (1 − p_A·p_s)·1 + p_A·PE(u_T).
    let pe = density.partial_expectation(threshold);
    let up_tasks = 1.0 - dist.p_active * dist.p_sprint + dist.p_active * pe;

    // Renewal cycle: up for an expected 1/P epochs, then recovery for
    // Δt_recover epochs at zero throughput.
    let uptime = if p_trip <= 0.0 {
        1.0
    } else {
        let up_len = 1.0 / p_trip;
        let recovery = config.recovery_epochs();
        if recovery.is_infinite() {
            0.0
        } else {
            up_len / (up_len + recovery)
        }
    };
    Ok(ThroughputEstimate {
        tasks_per_epoch: up_tasks * uptime,
        up_tasks_per_epoch: up_tasks,
        uptime,
        p_trip,
        expected_sprinters: dist.expected_sprinters,
    })
}

/// The globally optimal cooperative threshold found by exhaustive search.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CooperativeSolution {
    /// The throughput-maximizing common threshold.
    pub threshold: f64,
    /// Its throughput estimate.
    pub throughput: ThroughputEstimate,
}

impl CooperativeSolution {
    /// The cooperative threshold as an executable strategy.
    ///
    /// Searched thresholds are non-negative; an invalid one degrades to
    /// the breaker-safe never-sprint strategy instead of panicking.
    #[must_use]
    pub fn strategy(&self) -> ThresholdStrategy {
        ThresholdStrategy::new(self.threshold).unwrap_or_else(|_| ThresholdStrategy::never_sprint())
    }
}

/// Exhaustive threshold search (the paper's C-T policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CooperativeSearch {
    resolution: usize,
}

impl CooperativeSearch {
    /// Create a search evaluating `resolution` evenly spaced thresholds
    /// across the density's support (plus the never-sprint sentinel).
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidParameter`] when `resolution < 2`.
    pub fn new(resolution: usize) -> crate::Result<Self> {
        if resolution < 2 {
            return Err(GameError::InvalidParameter {
                name: "resolution",
                value: resolution as f64,
                expected: "at least two search points",
            });
        }
        Ok(CooperativeSearch { resolution })
    }

    /// Default search resolution (512 thresholds), ample for the smooth
    /// throughput curves of the calibrated benchmarks.
    #[must_use]
    pub fn default_resolution() -> Self {
        CooperativeSearch { resolution: 512 }
    }

    /// Find the throughput-maximizing common threshold.
    ///
    /// # Errors
    ///
    /// Propagates estimation errors (none occur for valid configurations).
    pub fn solve(
        &self,
        config: &GameConfig,
        density: &DiscreteDensity,
    ) -> crate::Result<CooperativeSolution> {
        let lo = density.lo().max(0.0);
        let hi = density.hi();
        let mut best: Option<CooperativeSolution> = None;
        for i in 0..=self.resolution {
            let threshold = lo + (hi - lo) * i as f64 / self.resolution as f64;
            let estimate = analytic_throughput(config, density, threshold)?;
            if best
                .as_ref()
                .is_none_or(|b| estimate.tasks_per_epoch > b.throughput.tasks_per_epoch)
            {
                best = Some(CooperativeSolution {
                    threshold,
                    throughput: estimate,
                });
            }
        }
        best.ok_or(GameError::InvalidParameter {
            name: "resolution",
            value: self.resolution as f64,
            expected: "a search grid evaluating at least one threshold",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meanfield::MeanFieldSolver;
    use sprint_workloads::Benchmark;

    fn cfg() -> GameConfig {
        GameConfig::paper_defaults()
    }

    #[test]
    fn never_sprinting_scores_exactly_one() {
        let d = Benchmark::DecisionTree.utility_density(256).unwrap();
        let t = analytic_throughput(&cfg(), &d, d.hi() + 1.0).unwrap();
        assert!((t.tasks_per_epoch - 1.0).abs() < 1e-9);
        assert_eq!(t.p_trip, 0.0);
        assert_eq!(t.uptime, 1.0);
    }

    #[test]
    fn sprinting_beats_never_sprinting_below_the_band() {
        // A threshold selecting only the top of the distribution keeps
        // n_S below N_min: pure gain.
        let d = Benchmark::PageRank.utility_density(256).unwrap();
        let t = analytic_throughput(&cfg(), &d, 8.0).unwrap();
        assert!(t.p_trip < 0.05);
        assert!(t.tasks_per_epoch > 1.5, "got {}", t.tasks_per_epoch);
    }

    #[test]
    fn cooperative_search_beats_equilibrium() {
        // C-T is an upper bound on E-T (paper §6.2/§6.4).
        for b in [
            Benchmark::DecisionTree,
            Benchmark::PageRank,
            Benchmark::LinearRegression,
        ] {
            let d = b.utility_density(512).unwrap();
            let eq = MeanFieldSolver::new(cfg())
                .run(&d, &mut sprint_telemetry::Telemetry::noop())
                .unwrap();
            let et = analytic_throughput(&cfg(), &d, eq.threshold()).unwrap();
            let ct = CooperativeSearch::default_resolution()
                .solve(&cfg(), &d)
                .unwrap();
            assert!(
                ct.throughput.tasks_per_epoch >= et.tasks_per_epoch - 1e-9,
                "{b}: C-T {} < E-T {}",
                ct.throughput.tasks_per_epoch,
                et.tasks_per_epoch
            );
        }
    }

    #[test]
    fn equilibrium_achieves_most_of_cooperative_for_diverse_profiles() {
        // "E-T's task throughput is 90% that of C-T's for most
        // applications" (§6.2). Check the representative app clears 80%.
        let d = Benchmark::DecisionTree.utility_density(512).unwrap();
        let eq = MeanFieldSolver::new(cfg())
            .run(&d, &mut sprint_telemetry::Telemetry::noop())
            .unwrap();
        let et = analytic_throughput(&cfg(), &d, eq.threshold()).unwrap();
        let ct = CooperativeSearch::default_resolution()
            .solve(&cfg(), &d)
            .unwrap();
        let efficiency = et.tasks_per_epoch / ct.throughput.tasks_per_epoch;
        assert!(
            efficiency > 0.8,
            "decision tree efficiency {efficiency} too low"
        );
    }

    #[test]
    fn narrow_profiles_fall_far_from_cooperative() {
        // §6.2: Linear Regression achieves only ~36% of cooperative
        // performance because E-T degenerates to greedy. Check it lands
        // well below the diverse-profile efficiency.
        let d = Benchmark::LinearRegression.utility_density(512).unwrap();
        let eq = MeanFieldSolver::new(cfg())
            .run(&d, &mut sprint_telemetry::Telemetry::noop())
            .unwrap();
        let et = analytic_throughput(&cfg(), &d, eq.threshold()).unwrap();
        let ct = CooperativeSearch::default_resolution()
            .solve(&cfg(), &d)
            .unwrap();
        let efficiency = et.tasks_per_epoch / ct.throughput.tasks_per_epoch;
        assert!(
            efficiency < 0.8,
            "linear regression efficiency {efficiency} should be poor"
        );
    }

    #[test]
    fn cooperative_threshold_avoids_the_band() {
        // The optimal cooperative point keeps sprinters at or below N_min
        // for the paper parameters (recovery is expensive).
        let d = Benchmark::DecisionTree.utility_density(512).unwrap();
        let ct = CooperativeSearch::default_resolution()
            .solve(&cfg(), &d)
            .unwrap();
        assert!(
            ct.throughput.p_trip < 0.1,
            "C-T trips with P = {}",
            ct.throughput.p_trip
        );
    }

    #[test]
    fn indefinite_recovery_forces_zero_throughput_when_tripping() {
        let pd = GameConfig::builder().p_recovery(1.0).build().unwrap();
        let d = Benchmark::LinearRegression.utility_density(256).unwrap();
        // Low threshold => everyone sprints => P > 0 => throughput 0.
        let t = analytic_throughput(&pd, &d, 0.0).unwrap();
        assert!(t.p_trip > 0.0);
        assert_eq!(t.tasks_per_epoch, 0.0);
        // But a high threshold avoids tripping entirely and scores > 1.
        let ct = CooperativeSearch::default_resolution()
            .solve(&pd, &d)
            .unwrap();
        assert_eq!(ct.throughput.p_trip, 0.0);
        assert!(ct.throughput.tasks_per_epoch > 1.0);
    }

    #[test]
    fn search_validates_resolution() {
        assert!(CooperativeSearch::new(1).is_err());
        assert!(CooperativeSearch::new(2).is_ok());
    }

    #[test]
    fn strategy_round_trips() {
        let d = Benchmark::Svm.utility_density(256).unwrap();
        let ct = CooperativeSearch::default_resolution()
            .solve(&cfg(), &d)
            .unwrap();
        assert_eq!(ct.strategy().threshold(), ct.threshold);
    }
}
