//! Memoization for Algorithm 1: a sharded, thread-safe equilibrium cache.
//!
//! Parameter sweeps re-solve the same game many times — every seed, fault
//! plan, and policy variation of one `(GameConfig, DiscreteDensity,
//! SolverOptions)` triple shares one equilibrium. [`EquilibriumCache`]
//! keys solved equilibria by a canonical hash of that triple (every `f64`
//! hashed via its bit pattern, full-key equality checked on lookup, so
//! hash collisions can never alias two games) and guarantees
//! **single-flight** solves: when several workers ask for the same
//! uncached game at once, exactly one runs Algorithm 1 and the rest block
//! on its [`OnceLock`] — a sweep pays one miss per distinct game, no
//! matter how it is scheduled.
//!
//! Because the solver is deterministic, a cached equilibrium is
//! bit-identical to a fresh solve; caching changes wall-clock time and
//! nothing else. Non-convergence is cached too ([`GameError`] is stored
//! alongside success), so a pathological configuration is diagnosed once
//! instead of once per trial.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use serde::{Deserialize, Serialize};
use sprint_stats::density::DiscreteDensity;
use sprint_telemetry::{Noop, Registry};

use crate::bellman::BellmanMethod;
use crate::config::GameConfig;
use crate::equilibrium::Equilibrium;
use crate::meanfield::{MeanFieldSolver, SolverOptions};
use crate::GameError;

/// Number of independently locked shards. Lookups hash to a shard, so
/// concurrent workers solving *different* games rarely contend.
const SHARDS: usize = 8;

/// Default total capacity (entries across all shards).
const DEFAULT_CAPACITY: usize = 256;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: u64, word: u64) -> u64 {
    let mut h = hash;
    for byte in word.to_le_bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Relative distance between two solve keys over the coordinates that
/// move the equilibrium: population, breaker band, transition
/// probabilities, discount, and the utility density. Symmetric, zero for
/// identical keys; solver options are ignored (they shape the path, not
/// the fixed point).
fn key_distance(a: &SolveKey, b: &SolveKey) -> f64 {
    let rel = |x: f64, y: f64| {
        if x == y {
            0.0
        } else {
            (x - y).abs() / x.abs().max(y.abs()).max(1e-12)
        }
    };
    let mut d = rel(
        f64::from(a.config.n_agents()),
        f64::from(b.config.n_agents()),
    ) + rel(a.config.n_min(), b.config.n_min())
        + rel(a.config.n_max(), b.config.n_max())
        + rel(a.config.p_cooling(), b.config.p_cooling())
        + rel(a.config.p_recovery(), b.config.p_recovery())
        + rel(a.config.discount(), b.config.discount())
        + rel(a.lo, b.lo)
        + rel(a.hi, b.hi);
    if a.pdf.len() == b.pdf.len() {
        // Total-variation-style term in [0, 1]: half the L1 pdf distance
        // times the bin width.
        let dx = (a.hi - a.lo) / a.pdf.len().max(1) as f64;
        let l1: f64 = a.pdf.iter().zip(&b.pdf).map(|(x, y)| (x - y).abs()).sum();
        d += 0.5 * l1 * dx;
    } else {
        d += 1.0;
    }
    d
}

/// Canonical cache key: one solvable game, byte-exact.
///
/// Two keys are equal iff every game parameter, every solver option, and
/// every density bin agree *bitwise* (`f64::to_bits`): configurations that
/// differ only in `SolverOptions` — or in the last bit of one probability —
/// occupy distinct entries.
#[derive(Debug, Clone)]
pub struct SolveKey {
    config: GameConfig,
    options: SolverOptions,
    lo: f64,
    hi: f64,
    pdf: Vec<f64>,
    hash: u64,
}

impl SolveKey {
    /// Build the canonical key for one solve.
    #[must_use]
    pub fn new(config: &GameConfig, options: &SolverOptions, density: &DiscreteDensity) -> Self {
        let mut key = SolveKey {
            config: *config,
            options: *options,
            lo: density.lo(),
            hi: density.hi(),
            pdf: density.pdf().to_vec(),
            hash: 0,
        };
        key.hash = key.words().fold(FNV_OFFSET, fnv1a);
        key
    }

    /// The canonical FNV-1a hash over the key's word stream. Stable across
    /// runs and platforms (little-endian byte order is imposed).
    #[must_use]
    pub fn canonical_hash(&self) -> u64 {
        self.hash
    }

    /// The key serialized as a stream of `u64` words: game parameters,
    /// solver options, then the density grid.
    fn words(&self) -> impl Iterator<Item = u64> + '_ {
        let method = match self.options.method {
            BellmanMethod::ValueIteration => 0u64,
            BellmanMethod::PolicyIteration => 1u64,
        };
        [
            u64::from(self.config.n_agents()),
            self.config.n_min().to_bits(),
            self.config.n_max().to_bits(),
            self.config.p_cooling().to_bits(),
            self.config.p_recovery().to_bits(),
            self.config.discount().to_bits(),
            method,
            self.options.damping.to_bits(),
            self.options.tolerance.to_bits(),
            self.options.max_iterations as u64,
            // Unbounded solves encode as MAX: a budget that large is
            // indistinguishable from no budget at all.
            self.options.iteration_budget.map_or(u64::MAX, |b| b as u64),
            self.lo.to_bits(),
            self.hi.to_bits(),
            self.pdf.len() as u64,
        ]
        .into_iter()
        .chain(self.pdf.iter().map(|p| p.to_bits()))
    }
}

impl PartialEq for SolveKey {
    fn eq(&self, other: &Self) -> bool {
        self.hash == other.hash && self.words().eq(other.words())
    }
}

impl Eq for SolveKey {}

impl std::hash::Hash for SolveKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

type SolveResult = Result<Equilibrium, GameError>;
type Cell = Arc<OnceLock<SolveResult>>;

struct Entry {
    /// Global insertion sequence, for [`EquilibriumCache::latest`].
    seq: u64,
    cell: Cell,
}

#[derive(Default)]
struct Shard {
    map: HashMap<SolveKey, Entry>,
    /// Insertion order for capacity eviction (oldest first).
    order: VecDeque<SolveKey>,
}

/// Cumulative cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that found an entry (possibly still solving).
    pub hits: u64,
    /// Lookups that inserted a fresh entry and ran Algorithm 1.
    pub misses: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Hits over total lookups (0.0 before any lookup).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded, single-flight cache of mean-field equilibria.
///
/// Shareable across threads by reference (`&EquilibriumCache`): all
/// interior state is behind shard mutexes and atomics.
pub struct EquilibriumCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    inserts: AtomicU64,
}

impl std::fmt::Debug for EquilibriumCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EquilibriumCache")
            .field("stats", &self.stats())
            .finish()
    }
}

impl Default for EquilibriumCache {
    fn default() -> Self {
        EquilibriumCache::with_capacity(DEFAULT_CAPACITY)
    }
}

impl EquilibriumCache {
    /// The process-wide shared cache: one lazily initialized
    /// [`EquilibriumCache`] for the whole process, so every subsystem
    /// that resolves equilibria through it — CLI one-shot commands, the
    /// `sprint serve` daemon's job workers, library callers — shares one
    /// memo table and one single-flight domain. Concurrent requests for
    /// the same `(config, options, density)` key run Algorithm 1 exactly
    /// once, no matter which entry point issued them.
    ///
    /// Callers that need isolated counters (tests, benchmarks) should
    /// construct their own cache instead.
    #[must_use]
    pub fn process() -> &'static EquilibriumCache {
        static PROCESS: OnceLock<EquilibriumCache> = OnceLock::new();
        PROCESS.get_or_init(EquilibriumCache::default)
    }

    /// A cache bounded to roughly `capacity` total entries (rounded up to
    /// a multiple of the shard count; at least one entry per shard).
    /// When a shard is full, its oldest entry is evicted.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        EquilibriumCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            capacity_per_shard: capacity.div_ceil(SHARDS).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
        }
    }

    /// Solve `density` under `solver`'s configuration, memoized.
    ///
    /// The first caller for a key runs Algorithm 1 (unobserved — cached
    /// work cannot narrate to one caller's recorder); concurrent callers
    /// for the same key block until that solve completes and then share
    /// its result. Deterministic solving makes a cache hit bit-identical
    /// to the fresh solve.
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`MeanFieldSolver::run`]; a failed solve is
    /// cached and re-returned on later lookups of the same key.
    pub fn solve(
        &self,
        solver: &MeanFieldSolver,
        density: &DiscreteDensity,
    ) -> crate::Result<Equilibrium> {
        let key = SolveKey::new(solver.config(), solver.options(), density);
        let shard_idx = (key.canonical_hash() % self.shards.len() as u64) as usize;
        let (cell, fresh) = {
            let mut shard = self.lock_shard(shard_idx);
            if let Some(entry) = shard.map.get(&key) {
                (Arc::clone(&entry.cell), false)
            } else {
                if shard.map.len() >= self.capacity_per_shard {
                    if let Some(victim) = shard.order.pop_front() {
                        shard.map.remove(&victim);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
                let cell: Cell = Arc::new(OnceLock::new());
                let seq = self.inserts.fetch_add(1, Ordering::Relaxed);
                shard.map.insert(
                    key.clone(),
                    Entry {
                        seq,
                        cell: Arc::clone(&cell),
                    },
                );
                shard.order.push_back(key);
                (cell, true)
            }
        };
        if fresh {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        // Single-flight: the solve runs outside the shard lock, and racing
        // threads block here instead of solving twice.
        cell.get_or_init(|| solver.solve_impl(density, None, &mut Noop))
            .clone()
    }

    /// [`EquilibriumCache::solve`], but a miss warm-starts Algorithm 1
    /// from the nearest completed equilibrium ([`EquilibriumCache::warm_hint`])
    /// instead of cold-starting at `P_trip = 1`.
    ///
    /// Hit/miss accounting is identical to [`EquilibriumCache::solve`].
    /// Because the hint depends on which neighbors have *finished*, the
    /// result of a warm miss depends on completion order — callers that
    /// need scheduling-independent bytes (the sweep engine) must issue
    /// their warm solves in a deterministic serial order, as
    /// `run_sweep`'s pre-pass does.
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`EquilibriumCache::solve`].
    pub fn solve_warm(
        &self,
        solver: &MeanFieldSolver,
        density: &DiscreteDensity,
    ) -> crate::Result<Equilibrium> {
        let key = SolveKey::new(solver.config(), solver.options(), density);
        let shard_idx = (key.canonical_hash() % self.shards.len() as u64) as usize;
        let (cell, fresh) = {
            let mut shard = self.lock_shard(shard_idx);
            if let Some(entry) = shard.map.get(&key) {
                (Arc::clone(&entry.cell), false)
            } else {
                if shard.map.len() >= self.capacity_per_shard {
                    if let Some(victim) = shard.order.pop_front() {
                        shard.map.remove(&victim);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
                let cell: Cell = Arc::new(OnceLock::new());
                let seq = self.inserts.fetch_add(1, Ordering::Relaxed);
                shard.map.insert(
                    key.clone(),
                    Entry {
                        seq,
                        cell: Arc::clone(&cell),
                    },
                );
                shard.order.push_back(key.clone());
                (cell, true)
            }
        };
        if fresh {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        cell.get_or_init(|| {
            // The hint scan skips in-flight cells (including this key's
            // own just-inserted one), so it only ever sees finished
            // neighbors.
            let hint = self.warm_hint_for(&key);
            solver.solve_impl(density, hint, &mut Noop)
        })
        .clone()
    }

    /// The `P_trip` of the completed successful equilibrium whose key is
    /// nearest to `(solver, density)` in game-parameter space — a warm
    /// start for [`MeanFieldSolver::run_from`]. `None` when no solve has
    /// finished successfully.
    ///
    /// Nearness is a relative distance over the solve-relevant
    /// coordinates (population, breaker band, transition probabilities,
    /// discount, density support and shape); ties break toward the
    /// earliest-inserted entry, so the lookup is deterministic for any
    /// cache content. Does not insert, block, or touch the hit/miss
    /// counters.
    #[must_use]
    pub fn warm_hint(&self, solver: &MeanFieldSolver, density: &DiscreteDensity) -> Option<f64> {
        self.warm_hint_for(&SolveKey::new(solver.config(), solver.options(), density))
    }

    fn warm_hint_for(&self, key: &SolveKey) -> Option<f64> {
        let mut best: Option<(f64, u64, f64)> = None; // (distance, seq, p_trip)
        for i in 0..self.shards.len() {
            let shard = self.lock_shard(i);
            for (other, entry) in &shard.map {
                let Some(Ok(eq)) = entry.cell.get() else {
                    continue;
                };
                let d = key_distance(key, other);
                let closer = best
                    .as_ref()
                    .is_none_or(|&(bd, bseq, _)| d < bd || (d == bd && entry.seq < bseq));
                if closer {
                    best = Some((d, entry.seq, eq.p_trip));
                }
            }
        }
        best.map(|(_, _, p)| p)
    }

    /// Non-solving lookup: the cached result for this exact key, if one
    /// has finished. Never inserts, never blocks on an in-flight solve,
    /// and does not perturb the hit/miss counters — this is the read
    /// path for the degradation ladder, where running Algorithm 1 is
    /// precisely what just failed or timed out.
    #[must_use]
    pub fn peek(
        &self,
        solver: &MeanFieldSolver,
        density: &DiscreteDensity,
    ) -> Option<crate::Result<Equilibrium>> {
        let key = SolveKey::new(solver.config(), solver.options(), density);
        let shard_idx = (key.canonical_hash() % self.shards.len() as u64) as usize;
        let shard = self.lock_shard(shard_idx);
        shard.map.get(&key).and_then(|e| e.cell.get()).cloned()
    }

    /// The most recently inserted *successful* equilibrium, regardless
    /// of key — the "last cached assignment" tier of the degradation
    /// ladder. Callers must treat the result as stale: it was solved
    /// for whatever population the coordinator last saw, not the
    /// current one. `None` when no solve has ever succeeded.
    #[must_use]
    pub fn latest(&self) -> Option<Equilibrium> {
        let mut best: Option<(u64, Equilibrium)> = None;
        for i in 0..self.shards.len() {
            let shard = self.lock_shard(i);
            for entry in shard.map.values() {
                if let Some(Ok(eq)) = entry.cell.get() {
                    if best.as_ref().is_none_or(|(seq, _)| entry.seq > *seq) {
                        best = Some((entry.seq, *eq));
                    }
                }
            }
        }
        best.map(|(_, eq)| eq)
    }

    /// Current counters and entry count.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let entries = (0..self.shards.len())
            .map(|i| self.lock_shard(i).map.len())
            .sum();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
        }
    }

    /// Drop every entry (counters are retained).
    pub fn clear(&self) {
        for i in 0..self.shards.len() {
            let mut shard = self.lock_shard(i);
            shard.map.clear();
            shard.order.clear();
        }
    }

    /// Export the counters into a metrics registry under
    /// `cache.equilibrium.*`. Counters accumulate on repeated export;
    /// call once per run.
    pub fn export_metrics(&self, registry: &mut Registry) {
        let stats = self.stats();
        let hits = registry.counter("cache.equilibrium.hits");
        registry.inc(hits, stats.hits);
        let misses = registry.counter("cache.equilibrium.misses");
        registry.inc(misses, stats.misses);
        let evictions = registry.counter("cache.equilibrium.evictions");
        registry.inc(evictions, stats.evictions);
        let entries = registry.gauge("cache.equilibrium.entries");
        registry.set(entries, stats.entries as f64);
    }

    fn lock_shard(&self, idx: usize) -> std::sync::MutexGuard<'_, Shard> {
        // A panic inside Algorithm 1 happens outside the lock, so a
        // poisoned shard still holds consistent data; keep serving it.
        self.shards[idx]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprint_telemetry::Telemetry;
    use sprint_workloads::Benchmark;

    fn density() -> DiscreteDensity {
        Benchmark::DecisionTree.utility_density(256).unwrap()
    }

    #[test]
    fn cached_equilibrium_is_bit_identical_to_fresh_solve() {
        let solver = MeanFieldSolver::new(GameConfig::paper_defaults());
        let d = density();
        let cache = EquilibriumCache::default();
        let fresh = solver.run(&d, &mut Telemetry::noop()).unwrap();
        let first = cache.solve(&solver, &d).unwrap();
        let second = cache.solve(&solver, &d).unwrap();
        assert_eq!(fresh, first);
        assert_eq!(fresh, second);
        // Byte-identical, not merely approximately equal.
        assert_eq!(
            serde_json::to_string(&fresh).unwrap(),
            serde_json::to_string(&second).unwrap()
        );
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn key_distinguishes_solver_options() {
        // Same game, same density, different SolverOptions: two entries.
        let config = GameConfig::paper_defaults();
        let d = density();
        let default = MeanFieldSolver::new(config);
        let literal = MeanFieldSolver::with_options(config, SolverOptions::paper_literal());
        let ka = SolveKey::new(default.config(), default.options(), &d);
        let kb = SolveKey::new(literal.config(), literal.options(), &d);
        assert_ne!(ka, kb);

        let cache = EquilibriumCache::default();
        cache.solve(&default, &d).unwrap();
        cache.solve(&literal, &d).unwrap();
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 2, 2));

        // And a tolerance-only change is a distinct key too.
        let mut opts = *default.options();
        opts.tolerance *= 0.5;
        let kc = SolveKey::new(&config, &opts, &d);
        assert_ne!(ka, kc);
    }

    #[test]
    fn key_distinguishes_densities_and_configs() {
        let config = GameConfig::paper_defaults();
        let opts = SolverOptions::default();
        let a = SolveKey::new(&config, &opts, &density());
        let b = SolveKey::new(
            &config,
            &opts,
            &Benchmark::PageRank.utility_density(256).unwrap(),
        );
        assert_ne!(a, b);
        let other = GameConfig::builder().n_min(251.0).build().unwrap();
        let c = SolveKey::new(&other, &opts, &density());
        assert_ne!(a, c);
        // Reflexivity across re-derivation: same inputs, same key & hash.
        let again = SolveKey::new(&config, &opts, &density());
        assert_eq!(a, again);
        assert_eq!(a.canonical_hash(), again.canonical_hash());
    }

    #[test]
    fn warm_hint_finds_the_nearest_completed_neighbor() {
        let cache = EquilibriumCache::default();
        let d = density();
        let near = GameConfig::builder().n_max(755.0).build().unwrap();
        let solver = MeanFieldSolver::new(GameConfig::paper_defaults());
        // Empty cache: nothing to warm from.
        assert!(cache.warm_hint(&solver, &d).is_none());

        let far = GameConfig::builder().n_max(400.0).build().unwrap();
        let eq_far = cache.solve(&MeanFieldSolver::new(far), &d).unwrap();
        let eq_near = cache.solve(&MeanFieldSolver::new(near), &d).unwrap();
        // Paper defaults sit closer to n_max = 755 than to 400.
        let hint = cache.warm_hint(&solver, &d).unwrap();
        assert_eq!(hint.to_bits(), eq_near.trip_probability().to_bits());
        assert_ne!(hint.to_bits(), eq_far.trip_probability().to_bits());
        // Pure lookup: counters untouched beyond the two solves.
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (0, 2));
    }

    #[test]
    fn solve_warm_counts_like_solve_and_converges_to_the_same_equilibrium() {
        let d = density();
        let solver = MeanFieldSolver::new(GameConfig::paper_defaults());
        let cold = {
            let cache = EquilibriumCache::default();
            cache.solve(&solver, &d).unwrap()
        };

        let cache = EquilibriumCache::default();
        let neighbor = GameConfig::builder().n_max(745.0).build().unwrap();
        cache.solve(&MeanFieldSolver::new(neighbor), &d).unwrap();
        let warm = cache.solve_warm(&solver, &d).unwrap();
        // Same fixed point within solver tolerance, found in fewer (or
        // equal) iterations thanks to the neighbor's iterate.
        assert!((warm.threshold() - cold.threshold()).abs() < 1e-6);
        assert!((warm.trip_probability() - cold.trip_probability()).abs() < 1e-6);
        assert!(
            warm.iterations() <= cold.iterations(),
            "warm {} vs cold {} iterations",
            warm.iterations(),
            cold.iterations()
        );
        // Second warm lookup is a plain hit returning the cached value.
        let again = cache.solve_warm(&solver, &d).unwrap();
        assert_eq!(warm, again);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 2));
    }

    #[test]
    fn capacity_bound_evicts_oldest() {
        // Capacity 8 over 8 shards = 1 entry per shard: filling one shard
        // twice must evict.
        let cache = EquilibriumCache::with_capacity(1);
        let d = density();
        let mut evicted = false;
        for n_min in [250.0, 260.0, 270.0, 280.0] {
            let config = GameConfig::builder().n_min(n_min).build().unwrap();
            cache.solve(&MeanFieldSolver::new(config), &d).unwrap();
            evicted |= cache.stats().evictions > 0;
        }
        assert!(evicted, "4 distinct games through 8 single-entry shards");
        assert!(cache.stats().entries <= 8);
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let cache = EquilibriumCache::default();
        let solver = MeanFieldSolver::new(GameConfig::paper_defaults());
        cache.solve(&solver, &density()).unwrap();
        cache.clear();
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.misses, 1);
        cache.solve(&solver, &density()).unwrap();
        assert_eq!(cache.stats().misses, 2, "cleared entry re-solves");
    }

    #[test]
    fn concurrent_lookups_single_flight() {
        // Many threads, one key: exactly one miss, everyone agrees.
        let solver = MeanFieldSolver::new(GameConfig::paper_defaults());
        let d = density();
        let cache = EquilibriumCache::default();
        let results: Vec<Equilibrium> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| cache.solve(&solver, &d).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "single-flight: one solve per key");
        assert_eq!(stats.hits, 7);
        assert!(results.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn sixteen_concurrent_clients_trigger_exactly_one_solve() {
        // The serve-layer acceptance shape, pinned at the cache: sixteen
        // threads race the same equilibrium key, exactly one Algorithm-1
        // solve runs, and the registry counters prove it.
        let solver = MeanFieldSolver::new(GameConfig::paper_defaults());
        let d = density();
        let cache = EquilibriumCache::default();
        let results: Vec<Equilibrium> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..16)
                .map(|_| scope.spawn(|| cache.solve(&solver, &d).unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(results.windows(2).all(|w| w[0] == w[1]));
        let mut registry = Registry::default();
        cache.export_metrics(&mut registry);
        assert_eq!(
            registry.counter_value("cache.equilibrium.misses"),
            Some(1),
            "single-flight: one solve for sixteen concurrent clients"
        );
        assert_eq!(registry.counter_value("cache.equilibrium.hits"), Some(15));
        assert_eq!(registry.gauge_value("cache.equilibrium.entries"), Some(1.0));
    }

    #[test]
    fn process_cache_is_one_shared_instance() {
        let a = EquilibriumCache::process() as *const EquilibriumCache;
        let b = EquilibriumCache::process() as *const EquilibriumCache;
        assert_eq!(a, b, "every caller sees the same process-wide cache");
    }

    #[test]
    fn peek_reads_without_solving_or_counting() {
        let cache = EquilibriumCache::default();
        let solver = MeanFieldSolver::new(GameConfig::paper_defaults());
        let d = density();
        assert!(cache.peek(&solver, &d).is_none(), "cold cache has nothing");
        let solved = cache.solve(&solver, &d).unwrap();
        let peeked = cache.peek(&solver, &d).unwrap().unwrap();
        assert_eq!(solved, peeked);
        let stats = cache.stats();
        assert_eq!(
            (stats.hits, stats.misses),
            (0, 1),
            "peek must not perturb the counters"
        );
        // A different key stays invisible to peek.
        let other = MeanFieldSolver::with_options(
            GameConfig::paper_defaults(),
            SolverOptions::paper_literal(),
        );
        assert!(cache.peek(&other, &d).is_none());
    }

    #[test]
    fn latest_returns_the_most_recent_success() {
        let cache = EquilibriumCache::default();
        let d = density();
        assert!(cache.latest().is_none());
        let first = GameConfig::builder().n_min(250.0).build().unwrap();
        let second = GameConfig::builder().n_min(300.0).build().unwrap();
        cache.solve(&MeanFieldSolver::new(first), &d).unwrap();
        let newer = cache.solve(&MeanFieldSolver::new(second), &d).unwrap();
        assert_eq!(cache.latest().unwrap(), newer);
        // A failed solve is cached but never surfaces through latest().
        let strangled = SolverOptions {
            tolerance: -1.0,
            ..SolverOptions::default()
        }
        .with_iteration_budget(3);
        let failing = MeanFieldSolver::with_options(second, strangled);
        assert!(cache.solve(&failing, &d).is_err());
        assert_eq!(
            cache.latest().unwrap(),
            newer,
            "latest() must skip cached failures"
        );
    }

    #[test]
    fn key_distinguishes_iteration_budgets() {
        let config = GameConfig::paper_defaults();
        let d = density();
        let unbounded = SolverOptions::default();
        let bounded = SolverOptions::default().with_iteration_budget(50_000);
        let ka = SolveKey::new(&config, &unbounded, &d);
        let kb = SolveKey::new(&config, &bounded, &d);
        assert_ne!(ka, kb, "budgeted and unbounded solves are distinct keys");
    }

    #[test]
    fn export_metrics_publishes_counters() {
        let cache = EquilibriumCache::default();
        let solver = MeanFieldSolver::new(GameConfig::paper_defaults());
        let d = density();
        cache.solve(&solver, &d).unwrap();
        cache.solve(&solver, &d).unwrap();
        let mut registry = Registry::new();
        cache.export_metrics(&mut registry);
        assert_eq!(registry.counter_value("cache.equilibrium.hits"), Some(1));
        assert_eq!(registry.counter_value("cache.equilibrium.misses"), Some(1));
        assert_eq!(
            registry.counter_value("cache.equilibrium.evictions"),
            Some(0)
        );
        assert_eq!(registry.gauge_value("cache.equilibrium.entries"), Some(1.0));
    }
}
