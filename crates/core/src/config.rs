//! Game configuration (the paper's Table 2).

use crate::GameError;

/// Parameters of the sprinting game.
///
/// Defaults mirror the paper's Table 2; [`GameConfigBuilder`] adjusts
/// individual parameters for sensitivity studies (Figure 13).
///
/// ```
/// use sprint_game::GameConfig;
///
/// # fn main() -> Result<(), sprint_game::GameError> {
/// let table2 = GameConfig::paper_defaults();
/// assert_eq!(table2.n_agents(), 1000);
///
/// let tweaked = GameConfig::builder()
///     .n_agents(500)
///     .n_min(125.0)
///     .n_max(375.0)
///     .build()?;
/// assert_eq!(tweaked.n_min(), 125.0);
/// # Ok(())
/// # }
/// ```
///
/// Serializes as plain fields; deserialization re-runs the builder's
/// validation, so configuration files cannot construct invalid games.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
#[serde(try_from = "GameConfigSpec", into = "GameConfigSpec")]
pub struct GameConfig {
    n_agents: u32,
    n_min: f64,
    n_max: f64,
    p_cooling: f64,
    p_recovery: f64,
    discount: f64,
}

/// Wire format for [`GameConfig`].
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
struct GameConfigSpec {
    n_agents: u32,
    n_min: f64,
    n_max: f64,
    p_cooling: f64,
    p_recovery: f64,
    discount: f64,
}

impl TryFrom<GameConfigSpec> for GameConfig {
    type Error = GameError;

    fn try_from(spec: GameConfigSpec) -> Result<Self, GameError> {
        GameConfig::builder()
            .n_agents(spec.n_agents)
            .n_min(spec.n_min)
            .n_max(spec.n_max)
            .p_cooling(spec.p_cooling)
            .p_recovery(spec.p_recovery)
            .discount(spec.discount)
            .build()
    }
}

impl From<GameConfig> for GameConfigSpec {
    fn from(c: GameConfig) -> Self {
        GameConfigSpec {
            n_agents: c.n_agents,
            n_min: c.n_min,
            n_max: c.n_max,
            p_cooling: c.p_cooling,
            p_recovery: c.p_recovery,
            discount: c.discount,
        }
    }
}

impl GameConfig {
    /// The paper's Table 2: `N = 1000`, `N_min = 250`, `N_max = 750`,
    /// `p_c = 0.50`, `p_r = 0.88`, `δ = 0.99`.
    #[must_use]
    pub fn paper_defaults() -> Self {
        GameConfig {
            n_agents: 1000,
            n_min: 250.0,
            n_max: 750.0,
            p_cooling: 0.50,
            p_recovery: 0.88,
            discount: 0.99,
        }
    }

    /// Start building a configuration from the paper defaults.
    #[must_use]
    pub fn builder() -> GameConfigBuilder {
        GameConfigBuilder {
            inner: GameConfig::paper_defaults(),
        }
    }

    /// Number of agents `N`.
    #[must_use]
    pub fn n_agents(&self) -> u32 {
        self.n_agents
    }

    /// Sprinter count below which the breaker never trips.
    #[must_use]
    pub fn n_min(&self) -> f64 {
        self.n_min
    }

    /// Sprinter count above which the breaker always trips.
    #[must_use]
    pub fn n_max(&self) -> f64 {
        self.n_max
    }

    /// Probability an agent in cooling stays in cooling
    /// (`1/(1 − p_c) = Δt_cool`).
    #[must_use]
    pub fn p_cooling(&self) -> f64 {
        self.p_cooling
    }

    /// Probability an agent in recovery stays in recovery
    /// (`1/(1 − p_r) = Δt_recover`).
    #[must_use]
    pub fn p_recovery(&self) -> f64 {
        self.p_recovery
    }

    /// Per-epoch discount factor `δ < 1`.
    #[must_use]
    pub fn discount(&self) -> f64 {
        self.discount
    }

    /// Expected cooling duration in epochs.
    #[must_use]
    pub fn cooling_epochs(&self) -> f64 {
        1.0 / (1.0 - self.p_cooling)
    }

    /// Expected recovery duration in epochs (infinite when `p_r = 1`,
    /// the prisoner's-dilemma limit of §6.4).
    #[must_use]
    pub fn recovery_epochs(&self) -> f64 {
        if self.p_recovery >= 1.0 {
            f64::INFINITY
        } else {
            1.0 / (1.0 - self.p_recovery)
        }
    }
}

impl Default for GameConfig {
    fn default() -> Self {
        GameConfig::paper_defaults()
    }
}

/// Builder for [`GameConfig`], seeded with the Table-2 defaults.
#[derive(Debug, Clone, Copy)]
pub struct GameConfigBuilder {
    inner: GameConfig,
}

impl GameConfigBuilder {
    /// Set the number of agents `N`.
    #[must_use]
    pub fn n_agents(mut self, n: u32) -> Self {
        self.inner.n_agents = n;
        self
    }

    /// Set `N_min` (may be fractional for sweeps).
    #[must_use]
    pub fn n_min(mut self, n_min: f64) -> Self {
        self.inner.n_min = n_min;
        self
    }

    /// Set `N_max`.
    #[must_use]
    pub fn n_max(mut self, n_max: f64) -> Self {
        self.inner.n_max = n_max;
        self
    }

    /// Set the cooling persistence `p_c`.
    #[must_use]
    pub fn p_cooling(mut self, p: f64) -> Self {
        self.inner.p_cooling = p;
        self
    }

    /// Set the recovery persistence `p_r`.
    ///
    /// `p_r = 1` (indefinite recovery) is allowed: it is the
    /// prisoner's-dilemma configuration the paper analyzes in §6.4, where
    /// the mean-field solve is expected to fail to find an equilibrium.
    #[must_use]
    pub fn p_recovery(mut self, p: f64) -> Self {
        self.inner.p_recovery = p;
        self
    }

    /// Set the discount factor `δ`.
    #[must_use]
    pub fn discount(mut self, d: f64) -> Self {
        self.inner.discount = d;
        self
    }

    /// Validate and produce the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidParameter`] when any of the following
    /// is violated: `N >= 1`, `0 <= N_min < N_max`, `p_c ∈ [0, 1)`,
    /// `p_r ∈ [0, 1]`, `δ ∈ (0, 1)`.
    pub fn build(self) -> crate::Result<GameConfig> {
        let c = self.inner;
        if c.n_agents == 0 {
            return Err(GameError::InvalidParameter {
                name: "n_agents",
                value: 0.0,
                expected: "at least one agent",
            });
        }
        if c.n_min < 0.0 || !c.n_min.is_finite() {
            return Err(GameError::InvalidParameter {
                name: "n_min",
                value: c.n_min,
                expected: "a non-negative finite sprinter count",
            });
        }
        if c.n_max <= c.n_min || !c.n_max.is_finite() {
            return Err(GameError::InvalidParameter {
                name: "n_max",
                value: c.n_max,
                expected: "a finite sprinter count strictly above n_min",
            });
        }
        if !(0.0..1.0).contains(&c.p_cooling) {
            return Err(GameError::InvalidParameter {
                name: "p_cooling",
                value: c.p_cooling,
                expected: "a probability in [0, 1)",
            });
        }
        if !(0.0..=1.0).contains(&c.p_recovery) {
            return Err(GameError::InvalidParameter {
                name: "p_recovery",
                value: c.p_recovery,
                expected: "a probability in [0, 1]",
            });
        }
        if c.discount.is_nan() || c.discount <= 0.0 || c.discount >= 1.0 {
            return Err(GameError::InvalidParameter {
                name: "discount",
                value: c.discount,
                expected: "a discount factor strictly between 0 and 1",
            });
        }
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table2() {
        let c = GameConfig::paper_defaults();
        assert_eq!(c.n_agents(), 1000);
        assert_eq!(c.n_min(), 250.0);
        assert_eq!(c.n_max(), 750.0);
        assert_eq!(c.p_cooling(), 0.50);
        assert_eq!(c.p_recovery(), 0.88);
        assert_eq!(c.discount(), 0.99);
        assert_eq!(GameConfig::default(), c);
    }

    #[test]
    fn derived_durations() {
        let c = GameConfig::paper_defaults();
        assert!((c.cooling_epochs() - 2.0).abs() < 1e-12);
        assert!((c.recovery_epochs() - 25.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn indefinite_recovery_is_representable() {
        let c = GameConfig::builder().p_recovery(1.0).build().unwrap();
        assert!(c.recovery_epochs().is_infinite());
    }

    #[test]
    fn builder_validates_each_parameter() {
        assert!(GameConfig::builder().n_agents(0).build().is_err());
        assert!(GameConfig::builder().n_min(-1.0).build().is_err());
        assert!(GameConfig::builder()
            .n_min(500.0)
            .n_max(400.0)
            .build()
            .is_err());
        assert!(GameConfig::builder().p_cooling(1.0).build().is_err());
        assert!(GameConfig::builder().p_recovery(1.1).build().is_err());
        assert!(GameConfig::builder().discount(1.0).build().is_err());
        assert!(GameConfig::builder().discount(0.0).build().is_err());
    }

    #[test]
    fn serde_round_trip_and_validation() {
        let c = GameConfig::paper_defaults();
        let json = serde_json::to_string(&c).unwrap();
        let back: GameConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
        // Invalid payloads are rejected by the builder.
        let bad = r#"{"n_agents": 0, "n_min": 250.0, "n_max": 750.0,
                      "p_cooling": 0.5, "p_recovery": 0.88, "discount": 0.99}"#;
        assert!(serde_json::from_str::<GameConfig>(bad).is_err());
        let bad = r#"{"n_agents": 1000, "n_min": 800.0, "n_max": 750.0,
                      "p_cooling": 0.5, "p_recovery": 0.88, "discount": 0.99}"#;
        assert!(serde_json::from_str::<GameConfig>(bad).is_err());
    }

    #[test]
    fn builder_round_trips() {
        let c = GameConfig::builder()
            .n_agents(200)
            .n_min(50.0)
            .n_max(150.0)
            .p_cooling(0.75)
            .p_recovery(0.9)
            .discount(0.95)
            .build()
            .unwrap();
        assert_eq!(c.n_agents(), 200);
        assert_eq!(c.p_cooling(), 0.75);
        assert!((c.cooling_epochs() - 4.0).abs() < 1e-12);
    }
}
