//! Bounded retry with exponential backoff and deterministic jitter.
//!
//! The control plane retries coordinator solves and message sends a
//! bounded number of times, spacing attempts by an exponentially
//! growing number of epochs. Jitter decorrelates retry storms across
//! agents while staying fully deterministic: the same seed always
//! yields the bit-identical delay sequence, so simulated racks remain
//! byte-reproducible.
//!
//! The schedule guarantees three properties (enforced by property
//! tests in `tests/backoff.rs`):
//!
//! 1. delays are monotone non-decreasing,
//! 2. no delay ever exceeds [`RetryPolicy::max_delay`],
//! 3. equal seeds produce bit-identical sequences.

use serde::{Deserialize, Serialize};
use sprint_stats::rng::splitmix64;

/// Bounded exponential-backoff policy, measured in epochs.
///
/// Attempt `n` (zero-based) is preceded by a delay of
/// `min(max_delay, base_delay * 2^n + jitter_n)` epochs, where
/// `jitter_n` is drawn deterministically from the schedule seed and
/// never exceeds `jitter * base_delay * 2^n`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts before giving up (the first attempt counts).
    pub max_attempts: u32,
    /// Delay before the first retry, in epochs.
    pub base_delay: u32,
    /// Hard cap on any single delay, in epochs.
    pub max_delay: u32,
    /// Jitter fraction in `[0, 1]`: each delay is stretched by up to
    /// this fraction of its un-jittered value. Values outside the
    /// range are clamped.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_delay: 1,
            max_delay: 32,
            jitter: 0.5,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries: one attempt, no delays.
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            base_delay: 0,
            max_delay: 0,
            jitter: 0.0,
        }
    }

    /// Number of retries available after the first attempt.
    pub fn retries(&self) -> u32 {
        self.max_attempts.saturating_sub(1)
    }

    /// Deterministic delay schedule for one retry loop.
    pub fn schedule(&self, seed: u64) -> BackoffSchedule {
        BackoffSchedule {
            policy: *self,
            issued: 0,
            // Mix the seed so a zero seed still produces jitter.
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }
}

/// Iterator over the jittered delays of a [`RetryPolicy`].
///
/// Yields one delay (in epochs) per remaining retry; `None` once the
/// attempt budget is exhausted.
#[derive(Debug, Clone)]
pub struct BackoffSchedule {
    policy: RetryPolicy,
    issued: u32,
    state: u64,
}

impl BackoffSchedule {
    /// Delay to wait before the next retry, or `None` when the
    /// attempt budget is spent.
    pub fn next_delay(&mut self) -> Option<u32> {
        if self.issued >= self.policy.retries() {
            return None;
        }
        let n = self.issued;
        self.issued += 1;

        let cap = u64::from(self.policy.max_delay);
        let raw = u64::from(self.policy.base_delay)
            .checked_shl(n)
            .unwrap_or(cap)
            .min(cap);
        let jitter_frac = self.policy.jitter.clamp(0.0, 1.0);
        // 53 uniform bits in [0, 1): deterministic across platforms.
        let u = (splitmix64(&mut self.state) >> 11) as f64 / (1u64 << 53) as f64;
        let jitter = (u * jitter_frac * raw as f64).floor() as u64;
        Some((raw + jitter).min(cap) as u32)
    }
}

impl Iterator for BackoffSchedule {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        self.next_delay()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.policy.retries().saturating_sub(self.issued) as usize;
        (left, Some(left))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_bounded_and_monotone() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base_delay: 1,
            max_delay: 20,
            jitter: 0.5,
        };
        let delays: Vec<u32> = policy.schedule(7).collect();
        assert_eq!(delays.len(), 7);
        for pair in delays.windows(2) {
            assert!(pair[0] <= pair[1], "delays must not shrink: {delays:?}");
        }
        assert!(delays.iter().all(|&d| d <= 20));
    }

    #[test]
    fn equal_seeds_are_bit_identical_and_unequal_seeds_diverge() {
        let policy = RetryPolicy::default();
        let a: Vec<u32> = policy.schedule(42).collect();
        let b: Vec<u32> = policy.schedule(42).collect();
        assert_eq!(a, b);
        let differs = (0..64u64).any(|s| policy.schedule(s).collect::<Vec<_>>() != a);
        assert!(differs, "jitter must actually depend on the seed");
    }

    #[test]
    fn none_never_delays() {
        assert_eq!(RetryPolicy::none().schedule(1).next_delay(), None);
    }

    #[test]
    fn serde_round_trips() {
        let policy = RetryPolicy::default();
        let json = serde_json::to_string(&policy).unwrap();
        assert_eq!(serde_json::from_str::<RetryPolicy>(&json).unwrap(), policy);
    }
}
