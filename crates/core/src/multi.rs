//! Mean-field equilibria for heterogeneous agent populations (§6.2,
//! Figure 9).
//!
//! "When agents represent different types of applications, E-T assigns
//! different sprinting thresholds for each type." The mean-field structure
//! is unchanged: each type best-responds to the *shared* tripping
//! probability, and the expected sprinter count aggregates across types:
//!
//! `n_S = Σ_k p_s,k · p_A,k · N_k`.

use sprint_stats::density::DiscreteDensity;

use crate::bellman::{self, ValueFunctions};
use crate::config::GameConfig;
use crate::meanfield::SolverOptions;
use crate::sprint_dist::SprintDistribution;
use crate::threshold::ThresholdStrategy;
use crate::trip::TripCurve;
use crate::GameError;

/// One application type in a heterogeneous population.
#[derive(Debug, Clone, PartialEq)]
pub struct AgentTypeSpec {
    /// Display name (e.g. the benchmark's short name).
    pub name: String,
    /// Utility density `f_k(u)` of this type.
    pub density: DiscreteDensity,
    /// Number of agents of this type.
    pub count: u32,
}

impl AgentTypeSpec {
    /// Create a type specification.
    #[must_use]
    pub fn new(name: impl Into<String>, density: DiscreteDensity, count: u32) -> Self {
        AgentTypeSpec {
            name: name.into(),
            density,
            count,
        }
    }
}

/// Per-type equilibrium outcome.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TypeEquilibrium {
    /// Type name.
    pub name: String,
    /// This type's tailored threshold.
    pub threshold: f64,
    /// This type's sprint probability (Equation 9).
    pub p_sprint: f64,
    /// This type's stationary active share.
    pub p_active: f64,
    /// Expected sprinters contributed by this type.
    pub expected_sprinters: f64,
    /// This type's state values at equilibrium.
    pub values: ValueFunctions,
}

impl TypeEquilibrium {
    /// The type's threshold as an executable strategy.
    ///
    /// Solver thresholds are non-negative; an invalid one (e.g. from a
    /// corrupted archive) degrades to the breaker-safe never-sprint
    /// strategy instead of panicking.
    #[must_use]
    pub fn strategy(&self) -> ThresholdStrategy {
        ThresholdStrategy::new(self.threshold).unwrap_or_else(|_| ThresholdStrategy::never_sprint())
    }
}

/// Equilibrium of a heterogeneous population.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HeterogeneousEquilibrium {
    types: Vec<TypeEquilibrium>,
    p_trip: f64,
    iterations: usize,
    residual: f64,
}

impl HeterogeneousEquilibrium {
    /// Per-type outcomes, in specification order.
    #[must_use]
    pub fn types(&self) -> &[TypeEquilibrium] {
        &self.types
    }

    /// The shared stationary tripping probability.
    #[must_use]
    pub fn trip_probability(&self) -> f64 {
        self.p_trip
    }

    /// Total expected simultaneous sprinters across types.
    #[must_use]
    pub fn expected_sprinters(&self) -> f64 {
        self.types.iter().map(|t| t.expected_sprinters).sum()
    }

    /// Outer iterations used.
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Final fixed-point residual.
    #[must_use]
    pub fn residual(&self) -> f64 {
        self.residual
    }

    /// Look up a type's outcome by name.
    #[must_use]
    pub fn type_named(&self, name: &str) -> Option<&TypeEquilibrium> {
        self.types.iter().find(|t| t.name == name)
    }
}

/// Mean-field solver for heterogeneous populations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiSolver {
    config: GameConfig,
    options: SolverOptions,
}

impl MultiSolver {
    /// Create a solver with default options.
    #[must_use]
    pub fn new(config: GameConfig) -> Self {
        MultiSolver {
            config,
            options: SolverOptions::default(),
        }
    }

    /// Create a solver with explicit options.
    #[must_use]
    pub fn with_options(config: GameConfig, options: SolverOptions) -> Self {
        MultiSolver { config, options }
    }

    fn respond(
        &self,
        types: &[AgentTypeSpec],
        p_trip: f64,
    ) -> crate::Result<(Vec<TypeEquilibrium>, f64)> {
        let mut outcomes = Vec::with_capacity(types.len());
        let mut total_sprinters = 0.0;
        for spec in types {
            let sol = bellman::solve(&self.config, &spec.density, p_trip, self.options.method)?;
            let ps = spec.density.tail_mass(sol.threshold);
            // Per-type chain shares the rack's p_c; Equation 10 scales by
            // the type's own count.
            let dist = SprintDistribution::from_sprint_probability(&self.config, ps)?;
            let sprinters = ps * dist.p_active * f64::from(spec.count);
            total_sprinters += sprinters;
            outcomes.push(TypeEquilibrium {
                name: spec.name.clone(),
                threshold: sol.threshold,
                p_sprint: ps,
                p_active: dist.p_active,
                expected_sprinters: sprinters,
                values: sol.values,
            });
        }
        let implied = TripCurve::from_config(&self.config).p_trip(total_sprinters);
        Ok((outcomes, implied))
    }

    /// Solve for the heterogeneous equilibrium.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidParameter`] when `types` is empty or
    /// the type counts do not sum to the configuration's `N`, and
    /// [`GameError::NoEquilibrium`] when the fixed point cannot be found.
    pub fn solve(&self, types: &[AgentTypeSpec]) -> crate::Result<HeterogeneousEquilibrium> {
        if types.is_empty() {
            return Err(GameError::InvalidParameter {
                name: "types",
                value: 0.0,
                expected: "at least one agent type",
            });
        }
        let total: u64 = types.iter().map(|t| u64::from(t.count)).sum();
        if total != u64::from(self.config.n_agents()) {
            return Err(GameError::InvalidParameter {
                name: "types",
                value: total as f64,
                expected: "type counts summing to the configuration's N",
            });
        }

        let mut p = 1.0f64;
        let mut residual = f64::INFINITY;
        for it in 0..self.options.max_iterations {
            let (outcomes, implied) = self.respond(types, p)?;
            residual = (implied - p).abs();
            if residual < self.options.tolerance {
                return Ok(HeterogeneousEquilibrium {
                    types: outcomes,
                    p_trip: p,
                    iterations: it + 1,
                    residual,
                });
            }
            p = (p + self.options.damping * (implied - p)).clamp(0.0, 1.0);
        }

        // Bisection fallback, mirroring the homogeneous solver.
        let g = |p: f64| -> crate::Result<f64> {
            let (_, implied) = self.respond(types, p)?;
            Ok(implied - p)
        };
        let mut lo = 0.0f64;
        let mut hi = 1.0f64;
        let g_lo = g(lo)?;
        if g_lo.abs() < self.options.tolerance {
            hi = lo;
        } else if g(hi)?.signum() == g_lo.signum() && g(hi)?.abs() >= self.options.tolerance {
            return Err(GameError::NoEquilibrium {
                iterations: self.options.max_iterations,
                residual,
            });
        }
        for _ in 0..200 {
            if hi - lo < 1e-12 {
                break;
            }
            let mid = 0.5 * (lo + hi);
            let g_mid = g(mid)?;
            if g_mid.abs() < self.options.tolerance {
                lo = mid;
                hi = mid;
                break;
            }
            if g_mid.signum() == g_lo.signum() {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let p = 0.5 * (lo + hi);
        let (outcomes, implied) = self.respond(types, p)?;
        let residual = (implied - p).abs();
        if residual > 1e-4 {
            return Err(GameError::NoEquilibrium {
                iterations: self.options.max_iterations,
                residual,
            });
        }
        Ok(HeterogeneousEquilibrium {
            types: outcomes,
            p_trip: p,
            iterations: self.options.max_iterations,
            residual,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meanfield::MeanFieldSolver;
    use sprint_workloads::Benchmark;

    fn spec(b: Benchmark, count: u32) -> AgentTypeSpec {
        AgentTypeSpec::new(b.name(), b.utility_density(512).unwrap(), count)
    }

    #[test]
    fn validates_population() {
        let solver = MultiSolver::new(GameConfig::paper_defaults());
        assert!(solver.solve(&[]).is_err());
        // Counts must sum to N = 1000.
        assert!(solver.solve(&[spec(Benchmark::Svm, 900)]).is_err());
    }

    #[test]
    fn single_type_matches_homogeneous_solver() {
        let cfg = GameConfig::paper_defaults();
        let multi = MultiSolver::new(cfg)
            .solve(&[spec(Benchmark::DecisionTree, 1000)])
            .unwrap();
        let homo = MeanFieldSolver::new(cfg)
            .run(
                &Benchmark::DecisionTree.utility_density(512).unwrap(),
                &mut sprint_telemetry::Telemetry::noop(),
            )
            .unwrap();
        let t = &multi.types()[0];
        assert!(
            (t.threshold - homo.threshold()).abs() < 1e-3,
            "multi {} vs homo {}",
            t.threshold,
            homo.threshold()
        );
        assert!((multi.trip_probability() - homo.trip_probability()).abs() < 1e-3);
    }

    #[test]
    fn types_get_tailored_thresholds() {
        let cfg = GameConfig::paper_defaults();
        let eq = MultiSolver::new(cfg)
            .solve(&[
                spec(Benchmark::LinearRegression, 500),
                spec(Benchmark::PageRank, 500),
            ])
            .unwrap();
        let linear = eq.type_named("linear").unwrap();
        let pagerank = eq.type_named("pagerank").unwrap();
        // Linear regression sprints indiscriminately; PageRank sets a high
        // threshold cutting its bimodal valley (§6.3).
        assert!(linear.p_sprint > 0.95, "linear p_s = {}", linear.p_sprint);
        assert!(
            pagerank.threshold > linear.threshold + 1.0,
            "pagerank threshold {} vs linear {}",
            pagerank.threshold,
            linear.threshold
        );
        assert!(pagerank.p_sprint < 0.7);
    }

    #[test]
    fn aggregate_sprinters_respect_the_band() {
        let cfg = GameConfig::paper_defaults();
        let types: Vec<AgentTypeSpec> = [
            (Benchmark::DecisionTree, 250u32),
            (Benchmark::Svm, 250),
            (Benchmark::Kmeans, 250),
            (Benchmark::PageRank, 250),
        ]
        .into_iter()
        .map(|(b, c)| spec(b, c))
        .collect();
        let eq = MultiSolver::new(cfg).solve(&types).unwrap();
        let total = eq.expected_sprinters();
        let per_type: f64 = eq.types().iter().map(|t| t.expected_sprinters).sum();
        assert!((total - per_type).abs() < 1e-9);
        // Strategic play keeps the aggregate near or below the band edge.
        assert!(total < 450.0, "n_S = {total}");
        assert!(eq.trip_probability() < 0.4);
    }

    #[test]
    fn fixed_point_is_consistent() {
        let cfg = GameConfig::paper_defaults();
        let eq = MultiSolver::new(cfg)
            .solve(&[spec(Benchmark::Als, 500), spec(Benchmark::Correlation, 500)])
            .unwrap();
        let implied = TripCurve::from_config(&cfg).p_trip(eq.expected_sprinters());
        assert!((implied - eq.trip_probability()).abs() < 1e-4);
        assert!(eq.residual() < 1e-4);
        assert!(eq.iterations() >= 1);
    }

    #[test]
    fn all_eleven_types_together() {
        // The Figure 9 end point: all 11 application types share the rack.
        let cfg = GameConfig::builder()
            .n_agents(1001)
            .n_min(250.25)
            .n_max(750.75)
            .build()
            .unwrap();
        let types: Vec<AgentTypeSpec> = Benchmark::ALL.into_iter().map(|b| spec(b, 91)).collect();
        let eq = MultiSolver::new(cfg).solve(&types).unwrap();
        assert_eq!(eq.types().len(), 11);
        for t in eq.types() {
            assert!(t.threshold >= 0.0);
            assert!(
                (0.0..=1.0).contains(&t.p_sprint),
                "{}: {}",
                t.name,
                t.p_sprint
            );
        }
    }
}
