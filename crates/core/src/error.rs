use std::error::Error;
use std::fmt;

use sprint_stats::StatsError;
use sprint_workloads::WorkloadError;

/// Error raised by the sprinting game's solvers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GameError {
    /// A game parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Rejected value.
        value: f64,
        /// Human-readable description of the valid domain.
        expected: &'static str,
    },
    /// The mean-field iteration failed to converge.
    ///
    /// This is expected in the prisoner's-dilemma limit (`p_r = 1`,
    /// paper §6.4) where no equilibrium avoids tripping the breaker.
    NoEquilibrium {
        /// Iterations attempted.
        iterations: usize,
        /// Final fixed-point residual on the tripping probability.
        residual: f64,
    },
    /// Algorithm 1 exhausted every damping escalation without meeting the
    /// tolerance, but a usable degraded answer exists.
    ///
    /// Carries the best iterate found plus a conservative fallback
    /// threshold guaranteeing expected sprinters stay below `N_min`
    /// (the breaker's never-trip region, §2.2), so callers can keep the
    /// rack running instead of aborting.
    NonConvergence {
        /// Iterations attempted across every damping retry.
        iterations: usize,
        /// Best (smallest) fixed-point residual observed.
        residual: f64,
        /// Threshold of the best iterate.
        best_threshold: f64,
        /// Trip probability of the best iterate.
        best_trip_probability: f64,
        /// Safe threshold: never sprint above the `N_min/N` margin.
        fallback_threshold: f64,
        /// Fixed-point residual of every outer iteration, in order, across
        /// all damping escalations — the full convergence curve, so a
        /// failed solve is diagnosable (plateau vs. oscillation) without
        /// re-running it instrumented.
        residual_history: Vec<f64>,
    },
    /// An underlying statistics operation failed.
    Stats(StatsError),
    /// An underlying workload operation failed.
    Workload(WorkloadError),
}

impl fmt::Display for GameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GameError::InvalidParameter {
                name,
                value,
                expected,
            } => write!(
                f,
                "parameter `{name}` = {value} is invalid: expected {expected}"
            ),
            GameError::NoEquilibrium {
                iterations,
                residual,
            } => write!(
                f,
                "mean-field iteration found no equilibrium after {iterations} steps \
                 (residual {residual:e})"
            ),
            GameError::NonConvergence {
                iterations,
                residual,
                best_threshold,
                fallback_threshold,
                residual_history,
                ..
            } => write!(
                f,
                "mean-field iteration did not converge after {iterations} steps across \
                 every damping escalation (best residual {residual:e}, best threshold \
                 {best_threshold:.4}, {} residuals recorded); conservative fallback \
                 threshold {fallback_threshold:.4} is available",
                residual_history.len()
            ),
            GameError::Stats(e) => write!(f, "statistics error: {e}"),
            GameError::Workload(e) => write!(f, "workload error: {e}"),
        }
    }
}

impl Error for GameError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GameError::Stats(e) => Some(e),
            GameError::Workload(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StatsError> for GameError {
    fn from(e: StatsError) -> Self {
        GameError::Stats(e)
    }
}

impl From<WorkloadError> for GameError {
    fn from(e: WorkloadError) -> Self {
        GameError::Workload(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = GameError::NoEquilibrium {
            iterations: 100,
            residual: 0.5,
        };
        assert!(e.to_string().contains("no equilibrium"));
        assert!(e.source().is_none());

        let e: GameError = StatsError::EmptyInput.into();
        assert!(e.source().is_some());
        let e: GameError = WorkloadError::EmptyWorkload { what: "jobs" }.into();
        assert!(e.source().is_some());
    }

    #[test]
    fn is_error_send_sync() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<GameError>();
    }
}
