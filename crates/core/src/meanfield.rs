//! Mean-field equilibrium solver — the paper's Algorithm 1 (§4.4).
//!
//! The coordinator's offline analysis iterates three steps until the
//! tripping probability is stationary:
//!
//! 1. **Optimize the sprint strategy** — solve the Bellman equation at the
//!    current `P_trip` to get threshold `u_T` ([`crate::bellman`]).
//! 2. **Characterize the sprint distribution** — compute `p_s`, the
//!    stationary active share, and `n_S` ([`crate::sprint_dist`]).
//! 3. **Update the tripping probability** — `P'_trip` from the trip curve
//!    ([`crate::trip`]); stop when `P'_trip = P_trip`.
//!
//! The paper initializes `P⁰_trip = 1` and iterates undamped. Because the
//! best-response map is *increasing* in `P_trip` (riskier racks lower
//! thresholds — §6.5's "ironic" aggression), undamped iteration can cycle;
//! [`SolverOptions::damping`] (an ablation DESIGN.md calls out) averages
//! the update, and a bisection fallback guarantees an answer whenever a
//! fixed point exists.

use sprint_stats::density::DiscreteDensity;

use crate::bellman::{self, BellmanMethod};
use crate::config::GameConfig;
use crate::equilibrium::Equilibrium;
use crate::sprint_dist::SprintDistribution;
use crate::trip::TripCurve;
use crate::GameError;

/// Options for the mean-field iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverOptions {
    /// Bellman solver used in step 1.
    pub method: BellmanMethod,
    /// Fraction of the tripping-probability update applied per iteration.
    /// `1.0` is the paper's undamped Algorithm 1.
    pub damping: f64,
    /// Convergence tolerance on `|P'_trip − P_trip|`.
    pub tolerance: f64,
    /// Maximum outer iterations before falling back to bisection.
    pub max_iterations: usize,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            method: BellmanMethod::PolicyIteration,
            damping: 0.5,
            tolerance: 1e-9,
            max_iterations: 500,
        }
    }
}

impl SolverOptions {
    /// The paper's literal Algorithm 1: undamped updates from `P⁰ = 1`,
    /// value-iteration inner solver.
    #[must_use]
    pub fn paper_literal() -> Self {
        SolverOptions {
            method: BellmanMethod::ValueIteration,
            damping: 1.0,
            tolerance: 1e-6,
            max_iterations: 200,
        }
    }
}

/// Mean-field equilibrium solver for a homogeneous agent population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanFieldSolver {
    config: GameConfig,
    options: SolverOptions,
}

impl MeanFieldSolver {
    /// Create a solver with default options.
    #[must_use]
    pub fn new(config: GameConfig) -> Self {
        MeanFieldSolver {
            config,
            options: SolverOptions::default(),
        }
    }

    /// Create a solver with explicit options.
    #[must_use]
    pub fn with_options(config: GameConfig, options: SolverOptions) -> Self {
        MeanFieldSolver { config, options }
    }

    /// The game configuration.
    #[must_use]
    pub fn config(&self) -> &GameConfig {
        &self.config
    }

    /// One composition of Algorithm 1's three steps: threshold, sprint
    /// distribution, and implied tripping probability at `p_trip`.
    fn respond(
        &self,
        density: &DiscreteDensity,
        p_trip: f64,
    ) -> crate::Result<(bellman::BellmanSolution, SprintDistribution, f64)> {
        let sol = bellman::solve(&self.config, density, p_trip, self.options.method)?;
        let strategy = crate::threshold::ThresholdStrategy::new(sol.threshold)?;
        let dist = SprintDistribution::characterize(&self.config, density, &strategy)?;
        let implied = TripCurve::from_config(&self.config).p_trip(dist.expected_sprinters);
        Ok((sol, dist, implied))
    }

    /// Solve for the mean-field equilibrium of `density`.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::NoEquilibrium`] when neither damped iteration
    /// nor bisection settles — which the paper predicts for pathological
    /// configurations such as the §6.4 prisoner's dilemma with a breaker
    /// band the population always overwhelms.
    pub fn solve(&self, density: &DiscreteDensity) -> crate::Result<Equilibrium> {
        // Algorithm 1: start from certain tripping.
        let mut p = 1.0f64;
        let mut residual = f64::INFINITY;
        for it in 0..self.options.max_iterations {
            let (sol, dist, implied) = self.respond(density, p)?;
            residual = (implied - p).abs();
            if residual < self.options.tolerance {
                return Ok(Equilibrium {
                    threshold: sol.threshold,
                    p_trip: p,
                    distribution: dist,
                    values: sol.values,
                    iterations: it + 1,
                    residual,
                });
            }
            p = (p + self.options.damping * (implied - p)).clamp(0.0, 1.0);
        }
        // Bisection fallback on g(p) = implied(p) − p, which brackets a
        // root on [0, 1] whenever the response map is continuous.
        self.bisect(density)
            .ok_or(GameError::NoEquilibrium {
                iterations: self.options.max_iterations,
                residual,
            })
    }

    fn bisect(&self, density: &DiscreteDensity) -> Option<Equilibrium> {
        let g = |p: f64| -> Option<f64> {
            let (_, _, implied) = self.respond(density, p).ok()?;
            Some(implied - p)
        };
        let mut lo = 0.0f64;
        let mut hi = 1.0f64;
        let g_lo = g(lo)?;
        let g_hi = g(hi)?;
        if g_lo.abs() < self.options.tolerance {
            hi = lo;
        } else if g_hi.abs() >= self.options.tolerance && g_lo.signum() == g_hi.signum() {
            return None;
        }
        for _ in 0..200 {
            if hi - lo < 1e-12 {
                break;
            }
            let mid = 0.5 * (lo + hi);
            let g_mid = g(mid)?;
            if g_mid.abs() < self.options.tolerance {
                lo = mid;
                hi = mid;
                break;
            }
            if g_mid.signum() == g_lo.signum() {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let p = 0.5 * (lo + hi);
        let (sol, dist, implied) = self.respond(density, p).ok()?;
        let residual = (implied - p).abs();
        // Accept only true fixed points: bisection can "converge" onto a
        // discontinuity that is not an equilibrium.
        if residual > 1e-4 {
            return None;
        }
        Some(Equilibrium {
            threshold: sol.threshold,
            p_trip: p,
            distribution: dist,
            values: sol.values,
            iterations: self.options.max_iterations,
            residual,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprint_workloads::Benchmark;

    fn solve_benchmark(b: Benchmark) -> Equilibrium {
        let cfg = GameConfig::paper_defaults();
        MeanFieldSolver::new(cfg)
            .solve(&b.utility_density(512).unwrap())
            .unwrap()
    }

    #[test]
    fn all_benchmarks_reach_equilibrium() {
        let cfg = GameConfig::paper_defaults();
        for b in Benchmark::ALL {
            let eq = solve_benchmark(b);
            let check = eq
                .verify(&cfg, &b.utility_density(512).unwrap(), 60)
                .unwrap();
            assert!(
                check.holds(1e-4),
                "{b}: check = {check:?} at threshold {}",
                eq.threshold()
            );
        }
    }

    #[test]
    fn narrow_band_benchmarks_sprint_always() {
        // Figure 11: Linear Regression and Correlation sprint at every
        // opportunity; E-T degenerates to a greedy equilibrium (§6.2).
        for b in [Benchmark::LinearRegression, Benchmark::Correlation] {
            let eq = solve_benchmark(b);
            assert!(
                eq.sprint_probability() > 0.97,
                "{b}: p_s = {}",
                eq.sprint_probability()
            );
        }
    }

    #[test]
    fn most_benchmarks_sprint_judiciously() {
        // Figure 11: "The majority of applications resemble PageRank with
        // higher thresholds and judicious sprints."
        let mut judicious = 0;
        for b in Benchmark::ALL {
            let eq = solve_benchmark(b);
            if eq.sprint_probability() < 0.8 {
                judicious += 1;
            }
        }
        assert!(judicious >= 8, "only {judicious} of 11 sprint judiciously");
    }

    #[test]
    fn equilibrium_sprinters_near_band_edge() {
        // Figure 6: "in equilibrium, the number of sprinters is just
        // slightly above N_min = 250" for the representative app.
        let eq = solve_benchmark(Benchmark::DecisionTree);
        let ns = eq.expected_sprinters();
        assert!(
            (200.0..=350.0).contains(&ns),
            "decision tree equilibrium n_S = {ns}"
        );
        assert!(eq.trip_probability() < 0.25, "P = {}", eq.trip_probability());
    }

    #[test]
    fn equilibrium_is_consistent_fixed_point() {
        let cfg = GameConfig::paper_defaults();
        let d = Benchmark::Svm.utility_density(512).unwrap();
        let eq = MeanFieldSolver::new(cfg).solve(&d).unwrap();
        // Re-deriving P from n_S reproduces the equilibrium P.
        let p = TripCurve::from_config(&cfg).p_trip(eq.expected_sprinters());
        assert!((p - eq.trip_probability()).abs() < 1e-6);
        assert!(eq.residual() < 1e-4);
        assert!(eq.iterations() >= 1);
    }

    #[test]
    fn damped_and_literal_algorithms_agree() {
        let cfg = GameConfig::paper_defaults();
        let d = Benchmark::PageRank.utility_density(512).unwrap();
        let damped = MeanFieldSolver::new(cfg).solve(&d).unwrap();
        let literal = MeanFieldSolver::with_options(cfg, SolverOptions::paper_literal())
            .solve(&d)
            .unwrap();
        assert!(
            (damped.threshold() - literal.threshold()).abs() < 0.05,
            "damped {} vs literal {}",
            damped.threshold(),
            literal.threshold()
        );
        assert!((damped.trip_probability() - literal.trip_probability()).abs() < 0.02);
    }

    #[test]
    fn small_band_raises_aggression() {
        // Figure 13: small N_min/N_max => high P(trip) => lower thresholds
        // ("agents sprint more aggressively and extract performance now").
        let d = Benchmark::DecisionTree.utility_density(512).unwrap();
        let small = GameConfig::builder()
            .n_min(50.0)
            .n_max(150.0)
            .build()
            .unwrap();
        let big = GameConfig::builder()
            .n_min(450.0)
            .n_max(950.0)
            .build()
            .unwrap();
        let eq_small = MeanFieldSolver::new(small).solve(&d).unwrap();
        let eq_big = MeanFieldSolver::new(big).solve(&d).unwrap();
        assert!(
            eq_small.threshold() < eq_big.threshold(),
            "small-band threshold {} should be below big-band {}",
            eq_small.threshold(),
            eq_big.threshold()
        );
        assert!(eq_small.trip_probability() > eq_big.trip_probability());
    }

    #[test]
    fn indefinite_recovery_still_yields_mean_field_fixed_point() {
        // §6.4: with p_r = 1 the *mean-field* fixed point exists but has
        // P_trip > 0 — the system eventually trips into indefinite
        // recovery. (The inefficiency shows up in throughput, Figure 12.)
        // Linear Regression exhibits it sharply: its agents sprint every
        // epoch regardless, so n_S sits above N_min at any P_trip.
        let cfg = GameConfig::builder().p_recovery(1.0).build().unwrap();
        let d = Benchmark::LinearRegression.utility_density(512).unwrap();
        let eq = MeanFieldSolver::new(cfg).solve(&d).unwrap();
        assert!(
            eq.trip_probability() > 0.0,
            "no equilibrium avoids tripping: P = {}",
            eq.trip_probability()
        );
    }

    #[test]
    fn strategy_round_trips() {
        let eq = solve_benchmark(Benchmark::Kmeans);
        let s = eq.strategy();
        assert_eq!(s.threshold(), eq.threshold());
    }

    #[test]
    fn equilibrium_serde_round_trip() {
        // The coordinator can archive and re-load solved equilibria.
        let eq = solve_benchmark(Benchmark::Svm);
        let json = serde_json::to_string(&eq).unwrap();
        let back: Equilibrium = serde_json::from_str(&json).unwrap();
        assert_eq!(eq, back);
        assert_eq!(back.threshold(), eq.threshold());
    }
}
