//! Mean-field equilibrium solver — the paper's Algorithm 1 (§4.4).
//!
//! The coordinator's offline analysis iterates three steps until the
//! tripping probability is stationary:
//!
//! 1. **Optimize the sprint strategy** — solve the Bellman equation at the
//!    current `P_trip` to get threshold `u_T` ([`crate::bellman`]).
//! 2. **Characterize the sprint distribution** — compute `p_s`, the
//!    stationary active share, and `n_S` ([`crate::sprint_dist`]).
//! 3. **Update the tripping probability** — `P'_trip` from the trip curve
//!    ([`crate::trip`]); stop when `P'_trip = P_trip`.
//!
//! The paper initializes `P⁰_trip = 1` and iterates undamped. Because the
//! best-response map is *increasing* in `P_trip` (riskier racks lower
//! thresholds — §6.5's "ironic" aggression), undamped iteration can cycle;
//! [`SolverOptions::damping`] (an ablation DESIGN.md calls out) averages
//! the update, and a bisection fallback guarantees an answer whenever a
//! fixed point exists.

use sprint_stats::density::DiscreteDensity;
use sprint_telemetry::{Event, EventKind, Recorder, Telemetry};

use crate::bellman::{self, BellmanMethod};
use crate::config::GameConfig;
use crate::equilibrium::Equilibrium;
use crate::sprint_dist::SprintDistribution;
use crate::trip::TripCurve;
use crate::GameError;

/// Options for the mean-field iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverOptions {
    /// Bellman solver used in step 1.
    pub method: BellmanMethod,
    /// Fraction of the tripping-probability update applied per iteration.
    /// `1.0` is the paper's undamped Algorithm 1.
    pub damping: f64,
    /// Convergence tolerance on `|P'_trip − P_trip|`.
    pub tolerance: f64,
    /// Maximum outer iterations before falling back to bisection.
    pub max_iterations: usize,
    /// Hard budget on *total* response-map evaluations across the first
    /// attempt, every damping escalation, and bisection. `None` leaves
    /// the solve unbounded (the historical behavior). This is the
    /// deterministic analog of a solve deadline: the control plane sets
    /// it so a coordinator re-solve can never stall an epoch loop, and
    /// exhaustion surfaces as [`GameError::NonConvergence`] with the
    /// conservative fallback attached.
    pub iteration_budget: Option<usize>,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            method: BellmanMethod::PolicyIteration,
            damping: 0.5,
            tolerance: 1e-9,
            max_iterations: 500,
            iteration_budget: None,
        }
    }
}

impl SolverOptions {
    /// The paper's literal Algorithm 1: undamped updates from `P⁰ = 1`,
    /// value-iteration inner solver.
    #[must_use]
    pub fn paper_literal() -> Self {
        SolverOptions {
            method: BellmanMethod::ValueIteration,
            damping: 1.0,
            tolerance: 1e-6,
            max_iterations: 200,
            iteration_budget: None,
        }
    }

    /// Cap total response-map evaluations (builder style).
    #[must_use]
    pub fn with_iteration_budget(mut self, budget: usize) -> Self {
        self.iteration_budget = Some(budget);
        self
    }
}

/// Mean-field equilibrium solver for a homogeneous agent population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanFieldSolver {
    config: GameConfig,
    options: SolverOptions,
}

impl MeanFieldSolver {
    /// Create a solver with default options.
    #[must_use]
    pub fn new(config: GameConfig) -> Self {
        MeanFieldSolver {
            config,
            options: SolverOptions::default(),
        }
    }

    /// Create a solver with explicit options.
    #[must_use]
    pub fn with_options(config: GameConfig, options: SolverOptions) -> Self {
        MeanFieldSolver { config, options }
    }

    /// The game configuration.
    #[must_use]
    pub fn config(&self) -> &GameConfig {
        &self.config
    }

    /// The solver options.
    #[must_use]
    pub fn options(&self) -> &SolverOptions {
        &self.options
    }

    /// One composition of Algorithm 1's three steps: threshold, sprint
    /// distribution, and implied tripping probability at `p_trip`.
    fn respond(
        &self,
        density: &DiscreteDensity,
        p_trip: f64,
    ) -> crate::Result<(bellman::BellmanSolution, SprintDistribution, f64)> {
        let sol = bellman::solve(&self.config, density, p_trip, self.options.method)?;
        let strategy = crate::threshold::ThresholdStrategy::new(sol.threshold)?;
        let dist = SprintDistribution::characterize(&self.config, density, &strategy)?;
        let implied = TripCurve::from_config(&self.config).p_trip(dist.expected_sprinters);
        Ok((sol, dist, implied))
    }

    /// Solve for the mean-field equilibrium of `density`, narrated
    /// through a telemetry kit — the unified entry point (pass
    /// [`Telemetry::noop()`] for an unobserved solve).
    ///
    /// The damped iteration retries with progressively heavier damping
    /// before falling back to bisection: threshold quantization makes the
    /// response map discontinuous, so a damping that cycles at one scale
    /// can settle at another. The escalation is bounded; it never spins.
    ///
    /// With an enabled kit this emits one [`Event::SolverIteration`] per
    /// outer iteration (damping, residual, and both trip probabilities),
    /// [`Event::SolverEscalation`] at each damping change,
    /// [`Event::SolverBisection`] when the fixed-point iteration gives way
    /// to bisection, and a final [`Event::SolverOutcome`]. With a disabled
    /// kit emission is gated on [`Recorder::enabled`], so no events are
    /// constructed and the iteration arithmetic is untouched — results are
    /// bit-identical either way.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::NonConvergence`] when every damping escalation
    /// *and* bisection fail — which the paper predicts for pathological
    /// configurations such as the §6.4 prisoner's dilemma with a breaker
    /// band the population always overwhelms. The error carries the best
    /// iterate found, the full residual history, and a conservative
    /// fallback threshold that keeps expected sprinters below `N_min`
    /// (the breaker's never-trip region, §2.2), so callers can degrade
    /// gracefully instead of aborting.
    pub fn run(
        &self,
        density: &DiscreteDensity,
        telemetry: &mut Telemetry,
    ) -> crate::Result<Equilibrium> {
        self.solve_impl(density, None, telemetry.recorder())
    }

    /// [`MeanFieldSolver::run`] with an optional warm start: an initial
    /// `P_trip` iterate (clamped to `[0, 1]`) replacing Algorithm 1's
    /// cold start from certain tripping.
    ///
    /// Near an already-solved neighbor — a sweep grid cell one parameter
    /// step away, a re-solve after small population drift — the fixed
    /// point moves a little, so starting from the neighbor's `P_trip`
    /// converges in a few iterations instead of walking down from 1.
    /// Only the first attempt is warmed; damping escalations and the
    /// bisection fallback restart cold, so a misleading hint degrades to
    /// exactly the cold-start behavior instead of poisoning the retries.
    ///
    /// # Errors
    ///
    /// Identical to [`MeanFieldSolver::run`].
    pub fn run_from(
        &self,
        density: &DiscreteDensity,
        warm_start: Option<f64>,
        telemetry: &mut Telemetry,
    ) -> crate::Result<Equilibrium> {
        self.solve_impl(density, warm_start, telemetry.recorder())
    }

    pub(crate) fn solve_impl(
        &self,
        density: &DiscreteDensity,
        warm_start: Option<f64>,
        recorder: &mut dyn Recorder,
    ) -> crate::Result<Equilibrium> {
        // Escalation schedule: the configured damping first, then
        // progressively heavier averaging.
        const ESCALATION: [f64; 4] = [0.5, 0.25, 0.1, 0.02];
        let on = recorder.enabled();
        let want_iter = on && recorder.wants(EventKind::SolverIteration);
        let budget = self.options.iteration_budget.unwrap_or(usize::MAX);
        let mut total_iterations = 0usize;
        let mut best: Option<(f64, f64, f64)> = None; // (residual, p, threshold)
        let mut history: Vec<f64> = Vec::new();
        let mut attempt_idx = 0u32;
        let mut attempt = |damping: f64,
                           max_iterations: usize,
                           start: f64,
                           total: &mut usize,
                           best: &mut Option<(f64, f64, f64)>,
                           history: &mut Vec<f64>,
                           recorder: &mut dyn Recorder|
         -> crate::Result<Option<Equilibrium>> {
            let attempt_no = attempt_idx;
            attempt_idx += 1;
            // Algorithm 1 starts from certain tripping; a warm start
            // replaces that with a neighbor's converged iterate.
            let mut p = start;
            for _ in 0..max_iterations {
                if *total >= budget {
                    return Ok(None);
                }
                let (sol, dist, implied) = self.respond(density, p)?;
                *total += 1;
                let residual = (implied - p).abs();
                history.push(residual);
                if want_iter {
                    recorder.record(&Event::SolverIteration {
                        attempt: attempt_no,
                        iteration: *total,
                        damping,
                        p_trip: p,
                        implied,
                        residual,
                    });
                }
                if best.is_none_or(|(r, _, _)| residual < r) {
                    *best = Some((residual, p, sol.threshold));
                }
                if residual < self.options.tolerance {
                    return Ok(Some(Equilibrium {
                        threshold: sol.threshold,
                        p_trip: p,
                        distribution: dist,
                        values: sol.values,
                        iterations: *total,
                        residual,
                    }));
                }
                p = (p + damping * (implied - p)).clamp(0.0, 1.0);
            }
            Ok(None)
        };

        let outcome = |recorder: &mut dyn Recorder, eq: &Equilibrium| {
            if recorder.enabled() {
                recorder.record(&Event::SolverOutcome {
                    converged: true,
                    iterations: eq.iterations,
                    residual: eq.residual,
                    threshold: eq.threshold,
                });
            }
        };

        if let Some(eq) = attempt(
            self.options.damping,
            self.options.max_iterations,
            warm_start.map_or(1.0, |p| p.clamp(0.0, 1.0)),
            &mut total_iterations,
            &mut best,
            &mut history,
            recorder,
        )? {
            outcome(recorder, &eq);
            return Ok(eq);
        }
        for damping in ESCALATION {
            if damping == self.options.damping {
                continue;
            }
            if on {
                recorder.record(&Event::SolverEscalation { damping });
            }
            let retry_iterations = self.options.max_iterations.max(200);
            if let Some(eq) = attempt(
                damping,
                retry_iterations,
                1.0,
                &mut total_iterations,
                &mut best,
                &mut history,
                recorder,
            )? {
                outcome(recorder, &eq);
                return Ok(eq);
            }
        }
        // Bisection fallback on g(p) = implied(p) − p, which brackets a
        // root on [0, 1] whenever the response map is continuous. An
        // exhausted iteration budget skips it: the caller asked for a
        // bounded solve, and bisection costs hundreds more evaluations.
        if total_iterations < budget {
            if on {
                recorder.record(&Event::SolverBisection);
            }
            if let Some(eq) = self.bisect(density) {
                outcome(recorder, &eq);
                return Ok(eq);
            }
        }
        let (residual, best_p, best_threshold) = best.unwrap_or((f64::INFINITY, 1.0, 0.0));
        let fallback_threshold = self.conservative_threshold(density);
        if on {
            recorder.record(&Event::SolverOutcome {
                converged: false,
                iterations: total_iterations,
                residual,
                threshold: fallback_threshold,
            });
        }
        Err(GameError::NonConvergence {
            iterations: total_iterations,
            residual,
            best_threshold,
            best_trip_probability: best_p,
            fallback_threshold,
            residual_history: history,
        })
    }

    /// A threshold safe under *any* dynamics: even if every agent were
    /// active every epoch, expected sprinters `N · P(u ≥ u_T)` stay at or
    /// below `0.9 · N_min`, inside the breaker's never-trip region (§2.2).
    ///
    /// This is the degradation target carried by
    /// [`GameError::NonConvergence`]; it is also useful on its own as a
    /// provably breaker-safe operating point.
    #[must_use]
    pub fn conservative_threshold(&self, density: &DiscreteDensity) -> f64 {
        let n = f64::from(self.config.n_agents());
        let target = 0.9 * self.config.n_min();
        let safe = |u: f64| n * density.tail_mass(u) <= target;
        if safe(0.0) {
            return 0.0;
        }
        // tail_mass is non-increasing in u: bracket then bisect.
        let mut hi = 1.0f64;
        while !safe(hi) && hi < 1e12 {
            hi *= 2.0;
        }
        let mut lo = 0.0f64;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if safe(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    }

    fn bisect(&self, density: &DiscreteDensity) -> Option<Equilibrium> {
        let g = |p: f64| -> Option<f64> {
            let (_, _, implied) = self.respond(density, p).ok()?;
            Some(implied - p)
        };
        let mut lo = 0.0f64;
        let mut hi = 1.0f64;
        let g_lo = g(lo)?;
        let g_hi = g(hi)?;
        if g_lo.abs() < self.options.tolerance {
            hi = lo;
        } else if g_hi.abs() >= self.options.tolerance && g_lo.signum() == g_hi.signum() {
            return None;
        }
        for _ in 0..200 {
            if hi - lo < 1e-12 {
                break;
            }
            let mid = 0.5 * (lo + hi);
            let g_mid = g(mid)?;
            if g_mid.abs() < self.options.tolerance {
                lo = mid;
                hi = mid;
                break;
            }
            if g_mid.signum() == g_lo.signum() {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let p = 0.5 * (lo + hi);
        let (sol, dist, implied) = self.respond(density, p).ok()?;
        let residual = (implied - p).abs();
        // Accept only true fixed points: bisection can "converge" onto a
        // discontinuity that is not an equilibrium.
        if residual > 1e-4 {
            return None;
        }
        Some(Equilibrium {
            threshold: sol.threshold,
            p_trip: p,
            distribution: dist,
            values: sol.values,
            iterations: self.options.max_iterations,
            residual,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprint_workloads::Benchmark;

    fn solve_benchmark(b: Benchmark) -> Equilibrium {
        let cfg = GameConfig::paper_defaults();
        MeanFieldSolver::new(cfg)
            .run(&b.utility_density(512).unwrap(), &mut Telemetry::noop())
            .unwrap()
    }

    #[test]
    fn warm_start_near_the_fixed_point_converges_in_fewer_iterations() {
        let cfg = GameConfig::paper_defaults();
        let solver = MeanFieldSolver::new(cfg);
        let d = Benchmark::DecisionTree.utility_density(512).unwrap();
        let cold = solver.run(&d, &mut Telemetry::noop()).unwrap();
        // Restart exactly at the fixed point: one evaluation confirms it.
        let warm = solver
            .run_from(&d, Some(cold.p_trip), &mut Telemetry::noop())
            .unwrap();
        assert!(warm.iterations < cold.iterations);
        assert!((warm.threshold - cold.threshold).abs() < 1e-6);
        assert!((warm.p_trip - cold.p_trip).abs() < solver.options().tolerance);
        // A hint outside [0, 1] is clamped, not trusted.
        let clamped = solver
            .run_from(&d, Some(7.5), &mut Telemetry::noop())
            .unwrap();
        assert_eq!(clamped, cold, "clamped hint of 7.5 behaves as cold start");
        // No hint reproduces the cold solve bit for bit.
        let none = solver.run_from(&d, None, &mut Telemetry::noop()).unwrap();
        assert_eq!(none, cold);
    }

    #[test]
    fn all_benchmarks_reach_equilibrium() {
        let cfg = GameConfig::paper_defaults();
        for b in Benchmark::ALL {
            let eq = solve_benchmark(b);
            let check = eq
                .verify(&cfg, &b.utility_density(512).unwrap(), 60)
                .unwrap();
            assert!(
                check.holds(1e-4),
                "{b}: check = {check:?} at threshold {}",
                eq.threshold()
            );
        }
    }

    #[test]
    fn narrow_band_benchmarks_sprint_always() {
        // Figure 11: Linear Regression and Correlation sprint at every
        // opportunity; E-T degenerates to a greedy equilibrium (§6.2).
        for b in [Benchmark::LinearRegression, Benchmark::Correlation] {
            let eq = solve_benchmark(b);
            assert!(
                eq.sprint_probability() > 0.97,
                "{b}: p_s = {}",
                eq.sprint_probability()
            );
        }
    }

    #[test]
    fn most_benchmarks_sprint_judiciously() {
        // Figure 11: "The majority of applications resemble PageRank with
        // higher thresholds and judicious sprints."
        let mut judicious = 0;
        for b in Benchmark::ALL {
            let eq = solve_benchmark(b);
            if eq.sprint_probability() < 0.8 {
                judicious += 1;
            }
        }
        assert!(judicious >= 8, "only {judicious} of 11 sprint judiciously");
    }

    #[test]
    fn equilibrium_sprinters_near_band_edge() {
        // Figure 6: "in equilibrium, the number of sprinters is just
        // slightly above N_min = 250" for the representative app.
        let eq = solve_benchmark(Benchmark::DecisionTree);
        let ns = eq.expected_sprinters();
        assert!(
            (200.0..=350.0).contains(&ns),
            "decision tree equilibrium n_S = {ns}"
        );
        assert!(
            eq.trip_probability() < 0.25,
            "P = {}",
            eq.trip_probability()
        );
    }

    #[test]
    fn equilibrium_is_consistent_fixed_point() {
        let cfg = GameConfig::paper_defaults();
        let d = Benchmark::Svm.utility_density(512).unwrap();
        let eq = MeanFieldSolver::new(cfg)
            .run(&d, &mut Telemetry::noop())
            .unwrap();
        // Re-deriving P from n_S reproduces the equilibrium P.
        let p = TripCurve::from_config(&cfg).p_trip(eq.expected_sprinters());
        assert!((p - eq.trip_probability()).abs() < 1e-6);
        assert!(eq.residual() < 1e-4);
        assert!(eq.iterations() >= 1);
    }

    #[test]
    fn damped_and_literal_algorithms_agree() {
        let cfg = GameConfig::paper_defaults();
        let d = Benchmark::PageRank.utility_density(512).unwrap();
        let damped = MeanFieldSolver::new(cfg)
            .run(&d, &mut Telemetry::noop())
            .unwrap();
        let literal = MeanFieldSolver::with_options(cfg, SolverOptions::paper_literal())
            .run(&d, &mut Telemetry::noop())
            .unwrap();
        assert!(
            (damped.threshold() - literal.threshold()).abs() < 0.05,
            "damped {} vs literal {}",
            damped.threshold(),
            literal.threshold()
        );
        assert!((damped.trip_probability() - literal.trip_probability()).abs() < 0.02);
    }

    #[test]
    fn small_band_raises_aggression() {
        // Figure 13: small N_min/N_max => high P(trip) => lower thresholds
        // ("agents sprint more aggressively and extract performance now").
        let d = Benchmark::DecisionTree.utility_density(512).unwrap();
        let small = GameConfig::builder()
            .n_min(50.0)
            .n_max(150.0)
            .build()
            .unwrap();
        let big = GameConfig::builder()
            .n_min(450.0)
            .n_max(950.0)
            .build()
            .unwrap();
        let eq_small = MeanFieldSolver::new(small)
            .run(&d, &mut Telemetry::noop())
            .unwrap();
        let eq_big = MeanFieldSolver::new(big)
            .run(&d, &mut Telemetry::noop())
            .unwrap();
        assert!(
            eq_small.threshold() < eq_big.threshold(),
            "small-band threshold {} should be below big-band {}",
            eq_small.threshold(),
            eq_big.threshold()
        );
        assert!(eq_small.trip_probability() > eq_big.trip_probability());
    }

    #[test]
    fn indefinite_recovery_still_yields_mean_field_fixed_point() {
        // §6.4: with p_r = 1 the *mean-field* fixed point exists but has
        // P_trip > 0 — the system eventually trips into indefinite
        // recovery. (The inefficiency shows up in throughput, Figure 12.)
        // Linear Regression exhibits it sharply: its agents sprint every
        // epoch regardless, so n_S sits above N_min at any P_trip.
        let cfg = GameConfig::builder().p_recovery(1.0).build().unwrap();
        let d = Benchmark::LinearRegression.utility_density(512).unwrap();
        let eq = MeanFieldSolver::new(cfg)
            .run(&d, &mut Telemetry::noop())
            .unwrap();
        assert!(
            eq.trip_probability() > 0.0,
            "no equilibrium avoids tripping: P = {}",
            eq.trip_probability()
        );
    }

    #[test]
    fn strategy_round_trips() {
        let eq = solve_benchmark(Benchmark::Kmeans);
        let s = eq.strategy();
        assert_eq!(s.threshold(), eq.threshold());
    }

    #[test]
    fn equilibrium_serde_round_trip() {
        // The coordinator can archive and re-load solved equilibria.
        let eq = solve_benchmark(Benchmark::Svm);
        let json = serde_json::to_string(&eq).unwrap();
        let back: Equilibrium = serde_json::from_str(&json).unwrap();
        assert_eq!(eq, back);
        assert_eq!(back.threshold(), eq.threshold());
    }
}

#[cfg(test)]
mod robustness_tests {
    use super::*;
    use crate::threshold::ThresholdStrategy;
    use sprint_workloads::Benchmark;

    #[test]
    fn escalation_rescues_a_diverging_first_attempt() {
        // Near-zero damping with a one-iteration budget pins the first
        // attempt at P = 1, which is not a fixed point for SVM; the
        // escalation schedule must take over and still find the same
        // equilibrium as the default solver.
        let cfg = GameConfig::paper_defaults();
        let d = Benchmark::Svm.utility_density(512).unwrap();
        let crippled = SolverOptions {
            damping: 1e-6,
            max_iterations: 1,
            ..SolverOptions::default()
        };
        let eq = MeanFieldSolver::with_options(cfg, crippled)
            .run(&d, &mut Telemetry::noop())
            .unwrap();
        assert!(
            eq.iterations() > 1,
            "escalation retries must run past the 1-iteration first attempt"
        );
        let reference = MeanFieldSolver::new(cfg)
            .run(&d, &mut Telemetry::noop())
            .unwrap();
        assert!(
            (eq.threshold() - reference.threshold()).abs() < 1e-6,
            "escalated solve {} must match reference {}",
            eq.threshold(),
            reference.threshold()
        );
    }

    #[test]
    fn pathological_step_map_still_solves() {
        // A two-atom utility density with a needle-thin breaker band makes
        // the response map a 0/1 step — the sharpest discontinuity the
        // model can produce (the 6.4 prisoner's-dilemma regime). The
        // response map is monotone in P (thresholds fall as risk rises,
        // 6.5), so a fixed point exists and the solver must find it
        // rather than panic or err.
        let mut pdf = vec![0.0; 20];
        pdf[2] = 0.6;
        pdf[16] = 0.4;
        let d = DiscreteDensity::new(0.0, 10.0, pdf).unwrap();
        let cfg = GameConfig::builder()
            .n_agents(1000)
            .n_min(400.0)
            .n_max(410.0)
            .p_cooling(0.3)
            .p_recovery(0.99)
            .discount(0.9)
            .build()
            .unwrap();
        let eq = MeanFieldSolver::new(cfg)
            .run(&d, &mut Telemetry::noop())
            .unwrap();
        assert!(eq.residual() < 1e-4);
        // The step lands on an endpoint equilibrium: either nobody trips
        // or the rack lives in the always-trip dilemma.
        assert!(
            eq.trip_probability() < 1e-9 || eq.trip_probability() > 1.0 - 1e-9,
            "step-map equilibrium P = {}",
            eq.trip_probability()
        );
    }

    #[test]
    fn conservative_threshold_is_breaker_safe() {
        // The degradation target must keep expected sprinters inside the
        // never-trip region even if every agent were active every epoch.
        let cfg = GameConfig::paper_defaults();
        let solver = MeanFieldSolver::new(cfg);
        for b in Benchmark::ALL {
            let d = b.utility_density(512).unwrap();
            let u = solver.conservative_threshold(&d);
            let worst_case = f64::from(cfg.n_agents()) * d.tail_mass(u);
            assert!(
                worst_case <= 0.9 * cfg.n_min() + 1e-6,
                "{b}: {worst_case} sprinters at fallback threshold {u}"
            );
            assert!(
                ThresholdStrategy::new(u).is_ok(),
                "{b}: fallback threshold must be a valid strategy"
            );
            assert!(
                TripCurve::from_config(&cfg).p_trip(worst_case) == 0.0,
                "{b}: fallback must sit strictly below the trip band"
            );
        }
    }

    #[test]
    fn conservative_threshold_is_zero_when_everything_is_safe() {
        // A tiny population can all sprint without approaching N_min.
        let cfg = GameConfig::builder()
            .n_agents(10)
            .n_min(250.0)
            .n_max(750.0)
            .build()
            .unwrap();
        let d = Benchmark::DecisionTree.utility_density(128).unwrap();
        assert_eq!(MeanFieldSolver::new(cfg).conservative_threshold(&d), 0.0);
    }

    #[test]
    fn non_convergence_error_is_actionable() {
        // The typed error must carry everything a caller needs to degrade
        // gracefully: diagnostics plus a directly usable fallback.
        let err = GameError::NonConvergence {
            iterations: 1300,
            residual: 0.37,
            best_threshold: 2.1,
            best_trip_probability: 0.45,
            fallback_threshold: 6.25,
            residual_history: vec![0.9, 0.61, 0.37],
        };
        let msg = err.to_string();
        assert!(
            msg.contains("1300"),
            "message names the iteration budget: {msg}"
        );
        assert!(msg.contains("6.25"), "message names the fallback: {msg}");
        assert!(
            msg.contains("3 residuals"),
            "message names the recorded history: {msg}"
        );
        if let GameError::NonConvergence {
            fallback_threshold,
            residual_history,
            ..
        } = err
        {
            let strategy = ThresholdStrategy::new(fallback_threshold).unwrap();
            assert!(!strategy.should_sprint(6.25));
            assert_eq!(residual_history.last(), Some(&0.37));
        } else {
            unreachable!();
        }
    }

    #[test]
    fn observed_solve_matches_plain_solve_and_narrates() {
        use sprint_telemetry::EventKind;

        let cfg = GameConfig::paper_defaults();
        let d = Benchmark::Svm.utility_density(512).unwrap();
        let solver = MeanFieldSolver::new(cfg);
        let plain = solver.run(&d, &mut Telemetry::noop()).unwrap();
        let mut kit = Telemetry::in_memory();
        let observed = solver.run(&d, &mut kit).unwrap();
        assert_eq!(plain, observed, "observation must not perturb the solve");

        let events = kit.events().unwrap();
        let iters = events
            .iter()
            .filter(|e| e.kind() == EventKind::SolverIteration)
            .count();
        assert_eq!(iters, observed.iterations(), "one event per iteration");
        match events.last().unwrap() {
            Event::SolverOutcome {
                converged,
                iterations,
                residual,
                ..
            } => {
                assert!(*converged);
                assert_eq!(*iterations, observed.iterations());
                assert!((*residual - observed.residual()).abs() < 1e-15);
            }
            other => panic!("last event must be the outcome, got {other:?}"),
        }
        // The per-iteration residuals form a usable convergence curve.
        let last_residual = events
            .iter()
            .rev()
            .find_map(|e| match e {
                Event::SolverIteration { residual, .. } => Some(*residual),
                _ => None,
            })
            .unwrap();
        assert!(last_residual < 1e-9);
    }

    #[test]
    fn iteration_budget_bounds_the_solve_and_carries_the_fallback() {
        // An exhausted budget is the deterministic analog of a solve
        // deadline: the solver must stop promptly, skip bisection, and
        // hand back the conservative fallback for graceful degradation.
        let cfg = GameConfig::paper_defaults();
        let d = Benchmark::Svm.utility_density(512).unwrap();
        let strangled = SolverOptions {
            tolerance: -1.0, // unreachable: forces the budget to bind
            ..SolverOptions::default()
        }
        .with_iteration_budget(7);
        let err = MeanFieldSolver::with_options(cfg, strangled)
            .run(&d, &mut Telemetry::noop())
            .unwrap_err();
        match err {
            GameError::NonConvergence {
                iterations,
                fallback_threshold,
                ..
            } => {
                assert_eq!(iterations, 7, "budget must cap total evaluations");
                let reference = MeanFieldSolver::new(cfg).conservative_threshold(&d);
                assert_eq!(fallback_threshold, reference);
            }
            other => panic!("expected NonConvergence, got {other:?}"),
        }
        // A generous budget leaves a convergent solve untouched.
        let roomy = SolverOptions::default().with_iteration_budget(100_000);
        let budgeted = MeanFieldSolver::with_options(cfg, roomy)
            .run(&d, &mut Telemetry::noop())
            .unwrap();
        let plain = MeanFieldSolver::new(cfg)
            .run(&d, &mut Telemetry::noop())
            .unwrap();
        assert_eq!(budgeted, plain);
    }
}
