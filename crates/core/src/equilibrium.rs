//! Equilibrium objects and best-response verification (paper §4.4).
//!
//! A mean-field equilibrium is a pair (threshold, tripping probability)
//! that is mutually consistent: the threshold is the best response to the
//! tripping probability (Equations 1–8), and the tripping probability is
//! what the population produces when everyone plays that threshold
//! (Equations 9–11). [`Equilibrium::verify`] checks both conditions *and*
//! the game-theoretic substance behind them: no unilateral threshold
//! deviation improves an agent's value.

use sprint_stats::density::DiscreteDensity;

use crate::bellman::{self, BellmanMethod, ValueFunctions};
use crate::config::GameConfig;
use crate::sprint_dist::SprintDistribution;
use crate::threshold::ThresholdStrategy;
use crate::trip::TripCurve;

/// A solved mean-field equilibrium of the sprinting game.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Equilibrium {
    pub(crate) threshold: f64,
    pub(crate) p_trip: f64,
    pub(crate) distribution: SprintDistribution,
    pub(crate) values: ValueFunctions,
    pub(crate) iterations: usize,
    pub(crate) residual: f64,
}

impl Equilibrium {
    /// The equilibrium sprint threshold `u_T`.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The equilibrium threshold as an executable strategy.
    ///
    /// Equilibrium thresholds are non-negative by construction; should a
    /// corrupted archive carry an invalid one, this degrades to the
    /// breaker-safe never-sprint strategy instead of panicking.
    #[must_use]
    pub fn strategy(&self) -> ThresholdStrategy {
        ThresholdStrategy::new(self.threshold).unwrap_or_else(|_| ThresholdStrategy::never_sprint())
    }

    /// Stationary probability of tripping the breaker.
    #[must_use]
    pub fn trip_probability(&self) -> f64 {
        self.p_trip
    }

    /// Probability an active agent sprints in an epoch (`p_s`,
    /// Equation 9) — the quantity plotted in Figure 11.
    #[must_use]
    pub fn sprint_probability(&self) -> f64 {
        self.distribution.p_sprint
    }

    /// Stationary probability of being active rather than cooling.
    #[must_use]
    pub fn p_active(&self) -> f64 {
        self.distribution.p_active
    }

    /// Expected number of simultaneous sprinters (`n_S`, Equation 10).
    #[must_use]
    pub fn expected_sprinters(&self) -> f64 {
        self.distribution.expected_sprinters
    }

    /// Equilibrium state values.
    #[must_use]
    pub fn values(&self) -> ValueFunctions {
        self.values
    }

    /// Outer (Algorithm 1) iterations used.
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Final fixed-point residual `|P'_trip − P_trip|`.
    #[must_use]
    pub fn residual(&self) -> f64 {
        self.residual
    }

    /// Verify the equilibrium conditions against a density.
    ///
    /// Checks the two fixed-point conditions of §4.4 plus incentive
    /// compatibility over `grid` candidate deviations.
    ///
    /// # Errors
    ///
    /// Propagates Bellman-solver errors.
    pub fn verify(
        &self,
        config: &GameConfig,
        density: &DiscreteDensity,
        grid: usize,
    ) -> crate::Result<EquilibriumCheck> {
        // Condition 1: the threshold solves the Bellman equation at P_trip.
        let best = bellman::solve(config, density, self.p_trip, BellmanMethod::PolicyIteration)?;
        let threshold_residual = (best.threshold - self.threshold).abs();

        // Condition 2: the threshold reproduces P_trip through
        // Equations 9-11.
        let dist = SprintDistribution::characterize(config, density, &self.strategy())?;
        let p_implied = TripCurve::from_config(config).p_trip(dist.expected_sprinters);
        let trip_residual = (p_implied - self.p_trip).abs();

        // Incentive compatibility: no candidate threshold beats the
        // equilibrium value while the population (P_trip) stays fixed.
        let v_eq =
            bellman::evaluate_threshold_policy(config, density, self.p_trip, self.threshold)?
                .v_active;
        let mut max_deviation_gain = f64::NEG_INFINITY;
        for i in 0..=grid.max(1) {
            let candidate = density.lo().max(0.0)
                + (density.hi() - density.lo().max(0.0)) * i as f64 / grid.max(1) as f64;
            let v_alt =
                bellman::evaluate_threshold_policy(config, density, self.p_trip, candidate)?
                    .v_active;
            max_deviation_gain = max_deviation_gain.max(v_alt - v_eq);
        }
        Ok(EquilibriumCheck {
            threshold_residual,
            trip_residual,
            max_deviation_gain,
        })
    }
}

/// Result of verifying an equilibrium.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EquilibriumCheck {
    /// `|best-response threshold − equilibrium threshold|`.
    pub threshold_residual: f64,
    /// `|implied P_trip − equilibrium P_trip|`.
    pub trip_residual: f64,
    /// Largest value gain any unilateral threshold deviation achieves
    /// (non-positive, up to numerical tolerance, at an equilibrium).
    pub max_deviation_gain: f64,
}

impl EquilibriumCheck {
    /// Whether all conditions hold within `tol`.
    #[must_use]
    pub fn holds(&self, tol: f64) -> bool {
        self.threshold_residual <= tol
            && self.trip_residual <= tol
            && self.max_deviation_gain <= tol
    }
}
