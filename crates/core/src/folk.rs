//! Prisoner's dilemma and folk-theorem enforcement (paper §6.4).
//!
//! When recovery is expensive the equilibrium degrades relative to
//! cooperation ([`efficiency`], Figure 12). In the limit `p_r = 1`
//! (indefinite recovery) the game becomes a prisoner's dilemma: the
//! cooperative threshold that avoids tripping the breaker is *not* an
//! equilibrium — each agent's best response to a non-tripping system is to
//! lower her threshold ([`DeviationAnalysis`]).
//!
//! The folk theorem escapes the dilemma: the coordinator assigns the
//! cooperative threshold and *threatens punishment* for deviation (e.g.
//! banning deviators from ever sprinting again). Cooperation is
//! self-enforcing when the one-shot deviation gain is smaller than the
//! discounted value lost to the punishment
//! ([`punishment_sustains_cooperation`]).

use sprint_stats::density::DiscreteDensity;
use sprint_telemetry::Telemetry;

use crate::bellman;
use crate::config::GameConfig;
use crate::cooperative::{analytic_throughput, CooperativeSearch};
use crate::meanfield::MeanFieldSolver;
use crate::GameError;

/// Efficiency of the equilibrium: E-T throughput divided by C-T
/// throughput (the paper's informal definition in §6.4, Figure 12).
///
/// # Errors
///
/// Propagates solver errors; returns [`GameError::NoEquilibrium`] when the
/// mean-field solve fails.
pub fn efficiency(config: &GameConfig, density: &DiscreteDensity) -> crate::Result<f64> {
    let eq = MeanFieldSolver::new(*config).run(density, &mut Telemetry::noop())?;
    let et = analytic_throughput(config, density, eq.threshold())?;
    let ct = CooperativeSearch::default_resolution().solve(config, density)?;
    if ct.throughput.tasks_per_epoch <= 0.0 {
        return Err(GameError::InvalidParameter {
            name: "density",
            value: ct.throughput.tasks_per_epoch,
            expected: "a workload with positive cooperative throughput",
        });
    }
    Ok((et.tasks_per_epoch / ct.throughput.tasks_per_epoch).clamp(0.0, 1.0))
}

/// Best-response analysis of the cooperative threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviationAnalysis {
    /// The cooperative threshold under scrutiny.
    pub cooperative_threshold: f64,
    /// The deviator's best-response threshold, holding the system's
    /// (non-tripping) behavior fixed.
    pub best_response_threshold: f64,
    /// The deviator's value when conforming.
    pub cooperative_value: f64,
    /// The deviator's value when playing the best response.
    pub deviation_value: f64,
}

impl DeviationAnalysis {
    /// Gain from deviating (positive means cooperation is not
    /// self-enforcing — the prisoner's dilemma).
    #[must_use]
    pub fn deviation_gain(&self) -> f64 {
        self.deviation_value - self.cooperative_value
    }

    /// Whether the cooperative threshold is a best response (no profitable
    /// deviation within `tol`).
    #[must_use]
    pub fn is_self_enforcing(&self, tol: f64) -> bool {
        self.deviation_gain() <= tol
    }
}

/// Analyze whether a cooperative threshold is self-enforcing when the
/// system currently avoids tripping (`P_trip = 0`), the §6.4 scenario.
///
/// # Errors
///
/// Propagates Bellman-solver errors.
pub fn analyze_deviation(
    config: &GameConfig,
    density: &DiscreteDensity,
    cooperative_threshold: f64,
) -> crate::Result<DeviationAnalysis> {
    // A single deviator in a large system does not move P_trip (the
    // mean-field premise), so she optimizes against P = 0.
    let conforming =
        bellman::evaluate_threshold_policy(config, density, 0.0, cooperative_threshold)?;
    let best = bellman::solve(
        config,
        density,
        0.0,
        bellman::BellmanMethod::PolicyIteration,
    )?;
    Ok(DeviationAnalysis {
        cooperative_threshold,
        best_response_threshold: best.threshold,
        cooperative_value: conforming.v_active,
        deviation_value: best.values.v_active,
    })
}

/// Folk-theorem check: is cooperation sustained by the threat of being
/// forbidden from ever sprinting again ("the coordinator could monitor
/// sprints, detect deviations, and forbid agents who deviate from ever
/// sprinting again", §6.4)?
///
/// A banned agent earns zero sprinting utility forever, so the punishment
/// costs the deviator her entire conforming value stream after the first
/// deviating epoch. Deviation pays at most the best one-shot utility
/// `u_max`; cooperation is sustained when
/// `u_max − u_T < δ · V_conform` — the standard grim-trigger inequality.
///
/// # Errors
///
/// Propagates Bellman-solver errors.
pub fn punishment_sustains_cooperation(
    config: &GameConfig,
    density: &DiscreteDensity,
    cooperative_threshold: f64,
) -> crate::Result<bool> {
    let conforming =
        bellman::evaluate_threshold_policy(config, density, 0.0, cooperative_threshold)?;
    let one_shot_gain = (density.hi() - cooperative_threshold).max(0.0);
    Ok(one_shot_gain < config.discount() * conforming.v_active)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprint_workloads::Benchmark;

    fn with_pr(pr: f64) -> GameConfig {
        GameConfig::builder().p_recovery(pr).build().unwrap()
    }

    #[test]
    fn efficiency_high_at_cheap_recovery() {
        // Figure 12's left side: with the paper's pr = 0.88, the
        // equilibrium is efficient for diverse profiles.
        let d = Benchmark::DecisionTree.utility_density(512).unwrap();
        let e = efficiency(&with_pr(0.88), &d).unwrap();
        assert!(e > 0.8, "efficiency {e}");
    }

    #[test]
    fn efficiency_falls_as_recovery_lengthens() {
        // Figure 12: efficiency falls as pr -> 1. Linear Regression shows
        // the collapse sharply because its equilibrium always trips.
        let d = Benchmark::LinearRegression.utility_density(512).unwrap();
        let e_cheap = efficiency(&with_pr(0.5), &d).unwrap();
        let e_mid = efficiency(&with_pr(0.95), &d).unwrap();
        let e_costly = efficiency(&with_pr(0.995), &d).unwrap();
        assert!(
            e_cheap > e_mid && e_mid > e_costly,
            "{e_cheap} > {e_mid} > {e_costly} expected"
        );
        assert!(
            e_costly < 0.3,
            "near-indefinite recovery collapses efficiency"
        );
    }

    #[test]
    fn prisoners_dilemma_cooperation_not_self_enforcing() {
        // §6.4: with pr = 1 the cooperative threshold avoids tripping but
        // a strategic agent profits by lowering her threshold.
        let cfg = with_pr(1.0);
        let d = Benchmark::LinearRegression.utility_density(512).unwrap();
        let ct = CooperativeSearch::default_resolution()
            .solve(&cfg, &d)
            .unwrap();
        assert_eq!(ct.throughput.p_trip, 0.0, "cooperation avoids the band");
        let dev = analyze_deviation(&cfg, &d, ct.threshold).unwrap();
        assert!(
            !dev.is_self_enforcing(1e-6),
            "deviation gain {} should be positive",
            dev.deviation_gain()
        );
        assert!(dev.best_response_threshold < dev.cooperative_threshold);
    }

    #[test]
    fn equilibrium_threshold_is_self_enforcing() {
        // By contrast, the mean-field equilibrium threshold admits no
        // profitable deviation (at its own P_trip = 0 fixed point).
        let cfg = GameConfig::paper_defaults();
        let d = Benchmark::PageRank.utility_density(512).unwrap();
        let eq = MeanFieldSolver::new(cfg)
            .run(&d, &mut Telemetry::noop())
            .unwrap();
        if eq.trip_probability() == 0.0 {
            let dev = analyze_deviation(&cfg, &d, eq.threshold()).unwrap();
            assert!(dev.is_self_enforcing(1e-6), "gain {}", dev.deviation_gain());
        }
    }

    #[test]
    fn grim_trigger_sustains_cooperation_with_patient_agents() {
        // δ = 0.99: losing the entire future dwarfs any one-shot gain.
        let cfg = with_pr(1.0);
        let d = Benchmark::LinearRegression.utility_density(512).unwrap();
        let ct = CooperativeSearch::default_resolution()
            .solve(&cfg, &d)
            .unwrap();
        assert!(punishment_sustains_cooperation(&cfg, &d, ct.threshold).unwrap());
    }

    #[test]
    fn impatient_agents_cannot_be_deterred() {
        // With a tiny discount factor the future is worthless and the
        // punishment threat fails.
        let cfg = GameConfig::builder()
            .p_recovery(1.0)
            .discount(0.05)
            .build()
            .unwrap();
        let d = Benchmark::LinearRegression.utility_density(512).unwrap();
        let ct = CooperativeSearch::default_resolution()
            .solve(&cfg, &d)
            .unwrap();
        assert!(!punishment_sustains_cooperation(&cfg, &d, ct.threshold).unwrap());
    }

    #[test]
    fn deviation_gain_zero_when_cooperative_is_optimal() {
        // If the "cooperative" threshold happens to equal the best
        // response, deviation gains nothing.
        let cfg = GameConfig::paper_defaults();
        let d = Benchmark::DecisionTree.utility_density(512).unwrap();
        let best = bellman::solve(&cfg, &d, 0.0, bellman::BellmanMethod::PolicyIteration).unwrap();
        let dev = analyze_deviation(&cfg, &d, best.threshold).unwrap();
        assert!(dev.deviation_gain().abs() < 1e-6);
    }
}
