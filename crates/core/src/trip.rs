//! The rack's tripping-probability curve (paper Equation 11, Figure 3).
//!
//! The expected number of sprinters maps to a probability of tripping the
//! breaker: zero below `N_min`, one above `N_max`, linear in between (the
//! breaker's non-deterministic tolerance band).

use crate::config::GameConfig;

/// Tripping-probability curve parameterized by `N_min` and `N_max`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TripCurve {
    n_min: f64,
    n_max: f64,
}

impl TripCurve {
    /// Create a curve from band edges.
    ///
    /// Invalid edges are the configuration's problem: use
    /// [`GameConfig`]'s builder for validation; this constructor is
    /// infallible for internal composition.
    #[must_use]
    pub fn new(n_min: f64, n_max: f64) -> Self {
        TripCurve { n_min, n_max }
    }

    /// The curve implied by a game configuration.
    #[must_use]
    pub fn from_config(config: &GameConfig) -> Self {
        TripCurve::new(config.n_min(), config.n_max())
    }

    /// Band lower edge.
    #[must_use]
    pub fn n_min(&self) -> f64 {
        self.n_min
    }

    /// Band upper edge.
    #[must_use]
    pub fn n_max(&self) -> f64 {
        self.n_max
    }

    /// The curve of a breaker whose tolerance band has drifted from its
    /// calibration: both edges scale by `1 + shift` (negative shifts model
    /// a breaker that trips early, positive one that trips late). The
    /// shift is clamped so edges never collapse below a degenerate band.
    #[must_use]
    pub fn with_band_shift(&self, shift: f64) -> Self {
        let factor = (1.0 + shift).max(f64::EPSILON);
        TripCurve::new(self.n_min * factor, self.n_max * factor)
    }

    /// Probability of tripping the breaker with `n_sprinters` expected
    /// sprinters (Equation 11).
    #[must_use]
    pub fn p_trip(&self, n_sprinters: f64) -> f64 {
        if n_sprinters < self.n_min {
            0.0
        } else if n_sprinters > self.n_max {
            1.0
        } else {
            (n_sprinters - self.n_min) / (self.n_max - self.n_min)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_curve() -> TripCurve {
        TripCurve::from_config(&GameConfig::paper_defaults())
    }

    #[test]
    fn regions_match_equation_11() {
        let c = paper_curve();
        assert_eq!(c.p_trip(0.0), 0.0);
        assert_eq!(c.p_trip(249.9), 0.0);
        assert_eq!(c.p_trip(250.0), 0.0);
        assert!((c.p_trip(500.0) - 0.5).abs() < 1e-12);
        assert_eq!(c.p_trip(750.0), 1.0);
        assert_eq!(c.p_trip(1000.0), 1.0);
    }

    #[test]
    fn curve_is_monotone_nondecreasing() {
        let c = paper_curve();
        let mut last = -1.0;
        for i in 0..=100 {
            let p = c.p_trip(i as f64 * 10.0);
            assert!(p >= last);
            assert!((0.0..=1.0).contains(&p));
            last = p;
        }
    }

    #[test]
    fn accessors() {
        let c = TripCurve::new(10.0, 20.0);
        assert_eq!(c.n_min(), 10.0);
        assert_eq!(c.n_max(), 20.0);
        assert!((c.p_trip(15.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn band_shift_moves_both_edges() {
        let c = TripCurve::new(100.0, 200.0);
        let early = c.with_band_shift(-0.1);
        assert!((early.n_min() - 90.0).abs() < 1e-12);
        assert!((early.n_max() - 180.0).abs() < 1e-12);
        // A shifted-early breaker trips at counts the nominal curve calls
        // safe.
        assert_eq!(c.p_trip(95.0), 0.0);
        assert!(early.p_trip(95.0) > 0.0);
        let late = c.with_band_shift(0.1);
        assert!((late.n_min() - 110.0).abs() < 1e-12);
        // Zero shift is the identity.
        assert_eq!(c.with_band_shift(0.0), c);
    }
}
