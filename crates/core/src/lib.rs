//! # The Computational Sprinting Game
//!
//! The paper's primary contribution (Fan, Zahedi, Lee — ASPLOS 2016):
//! a repeated game among `N` chip multiprocessors that share a power
//! supply. Each epoch, every *active* agent decides whether to sprint.
//! Sprinting yields utility `u` drawn from the agent's application profile
//! `f(u)` but sends the chip into a *cooling* state; too many simultaneous
//! sprinters trip the rack breaker and send everyone into *recovery*.
//!
//! The game is solved as a **mean-field equilibrium**:
//!
//! 1. Given the population's tripping probability `P_trip`, each agent
//!    solves a Bellman equation (Equations 1–6) whose optimal policy is a
//!    *threshold strategy*: sprint iff `u > u_T` where
//!    `u_T = δ (V(A) − V(C)) (1 − P_trip)` (Equation 8) — [`bellman`],
//!    [`threshold`].
//! 2. Given everyone's threshold, the population's sprint probability,
//!    stationary active share, and expected sprinter count follow
//!    (Equations 9–10) — [`sprint_dist`] — which update `P_trip` through
//!    the breaker's trip curve (Equation 11) — [`trip`].
//! 3. Iterate to a fixed point (Algorithm 1) — [`meanfield`].
//!
//! [`equilibrium`] verifies the fixed point *is* an equilibrium (no
//! profitable unilateral deviation); [`multi`] extends the solve to
//! heterogeneous populations; [`cooperative`] computes the paper's C-T
//! upper bound; [`folk`] analyzes the prisoner's-dilemma limit and
//! folk-theorem enforcement of §6.4; [`coordinator`] and [`agent`]
//! implement the offline/online management split of Figure 4.
//!
//! # Example
//!
//! ```
//! use sprint_game::{GameConfig, MeanFieldSolver};
//! use sprint_telemetry::Telemetry;
//! use sprint_workloads::Benchmark;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = GameConfig::paper_defaults();
//! let f_u = Benchmark::DecisionTree.utility_density(256)?;
//! let eq = MeanFieldSolver::new(config).run(&f_u, &mut Telemetry::noop())?;
//!
//! // The representative app sprints judiciously...
//! assert!(eq.sprint_probability() < 0.9);
//! // ...and the equilibrium sprinter count sits near N_min = 250
//! // with a small tripping probability (paper Figure 6).
//! assert!(eq.expected_sprinters() > 150.0);
//! assert!(eq.trip_probability() < 0.2);
//! # Ok(())
//! # }
//! ```

pub mod agent;
pub mod bellman;
pub mod cache;
pub mod config;
pub mod cooperative;
pub mod coordinator;
pub mod equilibrium;
pub mod folk;
pub mod meanfield;
pub mod multi;
pub mod retry;
pub mod sprint_dist;
pub mod state;
pub mod threshold;
pub mod trip;

mod error;

pub use cache::{CacheStats, EquilibriumCache};
pub use config::GameConfig;
pub use equilibrium::Equilibrium;
pub use error::GameError;
pub use meanfield::MeanFieldSolver;
pub use retry::{BackoffSchedule, RetryPolicy};
pub use state::AgentState;
pub use threshold::ThresholdStrategy;

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, GameError>;
