//! Agent states and pure transition logic (paper §3.2).
//!
//! An agent occupies one of three states: **active** (may sprint), **chip
//! cooling** (after a sprint, until excess heat dissipates), or **rack
//! recovery** (after a power emergency, until batteries recharge). The
//! transition structure enforces the architecture's constraints: a chip
//! that sprints must cool before sprinting again, and a tripped rack must
//! recover before anyone sprints.

/// State of one agent in the sprinting game.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum AgentState {
    /// Agent can safely sprint (default: normal mode, sprint optional).
    Active,
    /// Chip cooling after a sprint; sprinting is forbidden.
    Cooling,
    /// Rack recovering after a power emergency; sprinting is forbidden.
    Recovery,
}

impl AgentState {
    /// All states.
    pub const ALL: [AgentState; 3] = [
        AgentState::Active,
        AgentState::Cooling,
        AgentState::Recovery,
    ];

    /// Whether an agent in this state is allowed to sprint.
    #[must_use]
    pub fn can_sprint(&self) -> bool {
        matches!(self, AgentState::Active)
    }

    /// Deterministic state transition for one epoch.
    ///
    /// Inputs are the resolved random events of the epoch:
    ///
    /// - `sprinted`: this agent sprinted (requires [`can_sprint`]).
    /// - `rack_tripped`: the breaker tripped this epoch (global event).
    /// - `leaves_cooling` / `leaves_recovery`: the per-epoch geometric
    ///   exits sampled with probabilities `1 − p_c` / `1 − p_r`.
    ///
    /// A rack trip overrides everything: all agents enter recovery
    /// ("after an emergency, all agents remain in the recovery state",
    /// §3.2).
    ///
    /// # Panics
    ///
    /// Panics if `sprinted` is true in a state that cannot sprint — that
    /// is a policy bug, not a recoverable condition.
    ///
    /// [`can_sprint`]: AgentState::can_sprint
    #[must_use]
    pub fn next(
        &self,
        sprinted: bool,
        rack_tripped: bool,
        leaves_cooling: bool,
        leaves_recovery: bool,
    ) -> AgentState {
        assert!(
            !sprinted || self.can_sprint(),
            "agent sprinted from state {self:?} which forbids sprinting"
        );
        if rack_tripped {
            return AgentState::Recovery;
        }
        match self {
            AgentState::Active => {
                if sprinted {
                    AgentState::Cooling
                } else {
                    AgentState::Active
                }
            }
            AgentState::Cooling => {
                if leaves_cooling {
                    AgentState::Active
                } else {
                    AgentState::Cooling
                }
            }
            AgentState::Recovery => {
                if leaves_recovery {
                    AgentState::Active
                } else {
                    AgentState::Recovery
                }
            }
        }
    }
}

impl std::fmt::Display for AgentState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AgentState::Active => write!(f, "active"),
            AgentState::Cooling => write!(f, "cooling"),
            AgentState::Recovery => write!(f, "recovery"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_active_can_sprint() {
        assert!(AgentState::Active.can_sprint());
        assert!(!AgentState::Cooling.can_sprint());
        assert!(!AgentState::Recovery.can_sprint());
    }

    #[test]
    fn sprint_leads_to_cooling() {
        let s = AgentState::Active.next(true, false, false, false);
        assert_eq!(s, AgentState::Cooling);
    }

    #[test]
    fn idle_active_stays_active() {
        let s = AgentState::Active.next(false, false, true, true);
        assert_eq!(s, AgentState::Active);
    }

    #[test]
    fn trip_sends_everyone_to_recovery() {
        for s in AgentState::ALL {
            let sprinted = s.can_sprint();
            assert_eq!(
                s.next(sprinted, true, true, true),
                AgentState::Recovery,
                "from {s}"
            );
        }
    }

    #[test]
    fn cooling_exit_is_gated() {
        assert_eq!(
            AgentState::Cooling.next(false, false, false, false),
            AgentState::Cooling
        );
        assert_eq!(
            AgentState::Cooling.next(false, false, true, false),
            AgentState::Active
        );
    }

    #[test]
    fn recovery_exit_is_gated() {
        assert_eq!(
            AgentState::Recovery.next(false, false, false, false),
            AgentState::Recovery
        );
        assert_eq!(
            AgentState::Recovery.next(false, false, false, true),
            AgentState::Active
        );
    }

    #[test]
    #[should_panic(expected = "forbids sprinting")]
    fn sprinting_while_cooling_is_a_bug() {
        let _ = AgentState::Cooling.next(true, false, false, false);
    }

    #[test]
    fn display_names() {
        assert_eq!(AgentState::Active.to_string(), "active");
        assert_eq!(AgentState::Cooling.to_string(), "cooling");
        assert_eq!(AgentState::Recovery.to_string(), "recovery");
    }
}
