//! Threshold sprinting strategies (paper §4.2, "Threshold Strategy").
//!
//! The optimal policy of the sprinting game is a threshold: an agent
//! sprints exactly when the epoch's utility exceeds `u_T`. The threshold
//! is computed offline by the coordinator; applying it online is a single
//! comparison ("comparisons with a threshold are trivial", §4.4).

use sprint_stats::density::DiscreteDensity;

use crate::GameError;

/// A threshold strategy: sprint iff utility exceeds the threshold.
///
/// Serializes transparently as its threshold value; deserialization
/// validates through [`ThresholdStrategy::new`].
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, serde::Serialize, serde::Deserialize)]
#[serde(try_from = "f64", into = "f64")]
pub struct ThresholdStrategy {
    threshold: f64,
}

impl TryFrom<f64> for ThresholdStrategy {
    type Error = GameError;

    fn try_from(threshold: f64) -> Result<Self, GameError> {
        ThresholdStrategy::new(threshold)
    }
}

impl From<ThresholdStrategy> for f64 {
    fn from(s: ThresholdStrategy) -> f64 {
        s.threshold
    }
}

impl ThresholdStrategy {
    /// Create a strategy with the given threshold.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidParameter`] for a negative or non-finite
    /// threshold (utilities are speedups, so thresholds live in `[0, ∞)`).
    pub fn new(threshold: f64) -> crate::Result<Self> {
        if threshold < 0.0 || !threshold.is_finite() {
            return Err(GameError::InvalidParameter {
                name: "threshold",
                value: threshold,
                expected: "a non-negative finite threshold",
            });
        }
        Ok(ThresholdStrategy { threshold })
    }

    /// The always-sprint strategy (threshold 0) — what the Greedy policy
    /// effectively plays while unconstrained.
    #[must_use]
    pub fn always_sprint() -> Self {
        ThresholdStrategy { threshold: 0.0 }
    }

    /// The never-sprint strategy: a threshold no finite utility clears.
    /// The conservative degradation target when a solver cannot produce a
    /// usable threshold — idling is always breaker-safe.
    #[must_use]
    pub fn never_sprint() -> Self {
        ThresholdStrategy {
            threshold: f64::MAX,
        }
    }

    /// The threshold value `u_T`.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The online decision: sprint iff `utility > u_T` (Equation 8).
    #[must_use]
    pub fn should_sprint(&self, utility: f64) -> bool {
        utility > self.threshold
    }

    /// Probability an epoch clears the threshold under density `f(u)` —
    /// Equation 9's `p_s`.
    #[must_use]
    pub fn sprint_probability(&self, density: &DiscreteDensity) -> f64 {
        density.tail_mass(self.threshold)
    }

    /// Expected utility per *sprinted* epoch, `E[u | u > u_T]`, or `None`
    /// if the strategy never sprints under this density.
    #[must_use]
    pub fn mean_sprint_utility(&self, density: &DiscreteDensity) -> Option<f64> {
        density.mean_above(self.threshold)
    }
}

impl std::fmt::Display for ThresholdStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sprint iff u > {:.4}", self.threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprint_workloads::Benchmark;

    #[test]
    fn validates_threshold() {
        assert!(ThresholdStrategy::new(-1.0).is_err());
        assert!(ThresholdStrategy::new(f64::NAN).is_err());
        assert!(ThresholdStrategy::new(0.0).is_ok());
    }

    #[test]
    fn decision_is_strict_comparison() {
        let s = ThresholdStrategy::new(2.0).unwrap();
        assert!(!s.should_sprint(2.0));
        assert!(s.should_sprint(2.0 + 1e-12));
        assert!(!s.should_sprint(1.0));
    }

    #[test]
    fn always_sprint_clears_everything() {
        let s = ThresholdStrategy::always_sprint();
        let d = Benchmark::DecisionTree.utility_density(128).unwrap();
        assert!((s.sprint_probability(&d) - 1.0).abs() < 1e-9);
        assert!(s.should_sprint(0.1));
    }

    #[test]
    fn sprint_probability_matches_tail() {
        let d = Benchmark::PageRank.utility_density(256).unwrap();
        let s = ThresholdStrategy::new(8.0).unwrap();
        assert!((s.sprint_probability(&d) - d.tail_mass(8.0)).abs() < 1e-12);
    }

    #[test]
    fn mean_sprint_utility_is_conditional() {
        let d = Benchmark::PageRank.utility_density(256).unwrap();
        let s = ThresholdStrategy::new(8.0).unwrap();
        let m = s.mean_sprint_utility(&d).unwrap();
        assert!(m > 10.0, "conditional mean above the high mode: {m}");
        let never = ThresholdStrategy::new(1e6).unwrap();
        assert!(never.mean_sprint_utility(&d).is_none());
    }

    #[test]
    fn serde_is_transparent_and_validating() {
        let s = ThresholdStrategy::new(2.5).unwrap();
        assert_eq!(serde_json::to_string(&s).unwrap(), "2.5");
        let back: ThresholdStrategy = serde_json::from_str("2.5").unwrap();
        assert_eq!(back, s);
        assert!(serde_json::from_str::<ThresholdStrategy>("-1.0").is_err());
    }

    #[test]
    fn try_from_f64_validates() {
        assert!(ThresholdStrategy::try_from(3.0).is_ok());
        assert!(ThresholdStrategy::try_from(-0.5).is_err());
        assert_eq!(f64::from(ThresholdStrategy::new(4.0).unwrap()), 4.0);
    }

    #[test]
    fn display_formats() {
        let s = ThresholdStrategy::new(2.5).unwrap();
        assert_eq!(s.to_string(), "sprint iff u > 2.5000");
    }
}
