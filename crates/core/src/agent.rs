//! The online agent (paper §4.4, "Online Strategy").
//!
//! "An agent decides whether to sprint at the start of each epoch by
//! estimating a sprint's utility and comparing it against her threshold."
//! Estimation can profile the first seconds of an epoch or use heuristics
//! (task-queue occupancy, cache misses). [`UtilityPredictor`] provides the
//! estimation layer — a persistence/EWMA hybrid that exploits phase
//! locality — and [`OnlineAgent`] combines predictor, assigned strategy,
//! and state tracking into the per-epoch decision loop.

use crate::state::AgentState;
use crate::threshold::ThresholdStrategy;
use crate::GameError;

/// Exponentially weighted utility predictor.
///
/// Phases persist across epochs, so the best cheap estimate of this
/// epoch's sprint utility blends the most recent observation with a longer
/// memory: `estimate = α · last + (1 − α) · ewma`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilityPredictor {
    alpha: f64,
    ewma: Option<f64>,
    last: Option<f64>,
}

impl UtilityPredictor {
    /// Create a predictor with recency weight `alpha` in `[0, 1]`
    /// (1 = pure last-value persistence, 0 = pure long-run average).
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidParameter`] for `alpha` outside `[0, 1]`.
    pub fn new(alpha: f64) -> crate::Result<Self> {
        if !(0.0..=1.0).contains(&alpha) {
            return Err(GameError::InvalidParameter {
                name: "alpha",
                value: alpha,
                expected: "a weight in [0, 1]",
            });
        }
        Ok(UtilityPredictor {
            alpha,
            ewma: None,
            last: None,
        })
    }

    /// A persistence-heavy default (`alpha = 0.7`), matching the phase
    /// locality of data-analytics workloads.
    #[must_use]
    pub fn phase_local() -> Self {
        UtilityPredictor {
            alpha: 0.7,
            ewma: None,
            last: None,
        }
    }

    /// Predict the coming epoch's utility, or `None` before any
    /// observation (the agent then profiles the epoch's first seconds —
    /// modeled as an oracle observation by the caller).
    #[must_use]
    pub fn predict(&self) -> Option<f64> {
        match (self.last, self.ewma) {
            (Some(last), Some(ewma)) => Some(self.alpha * last + (1.0 - self.alpha) * ewma),
            _ => None,
        }
    }

    /// Record the utility actually observed this epoch.
    pub fn observe(&mut self, utility: f64) {
        self.last = Some(utility);
        self.ewma = Some(match self.ewma {
            Some(e) => 0.2 * utility + 0.8 * e,
            None => utility,
        });
    }
}

/// An epoch decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Decision {
    /// Sprint this epoch.
    Sprint,
    /// Stay in normal mode.
    Normal,
    /// Sprinting forbidden by the current state (cooling/recovery).
    Forbidden,
}

/// A strategic agent executing its assigned threshold strategy online.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineAgent {
    strategy: ThresholdStrategy,
    state: AgentState,
    predictor: UtilityPredictor,
    epochs_sprinted: u64,
    epochs_total: u64,
}

impl OnlineAgent {
    /// Create an agent with its coordinator-assigned strategy.
    #[must_use]
    pub fn new(strategy: ThresholdStrategy) -> Self {
        OnlineAgent {
            strategy,
            state: AgentState::Active,
            predictor: UtilityPredictor::phase_local(),
            epochs_sprinted: 0,
            epochs_total: 0,
        }
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> AgentState {
        self.state
    }

    /// The assigned strategy.
    #[must_use]
    pub fn strategy(&self) -> ThresholdStrategy {
        self.strategy
    }

    /// Replace the assigned strategy (coordinator re-optimization).
    pub fn assign(&mut self, strategy: ThresholdStrategy) {
        self.strategy = strategy;
    }

    /// Fraction of epochs this agent sprinted.
    #[must_use]
    pub fn sprint_rate(&self) -> f64 {
        if self.epochs_total == 0 {
            0.0
        } else {
            self.epochs_sprinted as f64 / self.epochs_total as f64
        }
    }

    /// Decide the epoch's action given the measured utility estimate
    /// (from brief profiling at epoch start), then record the observation.
    pub fn begin_epoch(&mut self, measured_utility: f64) -> Decision {
        self.epochs_total += 1;
        // Prefer the measured estimate; the predictor backs it up and
        // keeps learning phase structure for consumers that query it.
        self.predictor.observe(measured_utility);
        if !self.state.can_sprint() {
            return Decision::Forbidden;
        }
        if self.strategy.should_sprint(measured_utility) {
            self.epochs_sprinted += 1;
            Decision::Sprint
        } else {
            Decision::Normal
        }
    }

    /// Apply the epoch's resolved transition events.
    pub fn end_epoch(
        &mut self,
        decision: Decision,
        rack_tripped: bool,
        leaves_cooling: bool,
        leaves_recovery: bool,
    ) {
        self.state = self.state.next(
            decision == Decision::Sprint,
            rack_tripped,
            leaves_cooling,
            leaves_recovery,
        );
    }

    /// The predictor's current estimate of next-epoch utility.
    #[must_use]
    pub fn predicted_utility(&self) -> Option<f64> {
        self.predictor.predict()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictor_validates_alpha() {
        assert!(UtilityPredictor::new(-0.1).is_err());
        assert!(UtilityPredictor::new(1.1).is_err());
        assert!(UtilityPredictor::new(0.5).is_ok());
    }

    #[test]
    fn predictor_warms_up_then_tracks() {
        let mut p = UtilityPredictor::phase_local();
        assert!(p.predict().is_none());
        p.observe(4.0);
        let first = p.predict().unwrap();
        assert!((first - 4.0).abs() < 1e-12);
        // A persistent phase keeps predictions near the level.
        for _ in 0..10 {
            p.observe(4.0);
        }
        assert!((p.predict().unwrap() - 4.0).abs() < 1e-9);
        // A phase change pulls the prediction toward the new level.
        p.observe(10.0);
        let after = p.predict().unwrap();
        assert!(after > 7.0, "prediction {after} should chase the new phase");
    }

    #[test]
    fn pure_persistence_predictor() {
        let mut p = UtilityPredictor::new(1.0).unwrap();
        p.observe(3.0);
        p.observe(8.0);
        assert_eq!(p.predict().unwrap(), 8.0);
    }

    #[test]
    fn agent_decision_respects_threshold_and_state() {
        let mut a = OnlineAgent::new(ThresholdStrategy::new(3.0).unwrap());
        assert_eq!(a.begin_epoch(5.0), Decision::Sprint);
        a.end_epoch(Decision::Sprint, false, false, false);
        assert_eq!(a.state(), AgentState::Cooling);
        // Cooling forbids sprinting even at high utility.
        assert_eq!(a.begin_epoch(100.0), Decision::Forbidden);
        a.end_epoch(Decision::Forbidden, false, true, false);
        assert_eq!(a.state(), AgentState::Active);
        // Back to normal comparisons.
        assert_eq!(a.begin_epoch(2.0), Decision::Normal);
    }

    #[test]
    fn trip_forces_recovery() {
        let mut a = OnlineAgent::new(ThresholdStrategy::always_sprint());
        let d = a.begin_epoch(1.5);
        a.end_epoch(d, true, false, false);
        assert_eq!(a.state(), AgentState::Recovery);
        assert_eq!(a.begin_epoch(9.0), Decision::Forbidden);
        a.end_epoch(Decision::Forbidden, false, false, true);
        assert_eq!(a.state(), AgentState::Active);
    }

    #[test]
    fn sprint_rate_accounts_all_epochs() {
        let mut a = OnlineAgent::new(ThresholdStrategy::new(3.0).unwrap());
        let d1 = a.begin_epoch(5.0); // sprint
        a.end_epoch(d1, false, false, false);
        let d2 = a.begin_epoch(5.0); // forbidden (cooling)
        a.end_epoch(d2, false, true, false);
        let d3 = a.begin_epoch(1.0); // normal
        a.end_epoch(d3, false, false, false);
        assert!((a.sprint_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn strategy_reassignment() {
        let mut a = OnlineAgent::new(ThresholdStrategy::new(3.0).unwrap());
        a.assign(ThresholdStrategy::new(10.0).unwrap());
        assert_eq!(a.strategy().threshold(), 10.0);
        assert_eq!(a.begin_epoch(5.0), Decision::Normal);
    }
}
