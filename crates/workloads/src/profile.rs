//! Offline utility profiling: from epoch speedups to `f(u)`.
//!
//! Paper §4.4, "Offline Analysis": agents sample epochs, measure utility
//! from sprinting, and produce a density function `f(u)` that the
//! coordinator consumes. This module turns measured per-epoch speedups
//! (from [`crate::trace::epoch_speedups`] or online sampling) into a
//! [`UtilityProfile`]: a kernel density estimate plus the summary
//! statistics the coordinator and the figures need.

use sprint_stats::density::DiscreteDensity;
use sprint_stats::kde::kernel_density;
use sprint_stats::summary::OnlineStats;

use crate::benchmark::Benchmark;
use crate::WorkloadError;

/// A profiled utility distribution for one agent/application.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct UtilityProfile {
    density: DiscreteDensity,
    mean: f64,
    std_dev: f64,
    n_samples: usize,
}

impl UtilityProfile {
    /// Estimate a profile from measured per-epoch speedups with a Gaussian
    /// KDE (the estimator behind the paper's Figure 10).
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::Stats`] for empty or non-finite samples.
    pub fn from_samples(epoch_speedups: &[f64]) -> crate::Result<Self> {
        Self::from_samples_with_bins(epoch_speedups, 256)
    }

    /// Like [`UtilityProfile::from_samples`] with explicit grid resolution.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::Stats`] for empty or non-finite samples or
    /// `bins == 0`.
    pub fn from_samples_with_bins(epoch_speedups: &[f64], bins: usize) -> crate::Result<Self> {
        let density = kernel_density(epoch_speedups, bins).map_err(WorkloadError::from)?;
        let stats: OnlineStats = epoch_speedups.iter().copied().collect();
        Ok(UtilityProfile {
            density,
            mean: stats.mean(),
            std_dev: stats.std_dev(),
            n_samples: epoch_speedups.len(),
        })
    }

    /// The analytic profile of a calibrated benchmark (no sampling noise).
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::Stats`] when `bins` is 0.
    pub fn analytic(benchmark: Benchmark, bins: usize) -> crate::Result<Self> {
        let density = benchmark.utility_density(bins)?;
        Ok(UtilityProfile {
            mean: density.mean(),
            std_dev: density.variance().sqrt(),
            n_samples: 0,
            density,
        })
    }

    /// The estimated utility density `f(u)`.
    #[must_use]
    pub fn density(&self) -> &DiscreteDensity {
        &self.density
    }

    /// Consume the profile, returning its density.
    #[must_use]
    pub fn into_density(self) -> DiscreteDensity {
        self.density
    }

    /// Mean utility (mean sprinting speedup).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Standard deviation of utility — the quantity that separates
    /// always-sprint applications (narrow) from judicious ones (wide), per
    /// the paper's §6.3.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Number of profiled epochs (0 for analytic profiles).
    #[must_use]
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// Coefficient of variation, the dimensionless spread measure used to
    /// compare profile shapes across benchmarks.
    #[must_use]
    pub fn coefficient_of_variation(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }

    /// Probability that an epoch's utility exceeds `threshold` — the sprint
    /// probability an agent with that threshold would exhibit (Equation 9).
    #[must_use]
    pub fn sprint_probability(&self, threshold: f64) -> f64 {
        self.density.tail_mass(threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phases::PhasedUtility;

    #[test]
    fn profile_from_samples_matches_moments() {
        let mut stream = PhasedUtility::for_benchmark(Benchmark::DecisionTree, 5).unwrap();
        let samples: Vec<f64> = (0..20_000).map(|_| stream.next_utility()).collect();
        let profile = UtilityProfile::from_samples(&samples).unwrap();
        let analytic = Benchmark::DecisionTree.mean_speedup();
        assert!((profile.mean() - analytic).abs() < 0.1);
        assert_eq!(profile.n_samples(), 20_000);
        assert!(profile.std_dev() > 0.5, "decision tree has wide phases");
    }

    #[test]
    fn empty_samples_error() {
        assert!(UtilityProfile::from_samples(&[]).is_err());
        assert!(UtilityProfile::from_samples(&[f64::NAN]).is_err());
    }

    #[test]
    fn analytic_profile_matches_benchmark_density() {
        let p = UtilityProfile::analytic(Benchmark::LinearRegression, 256).unwrap();
        assert!((p.mean() - 4.0).abs() < 0.1);
        assert_eq!(p.n_samples(), 0);
        assert!(p.coefficient_of_variation() < 0.15, "narrow profile");
    }

    #[test]
    fn sprint_probability_decreases_with_threshold() {
        let p = UtilityProfile::analytic(Benchmark::PageRank, 256).unwrap();
        let lo = p.sprint_probability(2.0);
        let hi = p.sprint_probability(10.0);
        assert!(lo > hi);
        assert!(hi > 0.2, "pagerank often exceeds 10x");
        assert!((0.0..=1.0).contains(&lo));
    }

    #[test]
    fn narrow_profiles_have_lower_cv_than_wide() {
        let narrow = UtilityProfile::analytic(Benchmark::Correlation, 256)
            .unwrap()
            .coefficient_of_variation();
        let wide = UtilityProfile::analytic(Benchmark::PageRank, 256)
            .unwrap()
            .coefficient_of_variation();
        assert!(narrow < wide / 2.0);
    }

    #[test]
    fn into_density_round_trips() {
        let p = UtilityProfile::analytic(Benchmark::Svm, 128).unwrap();
        let mean = p.mean();
        let d = p.into_density();
        assert!((d.mean() - mean).abs() < 1e-9);
    }
}
