//! Workload substrate for the computational sprinting game.
//!
//! The paper evaluates eleven Spark applications (Table 1) whose
//! time-varying computational phases determine how much each epoch benefits
//! from a sprint. The real datasets and testbed are not reproducible, so
//! this crate provides two complementary models, both calibrated to the
//! paper's published figures:
//!
//! - **Statistical** — [`benchmark::Benchmark`] assigns each application a
//!   per-epoch *speedup distribution* calibrated to Figure 1 (mean
//!   speedups), Figure 10 (density shapes: a narrow 3–5× band for Linear
//!   Regression, a heavy bimodal profile for PageRank), and Figure 11
//!   (equilibrium sprint propensities). [`phases`] adds the temporal
//!   correlation of real phase behavior.
//! - **Mechanistic** — [`spark`] executes a synthetic job → stage → task
//!   DAG on a configurable number of cores with dynamic task scheduling,
//!   the way the Spark run-time engine "schedules tasks to use available
//!   cores and maximizes parallelism" (paper §5). [`trace`] turns
//!   executions into tasks-per-second traces, and [`profile`] turns traces
//!   into the utility densities `f(u)` the game consumes.
//!
//! [`generator`] builds agent populations (homogeneous or heterogeneous,
//! with randomized arrivals) for the rack simulator.
//!
//! # Example
//!
//! ```
//! use sprint_workloads::benchmark::Benchmark;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let density = Benchmark::PageRank.utility_density(256)?;
//! // PageRank's gains are bimodal; a large share of epochs exceed 8x.
//! assert!(density.tail_mass(8.0) > 0.2);
//! # Ok(())
//! # }
//! ```

pub mod benchmark;
pub mod generator;
pub mod phases;
pub mod profile;
pub mod spark;
pub mod trace;

mod error;

pub use benchmark::Benchmark;
pub use error::WorkloadError;

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, WorkloadError>;
