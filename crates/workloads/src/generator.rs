//! Agent population builders.
//!
//! Paper §5, "Simulation Methods": one set of simulations evaluates
//! *homogeneous* agents who arrive randomly and launch the same
//! application ("randomized arrivals cause application phases to overlap
//! in diverse ways"); a second set evaluates *heterogeneous* agents who
//! launch different applications. This module constructs both population
//! shapes and instantiates per-agent utility streams with independent
//! seeds and randomized arrival offsets.

use rand::Rng;

use sprint_stats::rng::SeedSequence;

use crate::benchmark::Benchmark;
use crate::phases::PhasedUtility;
use crate::WorkloadError;

/// Maximum random arrival offset, epochs. Offsets decorrelate the phase
/// processes of agents running the same application.
const MAX_ARRIVAL_OFFSET_EPOCHS: usize = 64;

/// A population of agents, each assigned a benchmark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Population {
    assignments: Vec<Benchmark>,
}

impl Population {
    /// A homogeneous population: `n` agents all running `benchmark`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] when `n` is 0.
    pub fn homogeneous(benchmark: Benchmark, n: usize) -> crate::Result<Self> {
        if n == 0 {
            return Err(WorkloadError::InvalidParameter {
                name: "n",
                value: 0.0,
                expected: "at least one agent",
            });
        }
        Ok(Population {
            assignments: vec![benchmark; n],
        })
    }

    /// A heterogeneous population: `n` agents assigned round-robin across
    /// `benchmarks` (balanced mix, as in the paper's Figure 9 sweeps).
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] when `n` is 0 and
    /// [`WorkloadError::EmptyWorkload`] when `benchmarks` is empty.
    pub fn heterogeneous(benchmarks: &[Benchmark], n: usize) -> crate::Result<Self> {
        if benchmarks.is_empty() {
            return Err(WorkloadError::EmptyWorkload { what: "benchmarks" });
        }
        if n == 0 {
            return Err(WorkloadError::InvalidParameter {
                name: "n",
                value: 0.0,
                expected: "at least one agent",
            });
        }
        Ok(Population {
            assignments: (0..n).map(|i| benchmarks[i % benchmarks.len()]).collect(),
        })
    }

    /// Pick `k` distinct application types uniformly at random (without
    /// replacement) from the full suite and build a balanced `n`-agent
    /// population — one draw of the paper's Figure 9 experiment.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] when `k` is 0, exceeds
    /// the suite size, or `n` is 0.
    pub fn random_mix<R: Rng + ?Sized>(k: usize, n: usize, rng: &mut R) -> crate::Result<Self> {
        if k == 0 || k > Benchmark::ALL.len() {
            return Err(WorkloadError::InvalidParameter {
                name: "k",
                value: k as f64,
                expected: "between 1 and 11 application types",
            });
        }
        let mut pool = Benchmark::ALL.to_vec();
        // Partial Fisher-Yates: the first k slots become the sample.
        for i in 0..k {
            let j = i + rng.gen_range(0..pool.len() - i);
            pool.swap(i, j);
        }
        Population::heterogeneous(&pool[..k], n)
    }

    /// Number of agents.
    #[must_use]
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// Whether the population is empty (never true after construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Benchmark assignment per agent.
    #[must_use]
    pub fn assignments(&self) -> &[Benchmark] {
        &self.assignments
    }

    /// The distinct application types present, in suite order.
    #[must_use]
    pub fn distinct_types(&self) -> Vec<Benchmark> {
        Benchmark::ALL
            .into_iter()
            .filter(|b| self.assignments.contains(b))
            .collect()
    }

    /// Number of agents running `benchmark`.
    #[must_use]
    pub fn count_of(&self, benchmark: Benchmark) -> usize {
        self.assignments.iter().filter(|&&b| b == benchmark).count()
    }

    /// Instantiate per-agent utility streams with independent seeds and
    /// randomized arrival offsets derived from `master_seed`.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in benchmarks; the `Result` propagates
    /// stream-construction errors for API uniformity.
    pub fn spawn_streams(&self, master_seed: u64) -> crate::Result<Vec<PhasedUtility>> {
        // One discretized sample table per distinct benchmark, shared by
        // every stream in that cohort (discretization is O(bins) pdf
        // evaluations — paying it per agent would dominate large-N setup).
        let tables: Vec<(
            Benchmark,
            std::sync::Arc<sprint_stats::density::DiscreteDensity>,
        )> = self
            .distinct_types()
            .into_iter()
            .map(|b| {
                b.utility_density(crate::phases::PHASE_SAMPLE_BINS)
                    .map(|d| (b, std::sync::Arc::new(d)))
            })
            .collect::<crate::Result<_>>()?;
        let mut seq = SeedSequence::new(master_seed);
        self.assignments
            .iter()
            .map(|&b| {
                let seed = seq.next_seed();
                let table = tables
                    .iter()
                    .find(|(t, _)| *t == b)
                    .map(|(_, table)| table.clone())
                    .expect("every assignment is a distinct type");
                let mut stream = PhasedUtility::with_shared_table(
                    b.speedup_distribution(),
                    table,
                    crate::phases::DEFAULT_PERSISTENCE_EPOCHS,
                    seed,
                )?;
                // Randomized arrival: advance by a seed-derived offset.
                let offset = (seed >> 32) as usize % MAX_ARRIVAL_OFFSET_EPOCHS;
                stream.skip(offset);
                Ok(stream)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprint_stats::rng::seeded_rng;

    #[test]
    fn homogeneous_populations() {
        let p = Population::homogeneous(Benchmark::DecisionTree, 100).unwrap();
        assert_eq!(p.len(), 100);
        assert_eq!(p.count_of(Benchmark::DecisionTree), 100);
        assert_eq!(p.distinct_types(), vec![Benchmark::DecisionTree]);
        assert!(Population::homogeneous(Benchmark::Svm, 0).is_err());
    }

    #[test]
    fn heterogeneous_round_robin_is_balanced() {
        let types = [Benchmark::PageRank, Benchmark::Svm, Benchmark::Kmeans];
        let p = Population::heterogeneous(&types, 99).unwrap();
        for t in types {
            assert_eq!(p.count_of(t), 33);
        }
        assert!(Population::heterogeneous(&[], 10).is_err());
        assert!(Population::heterogeneous(&types, 0).is_err());
    }

    #[test]
    fn random_mix_draws_distinct_types() {
        let mut rng = seeded_rng(3);
        for k in 1..=11 {
            let p = Population::random_mix(k, 110, &mut rng).unwrap();
            assert_eq!(p.distinct_types().len(), k, "k = {k}");
            assert_eq!(p.len(), 110);
        }
        assert!(Population::random_mix(0, 10, &mut rng).is_err());
        assert!(Population::random_mix(12, 10, &mut rng).is_err());
    }

    #[test]
    fn random_mix_varies_across_draws() {
        let mut rng = seeded_rng(5);
        let a = Population::random_mix(3, 30, &mut rng).unwrap();
        let b = Population::random_mix(3, 30, &mut rng).unwrap();
        // Overwhelmingly likely to differ (C(11,3) = 165 possible draws).
        assert_ne!(a.distinct_types(), b.distinct_types());
    }

    #[test]
    fn streams_are_independent_and_reproducible() {
        let p = Population::homogeneous(Benchmark::PageRank, 8).unwrap();
        let mut s1 = p.spawn_streams(99).unwrap();
        let mut s2 = p.spawn_streams(99).unwrap();
        assert_eq!(s1.len(), 8);
        // Reproducible across spawns with the same master seed.
        for (a, b) in s1.iter_mut().zip(s2.iter_mut()) {
            assert_eq!(a.next_utility(), b.next_utility());
        }
        // Different agents see different phases (arrival offsets + seeds).
        let firsts: Vec<f64> = p
            .spawn_streams(99)
            .unwrap()
            .iter_mut()
            .map(PhasedUtility::next_utility)
            .collect();
        let distinct = firsts
            .iter()
            .filter(|&&x| (x - firsts[0]).abs() > 1e-12)
            .count();
        assert!(distinct >= 4, "agents' phases must not be aligned");
    }

    #[test]
    fn distinct_types_in_suite_order() {
        let p = Population::heterogeneous(&[Benchmark::TriangleCounting, Benchmark::NaiveBayes], 4)
            .unwrap();
        assert_eq!(
            p.distinct_types(),
            vec![Benchmark::NaiveBayes, Benchmark::TriangleCounting]
        );
    }
}
