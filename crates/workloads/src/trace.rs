//! Tasks-per-second traces and the paper's trace-interpolation method.
//!
//! Paper §5, "Profiling Methods": the authors trace TPS during end-to-end
//! execution in normal and sprinting modes. Because execution times differ,
//! they align the traces by *work*: "for every second in normal mode, we
//! measure the number of tasks completed and estimate the number of tasks
//! that would have been completed in the sprinting mode", then estimate a
//! sprint's speedup per epoch. [`epoch_speedups`] implements exactly that
//! alignment over task-completion timestamps.

use crate::WorkloadError;

/// A tasks-per-second trace with fixed-width time buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct TpsTrace {
    bucket_s: f64,
    counts: Vec<u32>,
}

impl TpsTrace {
    /// Build a trace from sorted task-completion timestamps.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] for a non-positive
    /// bucket width or unsorted/non-finite completions, and
    /// [`WorkloadError::EmptyWorkload`] for an empty completion list.
    pub fn from_completions(completions: &[f64], bucket_s: f64) -> crate::Result<Self> {
        if completions.is_empty() {
            return Err(WorkloadError::EmptyWorkload { what: "tasks" });
        }
        if bucket_s <= 0.0 || !bucket_s.is_finite() {
            return Err(WorkloadError::InvalidParameter {
                name: "bucket_s",
                value: bucket_s,
                expected: "a positive finite bucket width",
            });
        }
        if completions
            .windows(2)
            .any(|w| w[0] > w[1] || !w[0].is_finite() || !w[1].is_finite())
            || !completions[0].is_finite()
            || completions[0] < 0.0
        {
            return Err(WorkloadError::InvalidParameter {
                name: "completions",
                value: f64::NAN,
                expected: "sorted, finite, non-negative completion times",
            });
        }
        let end = *completions.last().expect("non-empty");
        let n_buckets = (end / bucket_s).floor() as usize + 1;
        let mut counts = vec![0u32; n_buckets];
        for &t in completions {
            let idx = ((t / bucket_s) as usize).min(n_buckets - 1);
            counts[idx] += 1;
        }
        Ok(TpsTrace { bucket_s, counts })
    }

    /// Bucket width, seconds.
    #[must_use]
    pub fn bucket_s(&self) -> f64 {
        self.bucket_s
    }

    /// Tasks completed per bucket.
    #[must_use]
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Trace length, seconds.
    #[must_use]
    pub fn duration_s(&self) -> f64 {
        self.counts.len() as f64 * self.bucket_s
    }

    /// Total tasks in the trace.
    #[must_use]
    pub fn total_tasks(&self) -> u64 {
        self.counts.iter().map(|&c| u64::from(c)).sum()
    }

    /// Mean tasks per second over the trace.
    #[must_use]
    pub fn mean_tps(&self) -> f64 {
        self.total_tasks() as f64 / self.duration_s()
    }

    /// Tasks per second in bucket `i` (0 beyond the end).
    #[must_use]
    pub fn tps_at(&self, i: usize) -> f64 {
        self.counts
            .get(i)
            .map_or(0.0, |&c| f64::from(c) / self.bucket_s)
    }
}

/// Per-epoch sprint speedups by work-aligned trace comparison (paper §5).
///
/// Both completion lists describe the *same* tasks executed in normal and
/// sprint mode. For each `epoch_s`-long window of the normal trace, the
/// tasks completed in that window are located in the sprint trace, and the
/// speedup is the ratio of the times the two modes needed for that same
/// work: `epoch_s / sprint_time_for_same_tasks`.
///
/// # Errors
///
/// Returns [`WorkloadError::InvalidParameter`] when the lists have
/// different lengths, are unsorted, or `epoch_s` is non-positive, and
/// [`WorkloadError::EmptyWorkload`] when they are empty.
pub fn epoch_speedups(
    normal_completions: &[f64],
    sprint_completions: &[f64],
    epoch_s: f64,
) -> crate::Result<Vec<f64>> {
    if normal_completions.is_empty() {
        return Err(WorkloadError::EmptyWorkload { what: "tasks" });
    }
    if normal_completions.len() != sprint_completions.len() {
        return Err(WorkloadError::InvalidParameter {
            name: "sprint_completions",
            value: sprint_completions.len() as f64,
            expected: "the same task count as the normal-mode trace",
        });
    }
    if epoch_s <= 0.0 || !epoch_s.is_finite() {
        return Err(WorkloadError::InvalidParameter {
            name: "epoch_s",
            value: epoch_s,
            expected: "a positive finite epoch length",
        });
    }
    for list in [normal_completions, sprint_completions] {
        if list
            .windows(2)
            .any(|w| w[0] > w[1] || !w[0].is_finite() || !w[1].is_finite())
            || !list[0].is_finite()
        {
            return Err(WorkloadError::InvalidParameter {
                name: "completions",
                value: f64::NAN,
                expected: "sorted finite completion times",
            });
        }
    }

    let total = normal_completions.len();
    let end = *normal_completions.last().expect("non-empty");
    let n_epochs = (end / epoch_s).ceil().max(1.0) as usize;
    let mut speedups = Vec::with_capacity(n_epochs);
    let mut first_task = 0usize;
    for e in 0..n_epochs {
        let window_end = (e as f64 + 1.0) * epoch_s;
        // Tasks the normal mode completes within this epoch.
        let mut last_task = first_task;
        while last_task < total && normal_completions[last_task] <= window_end {
            last_task += 1;
        }
        if last_task == first_task {
            // No tasks completed this epoch (a long task spans it):
            // attribute the frequency-only floor of 1 — the sprint cannot
            // be slower than normal.
            speedups.push(1.0);
            continue;
        }
        // Time the sprint mode needed for the same tasks.
        let sprint_start = if first_task == 0 {
            0.0
        } else {
            sprint_completions[first_task - 1]
        };
        let sprint_span = (sprint_completions[last_task - 1] - sprint_start).max(1e-9);
        // Time the normal mode actually used inside the window.
        let normal_start = if first_task == 0 {
            0.0
        } else {
            normal_completions[first_task - 1].max((e as f64) * epoch_s)
        };
        let normal_span = (normal_completions[last_task - 1] - normal_start).max(1e-9);
        speedups.push((normal_span / sprint_span).max(1.0));
        first_task = last_task;
    }
    Ok(speedups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spark::{execute, ExecutorConfig, SparkApp};
    use sprint_stats::rng::seeded_rng;

    #[test]
    fn trace_validates() {
        assert!(TpsTrace::from_completions(&[], 1.0).is_err());
        assert!(TpsTrace::from_completions(&[1.0], 0.0).is_err());
        assert!(TpsTrace::from_completions(&[2.0, 1.0], 1.0).is_err());
        assert!(TpsTrace::from_completions(&[-1.0, 1.0], 1.0).is_err());
    }

    #[test]
    fn trace_buckets_counts() {
        let t = TpsTrace::from_completions(&[0.1, 0.5, 1.2, 2.9], 1.0).unwrap();
        assert_eq!(t.counts(), &[2, 1, 1]);
        assert_eq!(t.total_tasks(), 4);
        assert!((t.duration_s() - 3.0).abs() < 1e-12);
        assert!((t.tps_at(0) - 2.0).abs() < 1e-12);
        assert_eq!(t.tps_at(99), 0.0);
        assert!((t.mean_tps() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_rate_speedup_recovers_ratio() {
        // Normal completes a task every second; sprint every 0.25 s:
        // speedup 4 in every epoch.
        let normal: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let sprint: Vec<f64> = (1..=100).map(|i| i as f64 * 0.25).collect();
        let s = epoch_speedups(&normal, &sprint, 10.0).unwrap();
        assert_eq!(s.len(), 10);
        for (i, v) in s.iter().enumerate() {
            assert!((v - 4.0).abs() < 0.15, "epoch {i}: speedup {v}");
        }
    }

    #[test]
    fn phase_dependent_speedup_is_detected() {
        // First half: sprint 2x faster; second half: sprint 8x faster.
        let mut normal = Vec::new();
        let mut sprint = Vec::new();
        let mut tn = 0.0;
        let mut ts = 0.0;
        for i in 0..200 {
            tn += 1.0;
            ts += if i < 100 { 0.5 } else { 0.125 };
            normal.push(tn);
            sprint.push(ts);
        }
        let s = epoch_speedups(&normal, &sprint, 20.0).unwrap();
        let first_half = s[1];
        let second_half = s[8];
        assert!(
            (first_half - 2.0).abs() < 0.3,
            "early epochs ≈2x: {first_half}"
        );
        assert!(
            (second_half - 8.0).abs() < 1.0,
            "late epochs ≈8x: {second_half}"
        );
    }

    #[test]
    fn speedups_never_below_one() {
        // Degenerate input where sprint is no faster.
        let normal: Vec<f64> = (1..=50).map(|i| i as f64).collect();
        let s = epoch_speedups(&normal, &normal, 7.0).unwrap();
        assert!(s.iter().all(|&v| v >= 1.0));
    }

    #[test]
    fn epoch_speedups_validate() {
        let a = vec![1.0, 2.0];
        let b = vec![0.5];
        assert!(epoch_speedups(&a, &b, 1.0).is_err());
        assert!(epoch_speedups(&[], &[], 1.0).is_err());
        assert!(epoch_speedups(&a, &a, 0.0).is_err());
        let unsorted = vec![2.0, 1.0];
        assert!(epoch_speedups(&unsorted, &unsorted, 1.0).is_err());
    }

    #[test]
    fn pipeline_from_mechanistic_model() {
        // End-to-end: execute a synthetic app in both modes, align traces,
        // and confirm per-epoch speedups bracket the end-to-end ratio.
        let mut rng = seeded_rng(42);
        let app = SparkApp::synthetic(20, 4, 0.5, 48, 3, &mut rng).unwrap();
        let nom = execute(&app, ExecutorConfig::paper_nominal());
        let spr = execute(&app, ExecutorConfig::paper_sprint());
        let epoch = nom.total_time_s() / 40.0;
        let s = epoch_speedups(nom.task_completions(), spr.task_completions(), epoch).unwrap();
        assert!(s.len() >= 30);
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        // Mixture of 2.25x narrow and ~9x wide phases.
        assert!((2.0..=9.5).contains(&mean), "mean epoch speedup {mean}");
        let min = s.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = s.iter().cloned().fold(0.0, f64::max);
        assert!(min >= 1.0);
        assert!(max > mean, "wide phases exceed the mean");
    }
}
