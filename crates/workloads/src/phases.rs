//! Temporally correlated phase behavior.
//!
//! Real applications move through computational phases: a Spark stage that
//! benefits 10× from sprinting is usually followed by more epochs of the
//! same stage. The game's analysis only needs the *stationary* utility
//! density `f(u)` (paper §4), but the simulator should present agents with
//! realistic correlated sequences — phase overlap across randomly-arriving
//! agents is what exercises the equilibrium (paper §5, "Simulation
//! Methods").
//!
//! [`PhasedUtility`] holds each utility value for a geometrically
//! distributed number of epochs (mean = the persistence), then redraws
//! from the benchmark's distribution. The marginal distribution of the
//! emitted sequence equals the benchmark's `f(u)` while consecutive epochs
//! are positively correlated.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::Rng;

use sprint_stats::density::DiscreteDensity;
use sprint_stats::dist::ContinuousDistribution;
use sprint_stats::rng::seeded_rng;

use crate::benchmark::Benchmark;
use crate::WorkloadError;

/// Grid resolution of the discretized sample table every stream carries
/// for the simulator's O(1) phase-resample kernel. At 1024 bins the
/// quantization error of a resampled phase value is below 0.1% of the
/// support width — far inside every statistical tolerance in the suite.
pub const PHASE_SAMPLE_BINS: usize = 1024;

/// Default mean phase persistence: data-analytics phases span a handful
/// of 150 s epochs; 3 epochs reflects multi-epoch Spark stages.
pub const DEFAULT_PERSISTENCE_EPOCHS: f64 = 3.0;

/// A stream of per-epoch sprinting utilities with phase persistence.
#[derive(Debug)]
pub struct PhasedUtility {
    dist: Box<dyn ContinuousDistribution>,
    /// The discretized stationary density `f(u)`, shared across a cohort
    /// so the engine can resample phases with one inverse-cdf lookup.
    table: Arc<DiscreteDensity>,
    /// Mean number of epochs a phase persists (>= 1; 1 = iid).
    persistence_epochs: f64,
    current: f64,
    seed: u64,
    rng: StdRng,
}

impl PhasedUtility {
    /// Create a stream drawing phases from `dist`, each persisting for a
    /// geometric number of epochs with the given mean.
    ///
    /// Discretizes `dist` into a private sample table; spawn cohorts
    /// through [`PhasedUtility::with_shared_table`] (as
    /// [`crate::generator::Population::spawn_streams`] does) to pay that
    /// cost once per distribution instead of once per agent.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] when
    /// `persistence_epochs < 1`.
    pub fn new(
        dist: Box<dyn ContinuousDistribution>,
        persistence_epochs: f64,
        seed: u64,
    ) -> crate::Result<Self> {
        let table = Arc::new(DiscreteDensity::from_distribution(
            dist.as_ref(),
            PHASE_SAMPLE_BINS,
        )?);
        PhasedUtility::with_shared_table(dist, table, persistence_epochs, seed)
    }

    /// [`PhasedUtility::new`] with a pre-discretized sample table, so a
    /// cohort of streams over one distribution shares one table.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] when
    /// `persistence_epochs < 1`.
    pub fn with_shared_table(
        dist: Box<dyn ContinuousDistribution>,
        table: Arc<DiscreteDensity>,
        persistence_epochs: f64,
        seed: u64,
    ) -> crate::Result<Self> {
        if persistence_epochs < 1.0 || !persistence_epochs.is_finite() {
            return Err(WorkloadError::InvalidParameter {
                name: "persistence_epochs",
                value: persistence_epochs,
                expected: "a finite persistence of at least 1 epoch",
            });
        }
        let mut rng = seeded_rng(seed);
        let current = dist.sample(&mut rng);
        Ok(PhasedUtility {
            dist,
            table,
            persistence_epochs,
            current,
            seed,
            rng,
        })
    }

    /// Create a stream for a benchmark with its default persistence
    /// ([`DEFAULT_PERSISTENCE_EPOCHS`]).
    ///
    /// # Errors
    ///
    /// Never fails for the built-in persistence; the `Result` mirrors
    /// [`PhasedUtility::new`] for API uniformity.
    pub fn for_benchmark(benchmark: Benchmark, seed: u64) -> crate::Result<Self> {
        PhasedUtility::new(
            benchmark.speedup_distribution(),
            DEFAULT_PERSISTENCE_EPOCHS,
            seed,
        )
    }

    /// Mean phase persistence in epochs.
    #[must_use]
    pub fn persistence_epochs(&self) -> f64 {
        self.persistence_epochs
    }

    /// Utility of the current epoch, then advance the phase process.
    pub fn next_utility(&mut self) -> f64 {
        let out = self.current;
        let p_new = 1.0 / self.persistence_epochs;
        if self.rng.gen::<f64>() < p_new {
            self.current = self.dist.sample(&mut self.rng);
        }
        out
    }

    /// Advance the stream by `epochs` draws without observing them
    /// (used to randomize agent arrival offsets).
    pub fn skip(&mut self, epochs: usize) {
        for _ in 0..epochs {
            let _ = self.next_utility();
        }
    }

    // --- Kernel decomposition -------------------------------------------
    //
    // The simulation engine advances phases in struct-of-arrays lanes
    // with counter-based draws instead of walking each stream's
    // sequential generator: it reads the pieces below once at setup and
    // writes the final phase back with [`PhasedUtility::sync_phase`].

    /// The phase value the next [`PhasedUtility::next_utility`] call
    /// would emit.
    #[must_use]
    pub fn phase_value(&self) -> f64 {
        self.current
    }

    /// Per-epoch probability that the phase resamples (`1 / persistence`).
    #[must_use]
    pub fn resample_probability(&self) -> f64 {
        1.0 / self.persistence_epochs
    }

    /// The shared discretized density phases resample from.
    #[must_use]
    pub fn sample_table(&self) -> &Arc<DiscreteDensity> {
        &self.table
    }

    /// The seed this stream was created with — the root of its
    /// counter-based draw coordinates in the engine kernel.
    #[must_use]
    pub fn stream_seed(&self) -> u64 {
        self.seed
    }

    /// Write back a phase value advanced outside the stream (the engine's
    /// lane kernel), so the stream observes its own evolution.
    pub fn sync_phase(&mut self, value: f64) {
        self.current = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprint_stats::dist::Uniform;
    use sprint_stats::summary::OnlineStats;

    fn uniform_stream(persistence: f64, seed: u64) -> PhasedUtility {
        PhasedUtility::new(
            Box::new(Uniform::new(0.0, 10.0).unwrap()),
            persistence,
            seed,
        )
        .unwrap()
    }

    #[test]
    fn validates_persistence() {
        let d = || -> Box<dyn ContinuousDistribution> { Box::new(Uniform::new(0.0, 1.0).unwrap()) };
        assert!(PhasedUtility::new(d(), 0.5, 1).is_err());
        assert!(PhasedUtility::new(d(), f64::NAN, 1).is_err());
        assert!(PhasedUtility::new(d(), 1.0, 1).is_ok());
    }

    #[test]
    fn marginal_matches_source_distribution() {
        let mut s = uniform_stream(4.0, 7);
        let stats: OnlineStats = (0..50_000).map(|_| s.next_utility()).collect();
        assert!((stats.mean() - 5.0).abs() < 0.15);
        assert!((stats.variance() - 100.0 / 12.0).abs() < 0.5);
    }

    #[test]
    fn persistence_produces_repeats() {
        let mut s = uniform_stream(5.0, 11);
        let vals: Vec<f64> = (0..10_000).map(|_| s.next_utility()).collect();
        let repeats = vals.windows(2).filter(|w| w[0] == w[1]).count() as f64;
        let frac = repeats / (vals.len() - 1) as f64;
        // With mean persistence 5, ~80% of consecutive pairs repeat.
        assert!((frac - 0.8).abs() < 0.03, "repeat fraction {frac}");
    }

    #[test]
    fn persistence_one_is_iid() {
        let mut s = uniform_stream(1.0, 13);
        let vals: Vec<f64> = (0..1_000).map(|_| s.next_utility()).collect();
        let repeats = vals.windows(2).filter(|w| w[0] == w[1]).count();
        assert_eq!(repeats, 0, "continuous iid draws never repeat exactly");
    }

    #[test]
    fn skip_advances_state() {
        let mut a = uniform_stream(3.0, 17);
        let mut b = uniform_stream(3.0, 17);
        b.skip(10);
        let a_vals: Vec<f64> = (0..20).map(|_| a.next_utility()).collect();
        let b0 = b.next_utility();
        // b's first value equals a's value 10 epochs in.
        assert_eq!(b0, a_vals[10]);
    }

    #[test]
    fn benchmark_stream_stays_in_support() {
        let mut s = PhasedUtility::for_benchmark(Benchmark::LinearRegression, 3).unwrap();
        for _ in 0..1000 {
            let u = s.next_utility();
            assert!((3.0..=5.0).contains(&u), "utility {u} outside the band");
        }
        assert_eq!(s.persistence_epochs(), 3.0);
    }

    #[test]
    fn autocorrelation_matches_persistence_theory() {
        // Holding each phase for a geometric number of epochs with mean m
        // gives lag-1 autocorrelation (m − 1)/m.
        for m in [2.0, 5.0] {
            let mut s = uniform_stream(m, 31);
            let series: Vec<f64> = (0..40_000).map(|_| s.next_utility()).collect();
            let r1 = sprint_stats::summary::autocorrelation(&series, 1).unwrap();
            let expected = (m - 1.0) / m;
            assert!(
                (r1 - expected).abs() < 0.03,
                "persistence {m}: lag-1 autocorrelation {r1}, expected {expected}"
            );
        }
    }

    #[test]
    fn same_seed_reproduces_stream() {
        let mut a = PhasedUtility::for_benchmark(Benchmark::PageRank, 21).unwrap();
        let mut b = PhasedUtility::for_benchmark(Benchmark::PageRank, 21).unwrap();
        for _ in 0..100 {
            assert_eq!(a.next_utility(), b.next_utility());
        }
    }
}
