use std::error::Error;
use std::fmt;

use sprint_stats::StatsError;

/// Error raised by workload construction and profiling.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Rejected value.
        value: f64,
        /// Human-readable description of the valid domain.
        expected: &'static str,
    },
    /// A workload definition was structurally empty (no jobs/stages/tasks).
    EmptyWorkload {
        /// Which container was empty.
        what: &'static str,
    },
    /// An underlying statistics operation failed.
    Stats(StatsError),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::InvalidParameter {
                name,
                value,
                expected,
            } => write!(
                f,
                "parameter `{name}` = {value} is invalid: expected {expected}"
            ),
            WorkloadError::EmptyWorkload { what } => {
                write!(f, "workload definition has no {what}")
            }
            WorkloadError::Stats(e) => write!(f, "statistics error: {e}"),
        }
    }
}

impl Error for WorkloadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WorkloadError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StatsError> for WorkloadError {
    fn from(e: StatsError) -> Self {
        WorkloadError::Stats(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = WorkloadError::EmptyWorkload { what: "stages" };
        assert!(e.to_string().contains("stages"));
        assert!(e.source().is_none());

        let e: WorkloadError = StatsError::EmptyInput.into();
        assert!(e.source().is_some());
    }

    #[test]
    fn is_error_send_sync() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<WorkloadError>();
    }
}
