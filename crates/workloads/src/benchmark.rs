//! The paper's eleven Spark benchmarks (Table 1) with calibrated sprinting
//! profiles.
//!
//! Each benchmark carries the Table-1 metadata (category, dataset, size)
//! plus a per-epoch *speedup distribution*: how much faster an epoch runs
//! when sprinting (12 cores at 2.7 GHz) versus nominal (3 cores at
//! 1.2 GHz). The distributions are calibrated to three published exhibits:
//!
//! - **Figure 1** — mean end-to-end speedups between roughly 2× and 7×.
//! - **Figure 10** — density *shapes*: Linear Regression varies "in a band
//!   between 3× and 5×" (narrow, unimodal); PageRank "can often exceed 10×"
//!   (bimodal with a heavy upper mode).
//! - **Figure 11** — equilibrium sprint propensities: Linear Regression and
//!   Correlation sprint at every opportunity; the rest sprint judiciously.
//!
//! A second calibration dimension, the *activity factor*, scales dynamic
//! power per workload and reproduces Figure 1's power panel (compute-bound
//! workloads show larger normalized power than memory-bound graph codes).

use sprint_stats::density::DiscreteDensity;
use sprint_stats::dist::{ContinuousDistribution, LogNormal, Mixture, TruncatedNormal};

use crate::WorkloadError;

/// Table-1 workload category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Category {
    /// Supervised classification (MLlib).
    Classification,
    /// Clustering (MLlib).
    Clustering,
    /// Collaborative filtering (MLlib).
    CollaborativeFiltering,
    /// Summary statistics.
    Statistics,
    /// Graph processing (GraphX).
    GraphProcessing,
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Category::Classification => "Classification",
            Category::Clustering => "Clustering",
            Category::CollaborativeFiltering => "Collaborative Filtering",
            Category::Statistics => "Statistics",
            Category::GraphProcessing => "Graph Processing",
        };
        write!(f, "{s}")
    }
}

/// One of the paper's eleven Spark benchmarks.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum Benchmark {
    /// Naive Bayes classification on kdda2010.
    NaiveBayes,
    /// Decision tree classification on kdda2010 — the paper's
    /// "representative application" for Figures 6 and 7.
    DecisionTree,
    /// Gradient-boosted trees on kddb2010.
    GradientBoostedTrees,
    /// Support-vector machine on kdda2010.
    Svm,
    /// Linear regression on kddb2010 — the narrow-band outlier of
    /// Figures 10 and 11.
    LinearRegression,
    /// K-means clustering on uscensus1990.
    Kmeans,
    /// Alternating least squares on movielens2015.
    Als,
    /// Correlation statistics on kdda2010 — the other narrow-band outlier.
    Correlation,
    /// PageRank on wdc2012 — the bimodal heavy-tail exemplar of Figure 10.
    PageRank,
    /// Connected components on wdc2012.
    ConnectedComponents,
    /// Triangle counting on wdc2012.
    TriangleCounting,
}

impl Benchmark {
    /// All eleven benchmarks in Table-1 order.
    pub const ALL: [Benchmark; 11] = [
        Benchmark::NaiveBayes,
        Benchmark::DecisionTree,
        Benchmark::GradientBoostedTrees,
        Benchmark::Svm,
        Benchmark::LinearRegression,
        Benchmark::Kmeans,
        Benchmark::Als,
        Benchmark::Correlation,
        Benchmark::PageRank,
        Benchmark::ConnectedComponents,
        Benchmark::TriangleCounting,
    ];

    /// Short name as used in the paper's figures.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::NaiveBayes => "naive",
            Benchmark::DecisionTree => "decision",
            Benchmark::GradientBoostedTrees => "gradient",
            Benchmark::Svm => "svm",
            Benchmark::LinearRegression => "linear",
            Benchmark::Kmeans => "kmeans",
            Benchmark::Als => "als",
            Benchmark::Correlation => "correlation",
            Benchmark::PageRank => "pagerank",
            Benchmark::ConnectedComponents => "cc",
            Benchmark::TriangleCounting => "triangle",
        }
    }

    /// Full benchmark name as listed in Table 1.
    #[must_use]
    pub fn full_name(&self) -> &'static str {
        match self {
            Benchmark::NaiveBayes => "NaiveBayesian",
            Benchmark::DecisionTree => "DecisionTree",
            Benchmark::GradientBoostedTrees => "GradientBoostedTrees",
            Benchmark::Svm => "SVM",
            Benchmark::LinearRegression => "LinearRegression",
            Benchmark::Kmeans => "Kmeans",
            Benchmark::Als => "ALS",
            Benchmark::Correlation => "Correlation",
            Benchmark::PageRank => "PageRank",
            Benchmark::ConnectedComponents => "ConnectedComponents",
            Benchmark::TriangleCounting => "TriangleCounting",
        }
    }

    /// Table-1 category.
    #[must_use]
    pub fn category(&self) -> Category {
        match self {
            Benchmark::NaiveBayes
            | Benchmark::DecisionTree
            | Benchmark::GradientBoostedTrees
            | Benchmark::Svm
            | Benchmark::LinearRegression => Category::Classification,
            Benchmark::Kmeans => Category::Clustering,
            Benchmark::Als => Category::CollaborativeFiltering,
            Benchmark::Correlation => Category::Statistics,
            Benchmark::PageRank | Benchmark::ConnectedComponents | Benchmark::TriangleCounting => {
                Category::GraphProcessing
            }
        }
    }

    /// Table-1 dataset name.
    #[must_use]
    pub fn dataset(&self) -> &'static str {
        match self {
            Benchmark::NaiveBayes
            | Benchmark::DecisionTree
            | Benchmark::Svm
            | Benchmark::Correlation => "kdda2010",
            Benchmark::GradientBoostedTrees | Benchmark::LinearRegression => "kddb2010",
            Benchmark::Kmeans => "uscensus1990",
            Benchmark::Als => "movielens2015",
            Benchmark::PageRank | Benchmark::ConnectedComponents | Benchmark::TriangleCounting => {
                "wdc2012"
            }
        }
    }

    /// Table-1 dataset size in gigabytes.
    #[must_use]
    pub fn data_size_gb(&self) -> f64 {
        match self {
            Benchmark::NaiveBayes
            | Benchmark::DecisionTree
            | Benchmark::Svm
            | Benchmark::Correlation => 2.5,
            Benchmark::GradientBoostedTrees | Benchmark::LinearRegression => 4.8,
            Benchmark::Kmeans => 0.327,
            Benchmark::Als => 0.325,
            Benchmark::PageRank | Benchmark::ConnectedComponents | Benchmark::TriangleCounting => {
                5.3
            }
        }
    }

    /// Dynamic-power activity factor in `(0, 1]`, calibrated to Figure 1's
    /// power panel: compute-bound MLlib codes switch close to full
    /// activity, memory-bound graph codes stall more.
    #[must_use]
    pub fn activity_factor(&self) -> f64 {
        match self {
            Benchmark::NaiveBayes => 0.85,
            Benchmark::DecisionTree => 0.90,
            Benchmark::GradientBoostedTrees => 0.95,
            Benchmark::Svm => 1.00,
            Benchmark::LinearRegression => 0.95,
            Benchmark::Kmeans => 1.00,
            Benchmark::Als => 0.80,
            Benchmark::Correlation => 0.90,
            Benchmark::PageRank => 0.75,
            Benchmark::ConnectedComponents => 0.70,
            Benchmark::TriangleCounting => 0.80,
        }
    }

    /// Per-epoch speedup distribution (sprinting TPS ÷ nominal TPS),
    /// calibrated to Figures 1, 10, and 11. See module docs for targets.
    ///
    /// # Panics
    ///
    /// Never panics for the built-in calibrations (all constructor
    /// arguments are statically valid).
    #[must_use]
    pub fn speedup_distribution(&self) -> Box<dyn ContinuousDistribution> {
        // Helper constructors for the two building blocks. Calibration
        // constants are validated by the unit tests below against the
        // paper's published means and shapes.
        fn tn(mu: f64, sigma: f64, lo: f64, hi: f64) -> Box<dyn ContinuousDistribution> {
            Box::new(TruncatedNormal::new(mu, sigma, lo, hi).expect("static calibration"))
        }
        fn bimodal(
            lo_mode: (f64, f64, f64, f64),
            hi_mode: (f64, f64, f64, f64),
            w_hi: f64,
        ) -> Box<dyn ContinuousDistribution> {
            Box::new(
                Mixture::new(
                    vec![
                        tn(lo_mode.0, lo_mode.1, lo_mode.2, lo_mode.3),
                        tn(hi_mode.0, hi_mode.1, hi_mode.2, hi_mode.3),
                    ],
                    vec![1.0 - w_hi, w_hi],
                )
                .expect("static calibration"),
            )
        }
        match self {
            // Modest mean (~2.2x), moderate spread.
            Benchmark::NaiveBayes => bimodal((1.4, 0.22, 1.0, 2.1), (4.5, 0.70, 2.6, 6.5), 0.25),
            // The representative app: mean ~3x, clear high-gain phases.
            Benchmark::DecisionTree => bimodal((1.8, 0.40, 1.0, 3.0), (5.8, 0.90, 3.5, 8.5), 0.30),
            Benchmark::GradientBoostedTrees => {
                bimodal((2.0, 0.45, 1.0, 3.3), (6.3, 1.00, 4.0, 9.0), 0.35)
            }
            Benchmark::Svm => bimodal((2.4, 0.50, 1.2, 3.8), (6.3, 1.00, 4.0, 9.5), 0.40),
            // Narrow band 3–5x (Figure 10 left): little variance, so the
            // equilibrium strategy sprints every epoch (Figure 11).
            Benchmark::LinearRegression => tn(4.0, 0.45, 3.0, 5.0),
            Benchmark::Kmeans => bimodal((3.0, 0.60, 1.5, 4.6), (7.4, 1.20, 4.8, 11.0), 0.45),
            Benchmark::Als => bimodal((1.7, 0.35, 1.0, 2.8), (5.5, 0.90, 3.2, 8.0), 0.28),
            // The other narrow-band outlier.
            Benchmark::Correlation => tn(4.5, 0.50, 3.2, 5.8),
            // Bimodal heavy tail (Figure 10 right): gains "often exceed
            // 10x".
            Benchmark::PageRank => bimodal((2.0, 0.50, 1.0, 4.0), (12.0, 1.50, 8.0, 16.0), 0.40),
            Benchmark::ConnectedComponents => {
                bimodal((2.2, 0.50, 1.0, 4.2), (10.5, 1.50, 7.0, 14.5), 0.40)
            }
            Benchmark::TriangleCounting => Box::new(
                Mixture::new(
                    vec![
                        tn(2.5, 0.60, 1.2, 4.5),
                        Box::new(LogNormal::new(2.43, 0.16).expect("static calibration")),
                    ],
                    vec![0.55, 0.45],
                )
                .expect("static calibration"),
            ),
        }
    }

    /// Mean sprinting speedup (the Figure 1 speedup bar).
    #[must_use]
    pub fn mean_speedup(&self) -> f64 {
        self.speedup_distribution().mean()
    }

    /// Utility density `f(u)` over per-epoch sprinting speedups,
    /// discretized on `bins` grid points — the input to the game's
    /// Algorithm 1.
    ///
    /// Utility is measured as the sprint's normalized TPS (speedup), the
    /// quantity the paper plots in Figure 10.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::Stats`] when `bins` is 0.
    pub fn utility_density(&self, bins: usize) -> crate::Result<DiscreteDensity> {
        let dist = self.speedup_distribution();
        DiscreteDensity::from_distribution(dist.as_ref(), bins).map_err(WorkloadError::from)
    }

    /// Parse a benchmark from its short or full name, case-insensitively.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Benchmark> {
        let lower = name.to_ascii_lowercase();
        Benchmark::ALL
            .into_iter()
            .find(|b| b.name() == lower || b.full_name().to_ascii_lowercase() == lower)
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_benchmarks_in_table_order() {
        assert_eq!(Benchmark::ALL.len(), 11);
        assert_eq!(Benchmark::ALL[0].full_name(), "NaiveBayesian");
        assert_eq!(Benchmark::ALL[10].full_name(), "TriangleCounting");
    }

    #[test]
    fn table1_metadata_matches_paper() {
        assert_eq!(Benchmark::DecisionTree.dataset(), "kdda2010");
        assert_eq!(Benchmark::DecisionTree.data_size_gb(), 2.5);
        assert_eq!(Benchmark::PageRank.dataset(), "wdc2012");
        assert_eq!(Benchmark::PageRank.data_size_gb(), 5.3);
        assert_eq!(Benchmark::Kmeans.category(), Category::Clustering);
        assert_eq!(Benchmark::Als.category(), Category::CollaborativeFiltering);
        assert_eq!(Benchmark::Correlation.category(), Category::Statistics);
        assert_eq!(
            Benchmark::TriangleCounting.category(),
            Category::GraphProcessing
        );
    }

    #[test]
    fn mean_speedups_span_paper_range() {
        // Figure 1: benchmarks perform 2-7x better when sprinting.
        for b in Benchmark::ALL {
            let mean = b.mean_speedup();
            assert!(
                (1.8..=7.5).contains(&mean),
                "{b}: mean speedup {mean} outside Figure 1's 2-7x range"
            );
        }
    }

    #[test]
    fn graph_workloads_gain_most() {
        // Figure 1's ordering: graph processing shows the largest speedups.
        let pagerank = Benchmark::PageRank.mean_speedup();
        let naive = Benchmark::NaiveBayes.mean_speedup();
        assert!(pagerank > 1.8 * naive);
    }

    #[test]
    fn linear_regression_band_matches_figure10() {
        // "performance gains from sprinting vary in a band between 3x and
        // 5x" (paper §6.3).
        let d = Benchmark::LinearRegression.utility_density(256).unwrap();
        assert!(d.tail_mass(3.0) > 0.99);
        assert!(d.tail_mass(5.0) < 0.01);
        assert!((d.mean() - 4.0).abs() < 0.1);
        // Narrow: standard deviation well under 1x.
        assert!(d.variance().sqrt() < 0.6);
    }

    #[test]
    fn pagerank_is_bimodal_heavy_tailed() {
        // "PageRank's performance gains can often exceed 10x" (§6.3).
        let d = Benchmark::PageRank.utility_density(512).unwrap();
        assert!(d.tail_mass(10.0) > 0.25, "upper mode often exceeds 10x");
        // Bimodal: valley between the modes has much lower density.
        let valley = d.pdf_at(6.0);
        assert!(d.pdf_at(2.0) > 3.0 * valley);
        assert!(d.pdf_at(12.0) > 3.0 * valley);
    }

    #[test]
    fn narrow_band_benchmarks_have_lowest_variance() {
        // Figure 11's outliers sprint always because their profiles are
        // indistinguishable across epochs; their variance must be the
        // smallest of the suite.
        let narrow_var = [Benchmark::LinearRegression, Benchmark::Correlation]
            .iter()
            .map(|b| b.utility_density(256).unwrap().variance())
            .fold(f64::NEG_INFINITY, f64::max);
        for b in Benchmark::ALL {
            if matches!(b, Benchmark::LinearRegression | Benchmark::Correlation) {
                continue;
            }
            let v = b.utility_density(256).unwrap().variance();
            assert!(
                v > narrow_var,
                "{b}: variance {v} should exceed the narrow-band outliers ({narrow_var})"
            );
        }
    }

    #[test]
    fn activity_factors_are_plausible() {
        for b in Benchmark::ALL {
            let a = b.activity_factor();
            assert!((0.5..=1.0).contains(&a), "{b}: activity {a}");
        }
        // Graph codes are memory-bound: lower activity than SVM.
        assert!(
            Benchmark::ConnectedComponents.activity_factor() < Benchmark::Svm.activity_factor()
        );
    }

    #[test]
    fn from_name_round_trips() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::from_name(b.name()), Some(b));
            assert_eq!(Benchmark::from_name(b.full_name()), Some(b));
            assert_eq!(Benchmark::from_name(&b.full_name().to_uppercase()), Some(b));
        }
        assert_eq!(Benchmark::from_name("nosuch"), None);
    }

    #[test]
    fn display_uses_short_names() {
        assert_eq!(Benchmark::PageRank.to_string(), "pagerank");
        assert_eq!(Category::GraphProcessing.to_string(), "Graph Processing");
    }

    #[test]
    fn utility_density_is_normalized() {
        for b in Benchmark::ALL {
            let d = b.utility_density(128).unwrap();
            assert!((d.total_mass() - 1.0).abs() < 1e-6, "{b}");
            assert!(d.lo() >= 0.0, "{b}: speedups cannot be negative");
        }
    }

    #[test]
    fn speedups_exceed_one() {
        // A sprint never slows the workload down: essentially all mass
        // above 1x.
        for b in Benchmark::ALL {
            let d = b.utility_density(256).unwrap();
            assert!(d.tail_mass(1.0) > 0.99, "{b}");
        }
    }
}
