//! Mechanistic Spark-like execution model.
//!
//! Spark applications decompose into jobs, jobs into stages, and stages
//! into tasks that compute in parallel; the run-time engine schedules tasks
//! dynamically onto whatever cores are available (paper §2.3, §5). This
//! module executes a synthetic job → stage → task DAG on a configurable
//! core count and frequency, which is exactly how sprinting helps: a sprint
//! turns on cores (more task slots) and raises frequency (faster tasks).
//!
//! Wide stages (many more tasks than nominal cores) enjoy near-linear
//! speedups from the extra capacity; narrow stages only benefit from the
//! frequency boost — the mechanistic origin of the bimodal utility
//! profiles the statistical model in [`crate::benchmark`] captures.

use rand::Rng;

use crate::WorkloadError;

/// A stage: a set of independent tasks plus a serial (unparallelizable)
/// portion such as scheduling and result aggregation.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    /// Work units per task. One work unit takes `1/f` seconds on a core
    /// clocked at `f` GHz.
    task_work: Vec<f64>,
    /// Serial work units executed on one core before the tasks launch.
    serial_work: f64,
}

impl Stage {
    /// Create a stage.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::EmptyWorkload`] when there are no tasks and
    /// [`WorkloadError::InvalidParameter`] for non-positive task work or
    /// negative serial work.
    pub fn new(task_work: Vec<f64>, serial_work: f64) -> crate::Result<Self> {
        if task_work.is_empty() {
            return Err(WorkloadError::EmptyWorkload { what: "tasks" });
        }
        if task_work.iter().any(|&w| w <= 0.0 || !w.is_finite()) {
            return Err(WorkloadError::InvalidParameter {
                name: "task_work",
                value: f64::NAN,
                expected: "positive finite work units per task",
            });
        }
        if serial_work < 0.0 || !serial_work.is_finite() {
            return Err(WorkloadError::InvalidParameter {
                name: "serial_work",
                value: serial_work,
                expected: "non-negative finite serial work",
            });
        }
        Ok(Stage {
            task_work,
            serial_work,
        })
    }

    /// Create a stage of `n` identical tasks.
    ///
    /// # Errors
    ///
    /// Same as [`Stage::new`].
    pub fn uniform(n: usize, work_per_task: f64, serial_work: f64) -> crate::Result<Self> {
        Stage::new(vec![work_per_task; n], serial_work)
    }

    /// Number of tasks in the stage.
    #[must_use]
    pub fn task_count(&self) -> usize {
        self.task_work.len()
    }

    /// Total work units in the stage (tasks + serial).
    #[must_use]
    pub fn total_work(&self) -> f64 {
        self.task_work.iter().sum::<f64>() + self.serial_work
    }
}

/// A job: a sequence of dependent stages.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    stages: Vec<Stage>,
}

impl Job {
    /// Create a job from its stages.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::EmptyWorkload`] when there are no stages.
    pub fn new(stages: Vec<Stage>) -> crate::Result<Self> {
        if stages.is_empty() {
            return Err(WorkloadError::EmptyWorkload { what: "stages" });
        }
        Ok(Job { stages })
    }

    /// Stages in execution order.
    #[must_use]
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Total number of tasks across stages.
    #[must_use]
    pub fn task_count(&self) -> usize {
        self.stages.iter().map(Stage::task_count).sum()
    }
}

/// A Spark-like application: a sequence of jobs.
#[derive(Debug, Clone, PartialEq)]
pub struct SparkApp {
    jobs: Vec<Job>,
}

impl SparkApp {
    /// Create an application from its jobs.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::EmptyWorkload`] when there are no jobs.
    pub fn new(jobs: Vec<Job>) -> crate::Result<Self> {
        if jobs.is_empty() {
            return Err(WorkloadError::EmptyWorkload { what: "jobs" });
        }
        Ok(SparkApp { jobs })
    }

    /// Jobs in submission order.
    #[must_use]
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Total number of tasks in the application. "The total number of
    /// tasks in a job is constant and independent of the available
    /// hardware resources" (paper §5) — which is why tasks per second
    /// measures a fixed amount of work.
    #[must_use]
    pub fn task_count(&self) -> usize {
        self.jobs.iter().map(Job::task_count).sum()
    }

    /// Generate a synthetic application with a controlled mix of wide and
    /// narrow stages and log-uniform task durations.
    ///
    /// Shorthand for [`SparkApp::synthetic_with_skew`] with
    /// [`TaskSkew::LogUniform`].
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] for zero sizes or a
    /// `wide_fraction` outside `[0, 1]`.
    pub fn synthetic<R: Rng + ?Sized>(
        n_jobs: usize,
        stages_per_job: usize,
        wide_fraction: f64,
        wide_tasks: usize,
        narrow_tasks: usize,
        rng: &mut R,
    ) -> crate::Result<Self> {
        SparkApp::synthetic_with_skew(
            n_jobs,
            stages_per_job,
            wide_fraction,
            wide_tasks,
            narrow_tasks,
            TaskSkew::LogUniform,
            rng,
        )
    }

    /// Generate a synthetic application with a controlled mix of wide and
    /// narrow stages and a chosen task-duration skew.
    ///
    /// `wide_fraction` of stages carry `wide_tasks` tasks (far more than
    /// the nominal core count, so they scale onto sprint cores); the rest
    /// carry `narrow_tasks` (at most the nominal core count, so they only
    /// enjoy the frequency boost).
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] for zero sizes or a
    /// `wide_fraction` outside `[0, 1]`.
    pub fn synthetic_with_skew<R: Rng + ?Sized>(
        n_jobs: usize,
        stages_per_job: usize,
        wide_fraction: f64,
        wide_tasks: usize,
        narrow_tasks: usize,
        skew: TaskSkew,
        rng: &mut R,
    ) -> crate::Result<Self> {
        if n_jobs == 0 || stages_per_job == 0 || wide_tasks == 0 || narrow_tasks == 0 {
            return Err(WorkloadError::InvalidParameter {
                name: "n_jobs",
                value: 0.0,
                expected: "positive job, stage, and task counts",
            });
        }
        if !(0.0..=1.0).contains(&wide_fraction) {
            return Err(WorkloadError::InvalidParameter {
                name: "wide_fraction",
                value: wide_fraction,
                expected: "a fraction in [0, 1]",
            });
        }
        let mut jobs = Vec::with_capacity(n_jobs);
        for _ in 0..n_jobs {
            let mut stages = Vec::with_capacity(stages_per_job);
            for _ in 0..stages_per_job {
                let wide = rng.gen::<f64>() < wide_fraction;
                let n_tasks = if wide { wide_tasks } else { narrow_tasks };
                let tasks: Vec<f64> = (0..n_tasks).map(|_| skew.sample(rng)).collect();
                let serial = STAGE_SERIAL_SHARE * tasks.iter().sum::<f64>();
                stages.push(Stage::new(tasks, serial)?);
            }
            jobs.push(Job::new(stages)?);
        }
        SparkApp::new(jobs)
    }
}

/// Serial (scheduling/aggregation) work per stage as a share of the
/// stage's parallel task work. Runs on one core before the tasks launch.
pub const STAGE_SERIAL_SHARE: f64 = 0.02;

/// Distribution of per-task work units within a stage.
///
/// Classification/clustering workloads have fairly regular tasks;
/// graph workloads (power-law degree distributions) produce *stragglers*
/// — a heavy upper tail of task durations that the dynamic scheduler must
/// absorb.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TaskSkew {
    /// Log-uniform in `[0.5, 2.0]` work units (regular MLlib tasks).
    #[default]
    LogUniform,
    /// Bounded Pareto with shape 1.3 on `[0.5, 3.5]` work units
    /// (graph-processing stragglers). The upper bound keeps a single
    /// straggler from dominating a wide stage's sprint makespan — an
    /// unbounded tail caps wide-stage scaling near 6-7x regardless of
    /// core count, below the calibrated graph speedups.
    ParetoTail,
}

impl TaskSkew {
    /// Draw one task's work units.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        match self {
            TaskSkew::LogUniform => 0.5 * 4.0f64.powf(u),
            TaskSkew::ParetoTail => {
                // Inverse-CDF of a bounded Pareto(alpha) on [lo, hi].
                const ALPHA: f64 = 1.3;
                const LO: f64 = 0.5;
                const HI: f64 = 3.5;
                let lo_a = LO.powf(-ALPHA);
                let hi_a = HI.powf(-ALPHA);
                (lo_a - u * (lo_a - hi_a)).powf(-1.0 / ALPHA)
            }
        }
    }
}

/// Build a synthetic application whose stage mix reproduces a calibrated
/// benchmark's mean sprint speedup *mechanistically*.
///
/// Wide stages (enough tasks to fill every sprint core) speed up by the
/// stage-level Amdahl ratio — ≈7.7× with the 2 % per-stage serial share —
/// while narrow stages (at most the nominal core count) only get the
/// frequency ratio 2.25×. The mix of the two is inverted from the
/// benchmark's Figure-1 mean speedup; graph workloads additionally use
/// straggler-skewed task durations ([`TaskSkew::ParetoTail`]). The unit
/// test cross-validates the mechanistic and statistical workload models
/// against each other.
///
/// # Errors
///
/// Returns [`WorkloadError::InvalidParameter`] when `n_jobs` is 0.
pub fn benchmark_app<R: Rng + ?Sized>(
    benchmark: crate::benchmark::Benchmark,
    n_jobs: usize,
    rng: &mut R,
) -> crate::Result<SparkApp> {
    const FREQ_RATIO: f64 = 2.25; // 2.7 GHz / 1.2 GHz
    const NOMINAL_CORES: f64 = 3.0;
    const SPRINT_CORES: f64 = 12.0;
    // Stage-level Amdahl: a stage with serial share sigma (relative to its
    // parallel work) and enough tasks to fill every core speeds up by
    //   s = FREQ_RATIO * (sigma + 1/c_nominal) / (sigma + 1/c_sprint).
    let sigma = STAGE_SERIAL_SHARE;
    let s_wide = FREQ_RATIO * (sigma + 1.0 / NOMINAL_CORES) / (sigma + 1.0 / SPRINT_CORES);
    let s_narrow = FREQ_RATIO; // narrow stages use the same cores either way
    let target = benchmark
        .mean_speedup()
        .clamp(s_narrow + 0.05, s_wide - 0.05);
    // Work fraction f in wide stages: 1/S = f/s_wide + (1-f)/s_narrow.
    let wide_work_fraction =
        ((1.0 / s_narrow - 1.0 / target) / (1.0 / s_narrow - 1.0 / s_wide)).clamp(0.0, 1.0);
    // Wide stages carry 96 tasks vs 3 in narrow ones (32x the work per
    // stage), so convert the work fraction to a stage-count fraction. The
    // high task count keeps LPT imbalance negligible even under skew.
    const WORK_RATIO: f64 = 96.0 / 3.0;
    let wide_stage_fraction =
        wide_work_fraction / (wide_work_fraction + WORK_RATIO * (1.0 - wide_work_fraction));
    // Graph workloads exhibit straggler tasks (power-law degrees).
    let skew = if benchmark.category() == crate::benchmark::Category::GraphProcessing {
        TaskSkew::ParetoTail
    } else {
        TaskSkew::LogUniform
    };
    SparkApp::synthetic_with_skew(n_jobs, 8, wide_stage_fraction, 96, 3, skew, rng)
}

/// Executor resources: core count and clock frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutorConfig {
    cores: u32,
    frequency_ghz: f64,
}

impl ExecutorConfig {
    /// Create an executor configuration.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] for zero cores or
    /// non-positive frequency.
    pub fn new(cores: u32, frequency_ghz: f64) -> crate::Result<Self> {
        if cores == 0 {
            return Err(WorkloadError::InvalidParameter {
                name: "cores",
                value: 0.0,
                expected: "at least one core",
            });
        }
        if frequency_ghz <= 0.0 || !frequency_ghz.is_finite() {
            return Err(WorkloadError::InvalidParameter {
                name: "frequency_ghz",
                value: frequency_ghz,
                expected: "a positive finite frequency",
            });
        }
        Ok(ExecutorConfig {
            cores,
            frequency_ghz,
        })
    }

    /// The paper's nominal mode: 3 cores at 1.2 GHz.
    #[must_use]
    pub fn paper_nominal() -> Self {
        ExecutorConfig {
            cores: 3,
            frequency_ghz: 1.2,
        }
    }

    /// The paper's sprint mode: 12 cores at 2.7 GHz.
    #[must_use]
    pub fn paper_sprint() -> Self {
        ExecutorConfig {
            cores: 12,
            frequency_ghz: 2.7,
        }
    }

    /// Core count.
    #[must_use]
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// Clock frequency, GHz.
    #[must_use]
    pub fn frequency_ghz(&self) -> f64 {
        self.frequency_ghz
    }
}

/// Result of executing an application on an executor configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Execution {
    /// Wall-clock completion time of each task, seconds, sorted ascending.
    task_completions: Vec<f64>,
    /// End-to-end wall-clock time, seconds.
    total_time_s: f64,
}

impl Execution {
    /// Completion times of all tasks, sorted ascending.
    #[must_use]
    pub fn task_completions(&self) -> &[f64] {
        &self.task_completions
    }

    /// End-to-end wall-clock time, seconds.
    #[must_use]
    pub fn total_time_s(&self) -> f64 {
        self.total_time_s
    }

    /// Mean tasks per second over the whole run.
    #[must_use]
    pub fn mean_tps(&self) -> f64 {
        self.task_completions.len() as f64 / self.total_time_s
    }
}

/// Execute `app` on `config` with dynamic (LPT list) task scheduling,
/// returning per-task completion times.
///
/// Stages run in order; within a stage, tasks are assigned longest-first to
/// the earliest-available core — the standard greedy approximation of the
/// dynamic scheduling the Spark engine performs.
#[must_use]
pub fn execute(app: &SparkApp, config: ExecutorConfig) -> Execution {
    let f = config.frequency_ghz;
    let cores = config.cores as usize;
    let mut now = 0.0f64;
    let mut completions = Vec::with_capacity(app.task_count());

    for job in app.jobs() {
        for stage in job.stages() {
            // Serial portion runs on one core.
            now += stage.serial_work / f;
            // LPT list scheduling of the parallel tasks.
            let mut work: Vec<f64> = stage.task_work.clone();
            work.sort_by(|a, b| b.partial_cmp(a).expect("finite work"));
            let mut core_free = vec![now; cores];
            for w in work {
                // Earliest-available core.
                let (idx, _) = core_free
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite times"))
                    .expect("at least one core");
                let finish = core_free[idx] + w / f;
                core_free[idx] = finish;
                completions.push(finish);
            }
            // Stage barrier: next stage starts when all tasks finish.
            now = core_free
                .iter()
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max)
                .max(now);
        }
    }
    completions.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    Execution {
        task_completions: completions,
        total_time_s: now,
    }
}

/// End-to-end speedup of `sprint` over `nominal` for the same application.
#[must_use]
pub fn end_to_end_speedup(nominal: &Execution, sprint: &Execution) -> f64 {
    nominal.total_time_s / sprint.total_time_s
}

#[cfg(test)]
mod tests {
    use super::*;
    use sprint_stats::rng::seeded_rng;

    fn wide_app() -> SparkApp {
        // 4 jobs x 3 wide stages of 48 equal tasks.
        let jobs = (0..4)
            .map(|_| {
                Job::new(
                    (0..3)
                        .map(|_| Stage::uniform(48, 1.0, 0.0).unwrap())
                        .collect(),
                )
                .unwrap()
            })
            .collect();
        SparkApp::new(jobs).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(Stage::new(vec![], 0.0).is_err());
        assert!(Stage::new(vec![0.0], 0.0).is_err());
        assert!(Stage::new(vec![1.0], -1.0).is_err());
        assert!(Job::new(vec![]).is_err());
        assert!(SparkApp::new(vec![]).is_err());
        assert!(ExecutorConfig::new(0, 1.0).is_err());
        assert!(ExecutorConfig::new(3, 0.0).is_err());
    }

    #[test]
    fn task_count_is_resource_independent() {
        let app = wide_app();
        assert_eq!(app.task_count(), 4 * 3 * 48);
        let nom = execute(&app, ExecutorConfig::paper_nominal());
        let spr = execute(&app, ExecutorConfig::paper_sprint());
        assert_eq!(nom.task_completions().len(), app.task_count());
        assert_eq!(spr.task_completions().len(), app.task_count());
    }

    #[test]
    fn wide_stages_scale_with_cores_and_frequency() {
        let app = wide_app();
        let nom = execute(&app, ExecutorConfig::paper_nominal());
        let spr = execute(&app, ExecutorConfig::paper_sprint());
        let speedup = end_to_end_speedup(&nom, &spr);
        // Perfectly parallel equal tasks: capacity ratio is
        // (12*2.7)/(3*1.2) = 9.
        assert!(
            (8.0..=9.2).contains(&speedup),
            "wide-stage speedup {speedup}"
        );
    }

    #[test]
    fn narrow_stages_only_get_frequency_boost() {
        // 3 tasks per stage: nominal already has 3 cores, so extra sprint
        // cores are useless and speedup collapses to 2.7/1.2 = 2.25.
        let stage = || Stage::uniform(3, 1.0, 0.0).unwrap();
        let app = SparkApp::new(vec![Job::new(vec![stage(), stage()]).unwrap()]).unwrap();
        let nom = execute(&app, ExecutorConfig::paper_nominal());
        let spr = execute(&app, ExecutorConfig::paper_sprint());
        let speedup = end_to_end_speedup(&nom, &spr);
        assert!(
            (speedup - 2.25).abs() < 0.01,
            "narrow-stage speedup {speedup}"
        );
    }

    #[test]
    fn serial_work_caps_speedup() {
        // Amdahl: heavy serial portions pull the speedup below the
        // parallel capacity ratio.
        let stage = Stage::new(vec![1.0; 48], 24.0).unwrap();
        let app = SparkApp::new(vec![Job::new(vec![stage]).unwrap()]).unwrap();
        let nom = execute(&app, ExecutorConfig::paper_nominal());
        let spr = execute(&app, ExecutorConfig::paper_sprint());
        let speedup = end_to_end_speedup(&nom, &spr);
        assert!(speedup < 5.0, "Amdahl-limited speedup {speedup}");
        assert!(speedup > 2.25, "still beats frequency-only");
    }

    #[test]
    fn completions_are_sorted_and_bounded() {
        let app = wide_app();
        let e = execute(&app, ExecutorConfig::paper_nominal());
        let c = e.task_completions();
        assert!(c.windows(2).all(|w| w[0] <= w[1]));
        assert!(c.last().unwrap() <= &e.total_time_s());
        assert!(e.mean_tps() > 0.0);
    }

    #[test]
    fn lpt_beats_naive_ordering_bound() {
        // LPT guarantees makespan <= (4/3 - 1/3m) * OPT; sanity-check the
        // schedule against the trivial lower bound max(total/m, max task).
        let mut rng = seeded_rng(9);
        let tasks: Vec<f64> = (0..40).map(|_| 0.5 + 2.0 * rng.gen::<f64>()).collect();
        let total: f64 = tasks.iter().sum();
        let longest = tasks.iter().cloned().fold(0.0, f64::max);
        let app = SparkApp::new(vec![
            Job::new(vec![Stage::new(tasks, 0.0).unwrap()]).unwrap()
        ])
        .unwrap();
        let cfg = ExecutorConfig::new(4, 1.0).unwrap();
        let e = execute(&app, cfg);
        let lower = (total / 4.0).max(longest);
        assert!(e.total_time_s() >= lower - 1e-9);
        assert!(e.total_time_s() <= lower * (4.0 / 3.0) + 1e-9);
    }

    #[test]
    fn synthetic_apps_mix_wide_and_narrow() {
        let mut rng = seeded_rng(10);
        let app = SparkApp::synthetic(10, 6, 0.4, 48, 3, &mut rng).unwrap();
        let widths: Vec<usize> = app
            .jobs()
            .iter()
            .flat_map(|j| j.stages().iter().map(Stage::task_count))
            .collect();
        let wide = widths.iter().filter(|&&w| w == 48).count();
        let frac = wide as f64 / widths.len() as f64;
        assert!((frac - 0.4).abs() < 0.15, "wide fraction {frac}");
    }

    #[test]
    fn synthetic_validates() {
        let mut rng = seeded_rng(1);
        assert!(SparkApp::synthetic(0, 1, 0.5, 10, 3, &mut rng).is_err());
        assert!(SparkApp::synthetic(1, 1, 1.5, 10, 3, &mut rng).is_err());
    }

    #[test]
    fn benchmark_apps_cross_validate_the_two_workload_models() {
        // The mechanistic DAG model and the calibrated statistical model
        // must agree on each benchmark's mean sprint speedup.
        use crate::benchmark::Benchmark;
        let mut rng = seeded_rng(77);
        for b in [
            Benchmark::NaiveBayes,
            Benchmark::DecisionTree,
            Benchmark::Kmeans,
            Benchmark::TriangleCounting,
        ] {
            let app = benchmark_app(b, 30, &mut rng).unwrap();
            let nom = execute(&app, ExecutorConfig::paper_nominal());
            let spr = execute(&app, ExecutorConfig::paper_sprint());
            let mechanistic = end_to_end_speedup(&nom, &spr);
            let statistical = b.mean_speedup().clamp(2.3, 8.0);
            let rel = (mechanistic - statistical).abs() / statistical;
            assert!(
                rel < 0.2,
                "{b}: mechanistic {mechanistic:.2} vs statistical {statistical:.2}"
            );
        }
    }

    #[test]
    fn pareto_tail_produces_stragglers() {
        let mut rng = seeded_rng(15);
        let regular: Vec<f64> = (0..10_000)
            .map(|_| TaskSkew::LogUniform.sample(&mut rng))
            .collect();
        let skewed: Vec<f64> = (0..10_000)
            .map(|_| TaskSkew::ParetoTail.sample(&mut rng))
            .collect();
        let max_regular = regular.iter().cloned().fold(0.0, f64::max);
        let max_skewed = skewed.iter().cloned().fold(0.0, f64::max);
        assert!(max_regular <= 2.0 + 1e-9);
        assert!(max_skewed > 2.5, "pareto tail reaches {max_skewed}");
        // Bounded support.
        assert!(skewed.iter().all(|&w| (0.5..=3.5).contains(&w)));
        // Coefficient of variation clearly higher under the Pareto tail.
        let cv = |v: &[f64]| {
            let m = v.iter().sum::<f64>() / v.len() as f64;
            (v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / v.len() as f64).sqrt() / m
        };
        assert!(cv(&skewed) > 1.2 * cv(&regular));
    }

    #[test]
    fn stragglers_still_execute_correctly() {
        // LPT scheduling absorbs skew: the schedule respects the lower
        // bound and completes every task.
        let mut rng = seeded_rng(16);
        let app = SparkApp::synthetic_with_skew(5, 4, 0.5, 48, 3, TaskSkew::ParetoTail, &mut rng)
            .unwrap();
        let e = execute(&app, ExecutorConfig::paper_sprint());
        assert_eq!(e.task_completions().len(), app.task_count());
        assert!(e.total_time_s() > 0.0);
    }

    #[test]
    fn benchmark_app_validates() {
        use crate::benchmark::Benchmark;
        let mut rng = seeded_rng(1);
        assert!(benchmark_app(Benchmark::Svm, 0, &mut rng).is_err());
        assert!(benchmark_app(Benchmark::Svm, 3, &mut rng).is_ok());
    }

    #[test]
    fn stage_totals() {
        let s = Stage::new(vec![1.0, 2.0], 0.5).unwrap();
        assert_eq!(s.task_count(), 2);
        assert!((s.total_work() - 3.5).abs() < 1e-12);
    }
}
