//! Property-based tests for the workload substrate.

use proptest::prelude::*;

use sprint_stats::rng::seeded_rng;
use sprint_workloads::phases::PhasedUtility;
use sprint_workloads::spark::{
    end_to_end_speedup, execute, ExecutorConfig, SparkApp, Stage, TaskSkew,
};
use sprint_workloads::trace::{epoch_speedups, TpsTrace};
use sprint_workloads::Benchmark;

fn arb_benchmark() -> impl Strategy<Value = Benchmark> {
    prop::sample::select(Benchmark::ALL.to_vec())
}

proptest! {
    #[test]
    fn lpt_respects_makespan_bounds(
        tasks in prop::collection::vec(0.1f64..10.0, 1..80),
        cores in 1u32..16,
    ) {
        // LPT makespan lies between the trivial lower bound and the
        // list-scheduling upper bound `total/m + (1 − 1/m)·longest`
        // (Graham), both valid for any work-conserving schedule.
        let total: f64 = tasks.iter().sum();
        let longest = tasks.iter().cloned().fold(0.0, f64::max);
        let app = SparkApp::new(vec![
            sprint_workloads::spark::Job::new(vec![Stage::new(tasks, 0.0).unwrap()]).unwrap(),
        ])
        .unwrap();
        let cfg = ExecutorConfig::new(cores, 1.0).unwrap();
        let e = execute(&app, cfg);
        let m = f64::from(cores);
        let lower = (total / m).max(longest);
        let upper = total / m + (1.0 - 1.0 / m) * longest;
        prop_assert!(e.total_time_s() >= lower - 1e-9);
        prop_assert!(e.total_time_s() <= upper + 1e-9);
    }

    #[test]
    fn sprinting_never_slows_an_app(
        seed in 0u64..500,
        wide_fraction in 0.0f64..=1.0,
    ) {
        let mut rng = seeded_rng(seed);
        let app = SparkApp::synthetic(4, 3, wide_fraction, 24, 3, &mut rng).unwrap();
        let nom = execute(&app, ExecutorConfig::paper_nominal());
        let spr = execute(&app, ExecutorConfig::paper_sprint());
        let s = end_to_end_speedup(&nom, &spr);
        // Bounded by frequency-only below and capacity ratio above.
        prop_assert!(s >= 2.25 - 1e-9, "speedup {s}");
        prop_assert!(s <= 9.0 + 1e-9, "speedup {s}");
    }

    #[test]
    fn task_skew_samples_stay_in_support(seed in 0u64..500) {
        let mut rng = seeded_rng(seed);
        for _ in 0..32 {
            let lu = TaskSkew::LogUniform.sample(&mut rng);
            prop_assert!((0.5..=2.0).contains(&lu));
            let pt = TaskSkew::ParetoTail.sample(&mut rng);
            prop_assert!((0.5..=3.5).contains(&pt));
        }
    }

    #[test]
    fn phased_streams_stay_in_benchmark_support(
        b in arb_benchmark(),
        seed in 0u64..500,
    ) {
        let density = b.utility_density(128).unwrap();
        let mut s = PhasedUtility::for_benchmark(b, seed).unwrap();
        for _ in 0..64 {
            let u = s.next_utility();
            prop_assert!(u >= density.lo() - 1e-9 && u <= density.hi() + 1e-9);
        }
    }

    #[test]
    fn trace_conserves_tasks(
        gaps in prop::collection::vec(0.01f64..5.0, 1..80),
        bucket in 0.1f64..4.0,
    ) {
        let mut t = 0.0;
        let completions: Vec<f64> = gaps
            .iter()
            .map(|g| {
                t += g;
                t
            })
            .collect();
        let trace = TpsTrace::from_completions(&completions, bucket).unwrap();
        prop_assert_eq!(trace.total_tasks(), completions.len() as u64);
        let sum: u64 = trace.counts().iter().map(|&c| u64::from(c)).sum();
        prop_assert_eq!(sum, completions.len() as u64);
    }

    #[test]
    fn epoch_speedups_bounded_and_aligned(
        gaps in prop::collection::vec(0.05f64..2.0, 4..120),
        ratio in 1.0f64..8.0,
        epoch in 1.0f64..20.0,
    ) {
        // Sprint completes the same tasks `ratio` times faster.
        let mut t = 0.0;
        let normal: Vec<f64> = gaps
            .iter()
            .map(|g| {
                t += g;
                t
            })
            .collect();
        let sprint: Vec<f64> = normal.iter().map(|x| x / ratio).collect();
        let s = epoch_speedups(&normal, &sprint, epoch).unwrap();
        prop_assert!(!s.is_empty());
        for v in &s {
            prop_assert!(*v >= 1.0 - 1e-9);
            // Work-aligned comparison can never exceed the true ratio by
            // more than discretization slack.
            prop_assert!(*v <= ratio + 1e-6, "epoch speedup {v} vs ratio {ratio}");
        }
    }

    #[test]
    fn benchmark_densities_have_documented_shape(b in arb_benchmark()) {
        let d = b.utility_density(128).unwrap();
        prop_assert!((d.total_mass() - 1.0).abs() < 1e-6);
        prop_assert!(d.lo() >= 0.0);
        prop_assert!(d.mean() >= 1.8 && d.mean() <= 7.5);
        // Speedups essentially never below 1.
        prop_assert!(d.tail_mass(1.0) > 0.99);
    }
}
