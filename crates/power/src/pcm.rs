//! Phase-change materials for sprinting heat sinks.
//!
//! Paper §2.1: expensive heat sinks employ phase change materials to
//! increase thermal capacitance; the paper's architecture uses paraffin
//! wax, "attractive for its high thermal capacitance and tunable melting
//! point when blended with polyolefins", enabling sprints on the order of
//! 150 seconds with ~300 second cooling.

use crate::PowerError;

/// Bulk properties of a phase-change material.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseChangeMaterial {
    name: String,
    melt_point_c: f64,
    latent_heat_j_per_kg: f64,
    specific_heat_j_per_kg_k: f64,
}

impl PhaseChangeMaterial {
    /// Create a material.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] for non-positive latent or
    /// specific heat, or a non-finite melting point.
    pub fn new(
        name: impl Into<String>,
        melt_point_c: f64,
        latent_heat_j_per_kg: f64,
        specific_heat_j_per_kg_k: f64,
    ) -> crate::Result<Self> {
        if !melt_point_c.is_finite() {
            return Err(PowerError::InvalidParameter {
                name: "melt_point_c",
                value: melt_point_c,
                expected: "a finite melting point in °C",
            });
        }
        if latent_heat_j_per_kg <= 0.0 || !latent_heat_j_per_kg.is_finite() {
            return Err(PowerError::InvalidParameter {
                name: "latent_heat_j_per_kg",
                value: latent_heat_j_per_kg,
                expected: "a positive finite latent heat",
            });
        }
        if specific_heat_j_per_kg_k <= 0.0 || !specific_heat_j_per_kg_k.is_finite() {
            return Err(PowerError::InvalidParameter {
                name: "specific_heat_j_per_kg_k",
                value: specific_heat_j_per_kg_k,
                expected: "a positive finite specific heat",
            });
        }
        Ok(PhaseChangeMaterial {
            name: name.into(),
            melt_point_c,
            latent_heat_j_per_kg,
            specific_heat_j_per_kg_k,
        })
    }

    /// Paraffin wax blended with polyolefins, melting point tuned to 45 °C
    /// (tunable when blended with polyolefins, per the paper's PCM
    /// reference); latent heat ≈ 200 kJ/kg.
    #[must_use]
    pub fn paraffin_wax() -> Self {
        PhaseChangeMaterial::new("paraffin wax (polyolefin blend)", 45.0, 200_000.0, 2_500.0)
            .expect("valid paraffin constants")
    }

    /// Material name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Melting point in °C.
    #[must_use]
    pub fn melt_point_c(&self) -> f64 {
        self.melt_point_c
    }

    /// Latent heat of fusion in J/kg.
    #[must_use]
    pub fn latent_heat_j_per_kg(&self) -> f64 {
        self.latent_heat_j_per_kg
    }

    /// Specific heat in J/(kg·K).
    #[must_use]
    pub fn specific_heat_j_per_kg_k(&self) -> f64 {
        self.specific_heat_j_per_kg_k
    }
}

/// A heat sink charged with a specific mass of PCM.
#[derive(Debug, Clone, PartialEq)]
pub struct PcmHeatSink {
    material: PhaseChangeMaterial,
    mass_kg: f64,
}

impl PcmHeatSink {
    /// Create a heat sink with `mass_kg` of `material`.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] for non-positive mass.
    pub fn new(material: PhaseChangeMaterial, mass_kg: f64) -> crate::Result<Self> {
        if mass_kg <= 0.0 || !mass_kg.is_finite() {
            return Err(PowerError::InvalidParameter {
                name: "mass_kg",
                value: mass_kg,
                expected: "a positive finite mass in kg",
            });
        }
        Ok(PcmHeatSink { material, mass_kg })
    }

    /// The paper-calibrated sink: 37 g of paraffin wax, sized so a
    /// sprinting chip melts it in ≈ 150 s.
    #[must_use]
    pub fn paper_sink() -> Self {
        PcmHeatSink::new(PhaseChangeMaterial::paraffin_wax(), 0.037).expect("valid mass")
    }

    /// The material in this sink.
    #[must_use]
    pub fn material(&self) -> &PhaseChangeMaterial {
        &self.material
    }

    /// PCM mass in kg.
    #[must_use]
    pub fn mass_kg(&self) -> f64 {
        self.mass_kg
    }

    /// Total latent-heat budget in joules: energy absorbed between fully
    /// solid and fully molten.
    #[must_use]
    pub fn latent_budget_j(&self) -> f64 {
        self.mass_kg * self.material.latent_heat_j_per_kg
    }

    /// Sensible heat capacitance of the charge in J/K.
    #[must_use]
    pub fn sensible_capacitance_j_per_k(&self) -> f64 {
        self.mass_kg * self.material.specific_heat_j_per_kg_k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn material_validation() {
        assert!(PhaseChangeMaterial::new("x", f64::NAN, 1.0, 1.0).is_err());
        assert!(PhaseChangeMaterial::new("x", 45.0, 0.0, 1.0).is_err());
        assert!(PhaseChangeMaterial::new("x", 45.0, 1.0, -1.0).is_err());
    }

    #[test]
    fn paraffin_constants() {
        let wax = PhaseChangeMaterial::paraffin_wax();
        assert_eq!(wax.melt_point_c(), 45.0);
        assert_eq!(wax.latent_heat_j_per_kg(), 200_000.0);
        assert!(wax.name().contains("paraffin"));
    }

    #[test]
    fn sink_budgets() {
        let sink = PcmHeatSink::paper_sink();
        // 37 g at 200 kJ/kg = 7.4 kJ of latent budget.
        assert!((sink.latent_budget_j() - 7_400.0).abs() < 1.0);
        assert!((sink.sensible_capacitance_j_per_k() - 92.5).abs() < 0.1);
    }

    #[test]
    fn sink_rejects_bad_mass() {
        let wax = PhaseChangeMaterial::paraffin_wax();
        assert!(PcmHeatSink::new(wax.clone(), 0.0).is_err());
        assert!(PcmHeatSink::new(wax, -0.1).is_err());
    }
}
