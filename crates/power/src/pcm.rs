//! Phase-change materials for sprinting heat sinks.
//!
//! Paper §2.1: expensive heat sinks employ phase change materials to
//! increase thermal capacitance; the paper's architecture uses paraffin
//! wax, "attractive for its high thermal capacitance and tunable melting
//! point when blended with polyolefins", enabling sprints on the order of
//! 150 seconds with ~300 second cooling.

use crate::PowerError;

/// Bulk properties of a phase-change material.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseChangeMaterial {
    name: String,
    melt_point_c: f64,
    latent_heat_j_per_kg: f64,
    specific_heat_j_per_kg_k: f64,
}

impl PhaseChangeMaterial {
    /// Create a material.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] for non-positive latent or
    /// specific heat, or a non-finite melting point.
    pub fn new(
        name: impl Into<String>,
        melt_point_c: f64,
        latent_heat_j_per_kg: f64,
        specific_heat_j_per_kg_k: f64,
    ) -> crate::Result<Self> {
        if !melt_point_c.is_finite() {
            return Err(PowerError::InvalidParameter {
                name: "melt_point_c",
                value: melt_point_c,
                expected: "a finite melting point in °C",
            });
        }
        if latent_heat_j_per_kg <= 0.0 || !latent_heat_j_per_kg.is_finite() {
            return Err(PowerError::InvalidParameter {
                name: "latent_heat_j_per_kg",
                value: latent_heat_j_per_kg,
                expected: "a positive finite latent heat",
            });
        }
        if specific_heat_j_per_kg_k <= 0.0 || !specific_heat_j_per_kg_k.is_finite() {
            return Err(PowerError::InvalidParameter {
                name: "specific_heat_j_per_kg_k",
                value: specific_heat_j_per_kg_k,
                expected: "a positive finite specific heat",
            });
        }
        Ok(PhaseChangeMaterial {
            name: name.into(),
            melt_point_c,
            latent_heat_j_per_kg,
            specific_heat_j_per_kg_k,
        })
    }

    /// Paraffin wax blended with polyolefins, melting point tuned to 45 °C
    /// (tunable when blended with polyolefins, per the paper's PCM
    /// reference); latent heat ≈ 200 kJ/kg.
    #[must_use]
    pub fn paraffin_wax() -> Self {
        PhaseChangeMaterial::new("paraffin wax (polyolefin blend)", 45.0, 200_000.0, 2_500.0)
            .expect("valid paraffin constants")
    }

    /// Material name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Melting point in °C.
    #[must_use]
    pub fn melt_point_c(&self) -> f64 {
        self.melt_point_c
    }

    /// Latent heat of fusion in J/kg.
    #[must_use]
    pub fn latent_heat_j_per_kg(&self) -> f64 {
        self.latent_heat_j_per_kg
    }

    /// Specific heat in J/(kg·K).
    #[must_use]
    pub fn specific_heat_j_per_kg_k(&self) -> f64 {
        self.specific_heat_j_per_kg_k
    }
}

/// A heat sink charged with a specific mass of PCM.
#[derive(Debug, Clone, PartialEq)]
pub struct PcmHeatSink {
    material: PhaseChangeMaterial,
    mass_kg: f64,
}

impl PcmHeatSink {
    /// Create a heat sink with `mass_kg` of `material`.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] for non-positive mass.
    pub fn new(material: PhaseChangeMaterial, mass_kg: f64) -> crate::Result<Self> {
        if mass_kg <= 0.0 || !mass_kg.is_finite() {
            return Err(PowerError::InvalidParameter {
                name: "mass_kg",
                value: mass_kg,
                expected: "a positive finite mass in kg",
            });
        }
        Ok(PcmHeatSink { material, mass_kg })
    }

    /// The paper-calibrated sink: 37 g of paraffin wax, sized so a
    /// sprinting chip melts it in ≈ 150 s.
    #[must_use]
    pub fn paper_sink() -> Self {
        PcmHeatSink::new(PhaseChangeMaterial::paraffin_wax(), 0.037).expect("valid mass")
    }

    /// The material in this sink.
    #[must_use]
    pub fn material(&self) -> &PhaseChangeMaterial {
        &self.material
    }

    /// PCM mass in kg.
    #[must_use]
    pub fn mass_kg(&self) -> f64 {
        self.mass_kg
    }

    /// Total latent-heat budget in joules: energy absorbed between fully
    /// solid and fully molten.
    #[must_use]
    pub fn latent_budget_j(&self) -> f64 {
        self.mass_kg * self.material.latent_heat_j_per_kg
    }

    /// Sensible heat capacitance of the charge in J/K.
    #[must_use]
    pub fn sensible_capacitance_j_per_k(&self) -> f64 {
        self.mass_kg * self.material.specific_heat_j_per_kg_k
    }
}

/// One reading from a [`CurrentSensor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorReading {
    /// The value the monitoring chain reports downstream.
    pub value: f64,
    /// Whether the sensor dropped out and held its last good reading.
    pub dropped: bool,
}

/// A panel current sensor with multiplicative noise and dropout.
///
/// The rack's power-monitoring chain reports the aggregate current the
/// breaker is stressed by. A real sensor is imperfect: readings carry
/// relative Gaussian noise, and the sensor occasionally drops out, holding
/// its last good value (a stale reading, not a zero). The simulator feeds
/// this model *pre-drawn* randomness — a standard-normal draw and a
/// uniform dropout draw — so this crate stays free of RNG dependencies
/// and the caller controls reproducibility.
#[derive(Debug, Clone, PartialEq)]
pub struct CurrentSensor {
    relative_sd: f64,
    dropout_probability: f64,
    last_good: f64,
}

impl CurrentSensor {
    /// Create a sensor with the given noise level and dropout rate.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] for a negative or
    /// non-finite noise level, or a dropout probability outside `[0, 1]`.
    pub fn new(relative_sd: f64, dropout_probability: f64) -> crate::Result<Self> {
        if relative_sd < 0.0 || !relative_sd.is_finite() {
            return Err(PowerError::InvalidParameter {
                name: "relative_sd",
                value: relative_sd,
                expected: "a non-negative finite relative noise level",
            });
        }
        if !(0.0..=1.0).contains(&dropout_probability) || !dropout_probability.is_finite() {
            return Err(PowerError::InvalidParameter {
                name: "dropout_probability",
                value: dropout_probability,
                expected: "a probability in [0, 1]",
            });
        }
        Ok(CurrentSensor {
            relative_sd,
            dropout_probability,
            last_good: 0.0,
        })
    }

    /// A perfect sensor: no noise, no dropout.
    ///
    /// # Panics
    ///
    /// Never panics: the ideal parameters are always valid.
    #[must_use]
    pub fn ideal() -> Self {
        CurrentSensor::new(0.0, 0.0).expect("ideal sensor parameters are valid")
    }

    /// Measure `true_current` given a standard-normal draw `noise_z` and a
    /// uniform `[0, 1)` draw `dropout_draw`.
    ///
    /// On dropout the sensor holds its last good reading; otherwise the
    /// reading is `true_current · (1 + relative_sd · noise_z)`, floored at
    /// zero (current magnitudes cannot be negative), and becomes the new
    /// held value.
    pub fn measure(&mut self, true_current: f64, noise_z: f64, dropout_draw: f64) -> SensorReading {
        if self.dropout_probability > 0.0 && dropout_draw < self.dropout_probability {
            return SensorReading {
                value: self.last_good,
                dropped: true,
            };
        }
        let value = (true_current * (1.0 + self.relative_sd * noise_z)).max(0.0);
        self.last_good = value;
        SensorReading {
            value,
            dropped: false,
        }
    }

    /// The last good reading held for dropout epochs.
    #[must_use]
    pub fn last_good(&self) -> f64 {
        self.last_good
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn material_validation() {
        assert!(PhaseChangeMaterial::new("x", f64::NAN, 1.0, 1.0).is_err());
        assert!(PhaseChangeMaterial::new("x", 45.0, 0.0, 1.0).is_err());
        assert!(PhaseChangeMaterial::new("x", 45.0, 1.0, -1.0).is_err());
    }

    #[test]
    fn paraffin_constants() {
        let wax = PhaseChangeMaterial::paraffin_wax();
        assert_eq!(wax.melt_point_c(), 45.0);
        assert_eq!(wax.latent_heat_j_per_kg(), 200_000.0);
        assert!(wax.name().contains("paraffin"));
    }

    #[test]
    fn sink_budgets() {
        let sink = PcmHeatSink::paper_sink();
        // 37 g at 200 kJ/kg = 7.4 kJ of latent budget.
        assert!((sink.latent_budget_j() - 7_400.0).abs() < 1.0);
        assert!((sink.sensible_capacitance_j_per_k() - 92.5).abs() < 0.1);
    }

    #[test]
    fn sink_rejects_bad_mass() {
        let wax = PhaseChangeMaterial::paraffin_wax();
        assert!(PcmHeatSink::new(wax.clone(), 0.0).is_err());
        assert!(PcmHeatSink::new(wax, -0.1).is_err());
    }

    #[test]
    fn sensor_validation() {
        assert!(CurrentSensor::new(-0.1, 0.0).is_err());
        assert!(CurrentSensor::new(f64::NAN, 0.0).is_err());
        assert!(CurrentSensor::new(0.1, 1.5).is_err());
        assert!(CurrentSensor::new(0.1, 0.5).is_ok());
    }

    #[test]
    fn ideal_sensor_reports_truth() {
        let mut s = CurrentSensor::ideal();
        let r = s.measure(42.0, 3.0, 0.99);
        assert_eq!(r.value, 42.0);
        assert!(!r.dropped);
        assert_eq!(s.last_good(), 42.0);
    }

    #[test]
    fn noisy_sensor_scales_and_floors() {
        let mut s = CurrentSensor::new(0.1, 0.0).unwrap();
        let r = s.measure(100.0, 1.0, 0.5);
        assert!((r.value - 110.0).abs() < 1e-12);
        // Extreme negative noise floors at zero rather than going
        // negative.
        let r = s.measure(100.0, -20.0, 0.5);
        assert_eq!(r.value, 0.0);
    }

    #[test]
    fn dropout_holds_last_good_reading() {
        let mut s = CurrentSensor::new(0.0, 0.5).unwrap();
        let good = s.measure(80.0, 0.0, 0.9);
        assert!(!good.dropped);
        let held = s.measure(200.0, 0.0, 0.1);
        assert!(held.dropped);
        assert_eq!(held.value, 80.0);
        // A fresh sensor that drops out immediately reports zero — it has
        // never seen a good sample.
        let mut cold = CurrentSensor::new(0.0, 1.0).unwrap();
        assert_eq!(cold.measure(500.0, 0.0, 0.0).value, 0.0);
    }
}
