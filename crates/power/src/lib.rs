//! Physical substrate for the computational sprinting game.
//!
//! The paper's sprinting architecture (§2) rests on four physical systems:
//! chip multiprocessors that sprint by activating cores and raising
//! frequency, phase-change-material heat sinks that bound sprint duration,
//! rack circuit breakers whose trip curves bound the number of simultaneous
//! sprinters, and UPS batteries whose recharge time bounds recovery. The
//! paper measured real hardware (Xeon E5-2697 v2, paraffin wax, UL489
//! breakers, lead-acid UPS); this crate simulates each from first
//! principles and reproduces the paper's operating points:
//!
//! | Paper quantity | Paper value | Produced by |
//! |---|---|---|
//! | sprint : nominal power | ≈ 2× | [`chip`] |
//! | sprint duration | ≈ 150 s | [`thermal`] + [`pcm`] |
//! | cooling duration | ≈ 300 s → `p_c = 0.5` | [`thermal`] |
//! | `N_min`, `N_max` | 0.25 N, 0.75 N | [`breaker`] |
//! | recovery duration | ≈ 8–10 epochs → `p_r ≈ 0.88` | [`ups`] |
//!
//! [`rack`] assembles the pieces and derives the game parameters of the
//! paper's Table 2.
//!
//! # Example
//!
//! Derive Table 2 from physics instead of assuming it:
//!
//! ```
//! use sprint_power::rack::RackConfig;
//!
//! let rack = RackConfig::paper_rack(1000);
//! let params = rack.derive_game_parameters();
//! assert_eq!(params.n_min, 250);
//! assert_eq!(params.n_max, 750);
//! assert!((params.p_cooling - 0.5).abs() < 0.1);
//! assert!((params.p_recovery - 0.88).abs() < 0.02);
//! ```

pub mod breaker;
pub mod chip;
pub mod dvfs;
pub mod network;
pub mod pcm;
pub mod rack;
pub mod thermal;
pub mod ups;

mod error;

pub use error::PowerError;

/// Convenience result alias for fallible model construction.
pub type Result<T> = std::result::Result<T, PowerError>;
