//! General thermal RC networks.
//!
//! The lumped two-node model in [`crate::thermal`] is a deliberate
//! simplification; real packages are multi-node networks (die, heat
//! spreader, PCM charge, sink fins, ambient — the "thermal-RC modeling"
//! the paper's dynamic-thermal-management references build on). This
//! module implements the general case: `N` capacitive nodes joined by
//! thermal conductances, with heat injected at any node and an ambient
//! boundary, integrated explicitly or solved for steady state. A unit
//! test validates the lumped model against a finer discretization.

use sprint_stats::linalg::solve_linear;

use crate::PowerError;

/// A node in the network.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalNode {
    name: String,
    /// Heat capacitance, J/K. Zero-capacitance nodes are not allowed
    /// (fold them into an edge conductance instead).
    capacitance_j_per_k: f64,
}

/// An edge between two nodes (or a node and ambient).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Edge {
    a: usize,
    /// `None` couples node `a` to ambient.
    b: Option<usize>,
    conductance_w_per_k: f64,
}

/// A thermal RC network with an ambient boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalNetwork {
    nodes: Vec<ThermalNode>,
    edges: Vec<Edge>,
    ambient_c: f64,
}

impl ThermalNetwork {
    /// Create an empty network at the given ambient temperature.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] for a non-finite ambient.
    pub fn new(ambient_c: f64) -> crate::Result<Self> {
        if !ambient_c.is_finite() {
            return Err(PowerError::InvalidParameter {
                name: "ambient_c",
                value: ambient_c,
                expected: "a finite ambient temperature",
            });
        }
        Ok(ThermalNetwork {
            nodes: Vec::new(),
            edges: Vec::new(),
            ambient_c,
        })
    }

    /// Add a node; returns its index.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] for non-positive
    /// capacitance.
    pub fn add_node(
        &mut self,
        name: impl Into<String>,
        capacitance_j_per_k: f64,
    ) -> crate::Result<usize> {
        if capacitance_j_per_k <= 0.0 || !capacitance_j_per_k.is_finite() {
            return Err(PowerError::InvalidParameter {
                name: "capacitance_j_per_k",
                value: capacitance_j_per_k,
                expected: "a positive finite capacitance",
            });
        }
        self.nodes.push(ThermalNode {
            name: name.into(),
            capacitance_j_per_k,
        });
        Ok(self.nodes.len() - 1)
    }

    /// Connect two nodes with a thermal resistance (K/W).
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] for invalid indices, a
    /// self-edge, or non-positive resistance.
    pub fn connect(&mut self, a: usize, b: usize, resistance_k_per_w: f64) -> crate::Result<()> {
        if a >= self.nodes.len() || b >= self.nodes.len() || a == b {
            return Err(PowerError::InvalidParameter {
                name: "a",
                value: a as f64,
                expected: "two distinct existing node indices",
            });
        }
        self.push_edge(a, Some(b), resistance_k_per_w)
    }

    /// Connect a node to ambient with a thermal resistance (K/W).
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] for an invalid index or
    /// non-positive resistance.
    pub fn connect_ambient(&mut self, a: usize, resistance_k_per_w: f64) -> crate::Result<()> {
        if a >= self.nodes.len() {
            return Err(PowerError::InvalidParameter {
                name: "a",
                value: a as f64,
                expected: "an existing node index",
            });
        }
        self.push_edge(a, None, resistance_k_per_w)
    }

    fn push_edge(&mut self, a: usize, b: Option<usize>, r: f64) -> crate::Result<()> {
        if r <= 0.0 || !r.is_finite() {
            return Err(PowerError::InvalidParameter {
                name: "resistance_k_per_w",
                value: r,
                expected: "a positive finite thermal resistance",
            });
        }
        self.edges.push(Edge {
            a,
            b,
            conductance_w_per_k: 1.0 / r,
        });
        Ok(())
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the network has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node name by index.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn node_name(&self, i: usize) -> &str {
        &self.nodes[i].name
    }

    /// Net heat flow into each node for the given temperatures and power
    /// injections, watts.
    fn heat_flows(&self, temps: &[f64], injections: &[f64]) -> Vec<f64> {
        let mut q = injections.to_vec();
        for e in &self.edges {
            let tb = e.b.map_or(self.ambient_c, |b| temps[b]);
            let flow = e.conductance_w_per_k * (temps[e.a] - tb);
            q[e.a] -= flow;
            if let Some(b) = e.b {
                q[b] += flow;
            }
        }
        q
    }

    /// Advance node temperatures by `dt` seconds under constant power
    /// injections (explicit Euler).
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] when slice lengths do not
    /// match the node count.
    pub fn step(&self, temps: &mut [f64], injections_w: &[f64], dt: f64) -> crate::Result<()> {
        if temps.len() != self.nodes.len() || injections_w.len() != self.nodes.len() {
            return Err(PowerError::InvalidParameter {
                name: "temps",
                value: temps.len() as f64,
                expected: "one temperature and injection per node",
            });
        }
        let q = self.heat_flows(temps, injections_w);
        for ((t, node), q_i) in temps.iter_mut().zip(&self.nodes).zip(q) {
            *t += q_i * dt / node.capacitance_j_per_k;
        }
        Ok(())
    }

    /// Steady-state node temperatures under constant power injections,
    /// via the conductance-matrix linear solve `G T = Q + G_amb T_amb`.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] for a wrong-length
    /// injection slice and [`PowerError::NoEvent`] when the network has no
    /// path to ambient (no steady state exists).
    pub fn steady_state(&self, injections_w: &[f64]) -> crate::Result<Vec<f64>> {
        let n = self.nodes.len();
        if injections_w.len() != n {
            return Err(PowerError::InvalidParameter {
                name: "injections_w",
                value: injections_w.len() as f64,
                expected: "one injection per node",
            });
        }
        let mut g = vec![vec![0.0f64; n]; n];
        let mut rhs = injections_w.to_vec();
        for e in &self.edges {
            g[e.a][e.a] += e.conductance_w_per_k;
            match e.b {
                Some(b) => {
                    g[b][b] += e.conductance_w_per_k;
                    g[e.a][b] -= e.conductance_w_per_k;
                    g[b][e.a] -= e.conductance_w_per_k;
                }
                None => rhs[e.a] += e.conductance_w_per_k * self.ambient_c,
            }
        }
        solve_linear(g, rhs).map_err(|_| PowerError::NoEvent {
            what: "steady state (network has no conductive path to ambient)",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thermal::ThermalPackage;

    fn two_node() -> (ThermalNetwork, usize, usize) {
        let mut net = ThermalNetwork::new(25.0).unwrap();
        let die = net.add_node("die", 20.0).unwrap();
        let sink = net.add_node("sink", 240.0).unwrap();
        net.connect(die, sink, 0.05).unwrap();
        net.connect_ambient(sink, 0.30).unwrap();
        (net, die, sink)
    }

    #[test]
    fn construction_validates() {
        assert!(ThermalNetwork::new(f64::NAN).is_err());
        let mut net = ThermalNetwork::new(25.0).unwrap();
        assert!(net.add_node("x", 0.0).is_err());
        let a = net.add_node("a", 1.0).unwrap();
        assert!(net.connect(a, a, 0.1).is_err());
        assert!(net.connect(a, 99, 0.1).is_err());
        assert!(net.connect_ambient(99, 0.1).is_err());
        assert!(net.connect_ambient(a, -0.1).is_err());
        assert_eq!(net.node_name(a), "a");
        assert_eq!(net.len(), 1);
        assert!(!net.is_empty());
    }

    #[test]
    fn steady_state_matches_series_resistance() {
        // Die dissipating P through R_die-sink + R_sink-ambient in series:
        // T_die = T_amb + P (R1 + R2), T_sink = T_amb + P R2.
        let (net, die, sink) = two_node();
        let mut inj = vec![0.0; 2];
        inj[die] = 100.0;
        let t = net.steady_state(&inj).unwrap();
        assert!((t[sink] - (25.0 + 100.0 * 0.30)).abs() < 1e-9);
        assert!((t[die] - (25.0 + 100.0 * 0.35)).abs() < 1e-9);
    }

    #[test]
    fn transient_approaches_steady_state() {
        let (net, die, _) = two_node();
        let mut inj = vec![0.0; 2];
        inj[die] = 50.0;
        let steady = net.steady_state(&inj).unwrap();
        let mut temps = vec![25.0; 2];
        for _ in 0..400_000 {
            net.step(&mut temps, &inj, 0.01).unwrap();
        }
        for (sim, exact) in temps.iter().zip(&steady) {
            assert!((sim - exact).abs() < 0.01, "{sim} vs {exact}");
        }
    }

    #[test]
    fn floating_network_has_no_steady_state() {
        let mut net = ThermalNetwork::new(25.0).unwrap();
        let a = net.add_node("a", 1.0).unwrap();
        let b = net.add_node("b", 1.0).unwrap();
        net.connect(a, b, 0.1).unwrap();
        assert!(matches!(
            net.steady_state(&[1.0, 0.0]),
            Err(PowerError::NoEvent { .. })
        ));
    }

    #[test]
    fn energy_is_conserved_internally() {
        // With no ambient path, total thermal energy only grows by the
        // injected power.
        let mut net = ThermalNetwork::new(25.0).unwrap();
        let a = net.add_node("a", 10.0).unwrap();
        let b = net.add_node("b", 30.0).unwrap();
        net.connect(a, b, 0.2).unwrap();
        let mut temps = vec![25.0, 25.0];
        let inj = vec![8.0, 0.0];
        let energy = |t: &[f64]| 10.0 * t[0] + 30.0 * t[1];
        let e0 = energy(&temps);
        let steps = 1000;
        for _ in 0..steps {
            net.step(&mut temps, &inj, 0.05).unwrap();
        }
        let injected = 8.0 * 0.05 * steps as f64;
        assert!((energy(&temps) - e0 - injected).abs() < 1e-6);
    }

    #[test]
    fn finer_discretization_validates_the_lumped_package() {
        // Five-node refinement of the paper package (die, spreader, two
        // PCM shells, fin) with the same end-to-end resistances and total
        // capacitance: its steady junction temperature under nominal
        // power must match the lumped model within a kelvin.
        let lumped = ThermalPackage::paper_package();
        let nominal_w = 35.4;
        let lumped_junction = lumped.nominal_junction_c(nominal_w).unwrap();

        let mut net = ThermalNetwork::new(25.0).unwrap();
        let die = net.add_node("die", 15.0).unwrap();
        let spreader = net.add_node("spreader", 60.0).unwrap();
        let pcm_inner = net.add_node("pcm-inner", 80.0).unwrap();
        let pcm_outer = net.add_node("pcm-outer", 80.0).unwrap();
        let fin = net.add_node("fin", 7.5).unwrap();
        // Split R_jp = 0.05 across die->spreader->pcm, and R_pa = 0.30
        // across pcm->fin->ambient.
        net.connect(die, spreader, 0.03).unwrap();
        net.connect(spreader, pcm_inner, 0.02).unwrap();
        net.connect(pcm_inner, pcm_outer, 0.10).unwrap();
        net.connect(pcm_outer, fin, 0.10).unwrap();
        net.connect_ambient(fin, 0.10).unwrap();
        let mut inj = vec![0.0; 5];
        inj[die] = nominal_w;
        let t = net.steady_state(&inj).unwrap();
        assert!(
            (t[die] - lumped_junction).abs() < 1.0,
            "network {} vs lumped {}",
            t[die],
            lumped_junction
        );
    }
}
