//! Uninterruptible power supply (battery) model.
//!
//! Paper §2.2: when the breaker trips, the rack's UPS batteries carry the
//! sprints in progress. Afterwards the rack is forbidden from sprinting
//! until the batteries recharge; lead-acid batteries recharge to 85 %
//! capacity in 8–10× the discharge time, so a one-epoch discharge costs
//! roughly 8–10 epochs of recovery — the paper's `Δt_recover` and
//! `p_r = 1 − 1/Δt_recover ≈ 0.88` (Table 2).

use crate::PowerError;

/// A lead-acid UPS battery string protecting one rack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpsBattery {
    /// Usable energy, joules.
    capacity_j: f64,
    /// Recharge time divided by discharge time (8–10 for lead-acid).
    recharge_ratio: f64,
}

impl UpsBattery {
    /// Create a battery with usable `capacity_j` joules and a given
    /// recharge : discharge time ratio.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] for non-positive capacity
    /// or a recharge ratio below 1 (recharging faster than discharging is
    /// outside the lead-acid envelope this model represents).
    pub fn new(capacity_j: f64, recharge_ratio: f64) -> crate::Result<Self> {
        if capacity_j <= 0.0 || !capacity_j.is_finite() {
            return Err(PowerError::InvalidParameter {
                name: "capacity_j",
                value: capacity_j,
                expected: "a positive finite energy in joules",
            });
        }
        if recharge_ratio < 1.0 || !recharge_ratio.is_finite() {
            return Err(PowerError::InvalidParameter {
                name: "recharge_ratio",
                value: recharge_ratio,
                expected: "a finite ratio of at least 1",
            });
        }
        Ok(UpsBattery {
            capacity_j,
            recharge_ratio,
        })
    }

    /// The paper-calibrated rack battery: ≈ 10 kWh usable (enough to carry
    /// a 1000-server rack sprinting flat-out for one 150 s epoch) with a
    /// recharge ratio of 8.33, which yields `p_r = 0.88` exactly as in
    /// Table 2.
    #[must_use]
    pub fn paper_battery() -> Self {
        UpsBattery::new(36.0e6, 25.0 / 3.0).expect("valid calibration")
    }

    /// Usable capacity, joules.
    #[must_use]
    pub fn capacity_j(&self) -> f64 {
        self.capacity_j
    }

    /// Recharge : discharge time ratio.
    #[must_use]
    pub fn recharge_ratio(&self) -> f64 {
        self.recharge_ratio
    }

    /// Whether the battery can carry `load_w` for `duration_s` seconds.
    #[must_use]
    pub fn can_carry(&self, load_w: f64, duration_s: f64) -> bool {
        load_w * duration_s <= self.capacity_j
    }

    /// Recovery duration in epochs after discharging for
    /// `discharge_epochs` epochs (paper `Δt_recover`).
    #[must_use]
    pub fn recovery_epochs(&self, discharge_epochs: f64) -> f64 {
        self.recharge_ratio * discharge_epochs
    }

    /// The game's recovery-state persistence `p_r`, defined by
    /// `1/(1 − p_r) = Δt_recover` for a one-epoch discharge (paper §3.2).
    #[must_use]
    pub fn p_recovery(&self) -> f64 {
        1.0 - 1.0 / self.recovery_epochs(1.0).max(1.0)
    }

    /// State of charge after recharging for `epochs` epochs following a
    /// one-epoch full discharge, in `[0, 1]`. Linear recharge up to 85 %
    /// then taper, matching the lead-acid charging profile the paper's
    /// recovery times are drawn from.
    #[must_use]
    pub fn state_of_charge_after(&self, epochs: f64) -> f64 {
        let linear_end = self.recovery_epochs(1.0);
        if epochs <= 0.0 {
            0.0
        } else if epochs < linear_end {
            0.85 * epochs / linear_end
        } else {
            // Exponential taper from 85 % toward full.
            1.0 - 0.15 * (-(epochs - linear_end) / linear_end).exp()
        }
    }

    /// Cycles to end-of-life at a given depth of discharge.
    ///
    /// Lead-acid wear follows an inverse power law in depth of discharge:
    /// roughly 200 full-depth cycles, over 1200 at 30 % depth. The paper
    /// leans on this ("frequent discharges without recharges would
    /// shorten battery life", §2.2) to justify the recovery constraint.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] for a depth outside
    /// `(0, 1]`.
    pub fn cycles_to_failure(&self, depth_of_discharge: f64) -> crate::Result<f64> {
        if depth_of_discharge <= 0.0 || depth_of_discharge > 1.0 || !depth_of_discharge.is_finite()
        {
            return Err(PowerError::InvalidParameter {
                name: "depth_of_discharge",
                value: depth_of_discharge,
                expected: "a depth in (0, 1]",
            });
        }
        // N(DoD) = 200 / DoD^1.5, the standard lead-acid wear fit.
        Ok(200.0 / depth_of_discharge.powf(1.5))
    }

    /// Expected battery service life in days, given an emergency rate and
    /// the per-emergency discharge depth.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] for a non-positive
    /// emergency rate or an invalid depth.
    pub fn service_life_days(
        &self,
        emergencies_per_day: f64,
        depth_of_discharge: f64,
    ) -> crate::Result<f64> {
        if emergencies_per_day <= 0.0 || !emergencies_per_day.is_finite() {
            return Err(PowerError::InvalidParameter {
                name: "emergencies_per_day",
                value: emergencies_per_day,
                expected: "a positive finite emergency rate",
            });
        }
        Ok(self.cycles_to_failure(depth_of_discharge)? / emergencies_per_day)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(UpsBattery::new(0.0, 8.0).is_err());
        assert!(UpsBattery::new(1e6, 0.5).is_err());
        assert!(UpsBattery::new(f64::NAN, 8.0).is_err());
    }

    #[test]
    fn paper_battery_matches_table2() {
        let b = UpsBattery::paper_battery();
        assert!(
            (b.p_recovery() - 0.88).abs() < 1e-9,
            "p_r = {}, Table 2 uses 0.88",
            b.p_recovery()
        );
        // 1/(1 - 0.88) = 8.33 epochs of recovery.
        assert!((b.recovery_epochs(1.0) - 25.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn paper_battery_carries_a_full_rack_sprint() {
        let b = UpsBattery::paper_battery();
        // 1000 servers * ~190 W sprinting for 150 s ≈ 28.5 MJ.
        assert!(b.can_carry(1000.0 * 190.0, 150.0));
        assert!(!b.can_carry(1000.0 * 190.0, 1500.0));
    }

    #[test]
    fn recovery_scales_with_discharge() {
        let b = UpsBattery::new(1e6, 8.0).unwrap();
        assert_eq!(b.recovery_epochs(1.0), 8.0);
        assert_eq!(b.recovery_epochs(2.0), 16.0);
    }

    #[test]
    fn state_of_charge_is_monotone() {
        let b = UpsBattery::paper_battery();
        let mut last = -1.0;
        for i in 0..40 {
            let soc = b.state_of_charge_after(i as f64);
            assert!(soc >= last, "SoC must not decrease while charging");
            assert!((0.0..=1.0).contains(&soc));
            last = soc;
        }
        assert_eq!(b.state_of_charge_after(0.0), 0.0);
        // At the linear-end boundary the battery reaches 85 %.
        let at_end = b.state_of_charge_after(b.recovery_epochs(1.0));
        assert!((at_end - 0.85).abs() < 1e-9);
    }

    #[test]
    fn deeper_discharges_wear_faster() {
        let b = UpsBattery::paper_battery();
        let shallow = b.cycles_to_failure(0.3).unwrap();
        let deep = b.cycles_to_failure(1.0).unwrap();
        assert_eq!(deep, 200.0);
        assert!(shallow > 5.0 * deep, "shallow {shallow} vs deep {deep}");
        assert!(b.cycles_to_failure(0.0).is_err());
        assert!(b.cycles_to_failure(1.5).is_err());
    }

    #[test]
    fn greedy_emergency_rates_destroy_batteries() {
        // Under Greedy, the rack trips roughly every ten epochs — about
        // 58 emergencies/day at 150 s epochs. The battery dies in under a
        // week; under the equilibrium policy's rare emergencies it lasts
        // for years. This is the §2.2 wear argument, quantified.
        let b = UpsBattery::paper_battery();
        let greedy_life = b.service_life_days(57.6, 1.0).unwrap();
        let equilibrium_life = b.service_life_days(0.1, 1.0).unwrap();
        assert!(greedy_life < 7.0, "greedy battery life {greedy_life} days");
        assert!(
            equilibrium_life > 365.0,
            "equilibrium battery life {equilibrium_life} days"
        );
        assert!(b.service_life_days(0.0, 1.0).is_err());
    }

    #[test]
    fn recharge_ratio_one_is_allowed() {
        // Idealized battery recharging as fast as it discharges: recovery
        // is one epoch and p_r = 0.
        let b = UpsBattery::new(1e6, 1.0).unwrap();
        assert_eq!(b.p_recovery(), 0.0);
    }
}
