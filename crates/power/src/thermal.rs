//! Transient thermal model of a sprinting chip and its PCM heat sink.
//!
//! A lumped two-node RC network: the die couples to the PCM node through
//! `R_jp`, and the PCM node couples to ambient through `R_pa`. The PCM node
//! carries both sensible capacitance and a latent-heat buffer that pins its
//! temperature at the melting point while melting or freezing — the
//! mechanism that makes minute-scale sprints possible (paper §2.1).
//!
//! The model answers the two questions the game needs:
//!
//! - **sprint duration**: how long a chip can sprint before its latent
//!   budget is exhausted (≈ 150 s with the paper-calibrated package), and
//! - **cooling duration**: how long until the PCM refreezes and the
//!   package returns near its nominal steady state (≈ 300 s), which sets
//!   `p_c = 1 − 1/Δt_cool`.

use crate::chip::{ChipModel, ExecutionMode};
use crate::pcm::PcmHeatSink;
use crate::PowerError;

/// Integration time step for transient simulation, seconds.
const DT_S: f64 = 0.05;

/// Hard cap on simulated transient time, seconds.
const MAX_SIM_S: f64 = 24.0 * 3600.0;

/// A thermal package: PCM heat sink plus thermal resistances.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalPackage {
    sink: PcmHeatSink,
    /// Junction-to-PCM thermal resistance, K/W.
    r_junction_pcm: f64,
    /// PCM-to-ambient thermal resistance, K/W.
    r_pcm_ambient: f64,
    /// Ambient temperature, °C.
    ambient_c: f64,
    /// Non-PCM sensible capacitance lumped at the PCM node (copper base,
    /// spreader), J/K.
    structure_capacitance_j_per_k: f64,
}

impl ThermalPackage {
    /// Create a package.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] for non-positive
    /// resistances or capacitance, or a non-finite ambient temperature.
    pub fn new(
        sink: PcmHeatSink,
        r_junction_pcm: f64,
        r_pcm_ambient: f64,
        ambient_c: f64,
        structure_capacitance_j_per_k: f64,
    ) -> crate::Result<Self> {
        for (name, v) in [
            ("r_junction_pcm", r_junction_pcm),
            ("r_pcm_ambient", r_pcm_ambient),
            (
                "structure_capacitance_j_per_k",
                structure_capacitance_j_per_k,
            ),
        ] {
            if v <= 0.0 || !v.is_finite() {
                return Err(PowerError::InvalidParameter {
                    name,
                    value: v,
                    expected: "a positive finite value",
                });
            }
        }
        if !ambient_c.is_finite() {
            return Err(PowerError::InvalidParameter {
                name: "ambient_c",
                value: ambient_c,
                expected: "a finite ambient temperature in °C",
            });
        }
        Ok(ThermalPackage {
            sink,
            r_junction_pcm,
            r_pcm_ambient,
            ambient_c,
            structure_capacitance_j_per_k,
        })
    }

    /// The paper-calibrated package: 37 g paraffin sink, `R_pa` = 0.30 K/W,
    /// `R_jp` = 0.05 K/W, 25 °C ambient. Produces ≈ 150 s sprints and
    /// ≈ 300 s cooling for the paper's chip.
    #[must_use]
    pub fn paper_package() -> Self {
        ThermalPackage::new(PcmHeatSink::paper_sink(), 0.05, 0.30, 25.0, 150.0)
            .expect("valid calibration")
    }

    /// The heat sink in this package.
    #[must_use]
    pub fn sink(&self) -> &PcmHeatSink {
        &self.sink
    }

    /// Ambient temperature, °C.
    #[must_use]
    pub fn ambient_c(&self) -> f64 {
        self.ambient_c
    }

    /// Total sensible capacitance at the PCM node, J/K.
    #[must_use]
    pub fn node_capacitance_j_per_k(&self) -> f64 {
        self.structure_capacitance_j_per_k + self.sink.sensible_capacitance_j_per_k()
    }

    /// Steady-state PCM node temperature for a constant power, ignoring
    /// the latent buffer (valid while solid or fully molten).
    #[must_use]
    pub fn steady_node_temp_c(&self, power_w: f64) -> f64 {
        self.ambient_c + power_w * self.r_pcm_ambient
    }

    /// Junction (die) temperature given the PCM node temperature and the
    /// instantaneous power flowing through `R_jp`.
    #[must_use]
    pub fn junction_temp_c(&self, node_temp_c: f64, power_w: f64) -> f64 {
        node_temp_c + power_w * self.r_junction_pcm
    }

    /// Thermal state at nominal steady operation (solid PCM), the starting
    /// point of every sprint.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] if the nominal power alone
    /// melts the PCM — such a package cannot support the sprinting
    /// state machine at all.
    pub fn nominal_steady_state(&self, nominal_power_w: f64) -> crate::Result<ThermalState> {
        let t = self.steady_node_temp_c(nominal_power_w);
        if t >= self.sink.material().melt_point_c() {
            return Err(PowerError::InvalidParameter {
                name: "nominal_power_w",
                value: nominal_power_w,
                expected: "a nominal power whose steady state keeps the PCM solid",
            });
        }
        Ok(ThermalState {
            node_temp_c: t,
            melt_fraction: 0.0,
        })
    }

    /// Advance the thermal state by `dt` seconds under `power_w` input.
    pub fn step(&self, state: &mut ThermalState, power_w: f64, dt: f64) {
        let melt = self.sink.material().melt_point_c();
        let outflow = (state.node_temp_c - self.ambient_c) / self.r_pcm_ambient;
        let net_w = power_w - outflow;
        let at_melt = (state.node_temp_c - melt).abs() < 1e-9;

        if at_melt && net_w > 0.0 && state.melt_fraction < 1.0 {
            // Melting: heat goes to latent budget, temperature pinned.
            state.melt_fraction =
                (state.melt_fraction + net_w * dt / self.sink.latent_budget_j()).min(1.0);
        } else if at_melt && net_w < 0.0 && state.melt_fraction > 0.0 {
            // Freezing: latent heat released, temperature pinned.
            state.melt_fraction =
                (state.melt_fraction + net_w * dt / self.sink.latent_budget_j()).max(0.0);
        } else {
            // Sensible heating/cooling.
            let dt_temp = net_w * dt / self.node_capacitance_j_per_k();
            let next = state.node_temp_c + dt_temp;
            // Clamp through the melting point so latent buffering engages
            // on the next step instead of being skipped over.
            state.node_temp_c = if state.node_temp_c < melt && next > melt
                || state.node_temp_c > melt && next < melt
            {
                melt
            } else {
                next
            };
        }
    }

    /// Maximum sprint duration: seconds from nominal steady state until
    /// the PCM is fully molten under sprint power. Past this point the
    /// junction would run away, so the architecture ends the sprint.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::NoEvent`] if the sprint power is low enough
    /// to be sustained indefinitely (no melt completion), and propagates
    /// [`PowerError::InvalidParameter`] from the steady-state check.
    pub fn sprint_duration_s(
        &self,
        nominal_power_w: f64,
        sprint_power_w: f64,
    ) -> crate::Result<f64> {
        let mut state = self.nominal_steady_state(nominal_power_w)?;
        let mut t = 0.0;
        while t < MAX_SIM_S {
            self.step(&mut state, sprint_power_w, DT_S);
            t += DT_S;
            if state.melt_fraction >= 1.0 {
                return Ok(t);
            }
        }
        Err(PowerError::NoEvent {
            what: "PCM melt completion under sprint power",
        })
    }

    /// Cooling duration: seconds from a fully-molten PCM at the melting
    /// point (the end of a sprint) until the PCM has refrozen and the node
    /// has returned within `settle_band_k` of its nominal steady state.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::NoEvent`] if the package cannot shed the
    /// nominal power (never settles), and propagates
    /// [`PowerError::InvalidParameter`] from the steady-state check.
    pub fn cooling_duration_s(
        &self,
        nominal_power_w: f64,
        settle_band_k: f64,
    ) -> crate::Result<f64> {
        let target = self.nominal_steady_state(nominal_power_w)?.node_temp_c;
        let mut state = ThermalState {
            node_temp_c: self.sink.material().melt_point_c(),
            melt_fraction: 1.0,
        };
        let mut t = 0.0;
        while t < MAX_SIM_S {
            self.step(&mut state, nominal_power_w, DT_S);
            t += DT_S;
            if state.melt_fraction <= 0.0 && state.node_temp_c <= target + settle_band_k {
                return Ok(t);
            }
        }
        Err(PowerError::NoEvent {
            what: "PCM refreeze and settle under nominal power",
        })
    }

    /// Average junction temperature over a full sprint (for Figure 1's
    /// temperature panel).
    ///
    /// # Errors
    ///
    /// Propagates errors from [`ThermalPackage::sprint_duration_s`].
    pub fn average_sprint_junction_c(
        &self,
        nominal_power_w: f64,
        sprint_power_w: f64,
    ) -> crate::Result<f64> {
        let duration = self.sprint_duration_s(nominal_power_w, sprint_power_w)?;
        let mut state = self.nominal_steady_state(nominal_power_w)?;
        let mut t = 0.0;
        let mut acc = 0.0;
        let mut n = 0u64;
        while t < duration {
            self.step(&mut state, sprint_power_w, DT_S);
            acc += self.junction_temp_c(state.node_temp_c, sprint_power_w);
            n += 1;
            t += DT_S;
        }
        Ok(acc / n as f64)
    }

    /// Steady nominal junction temperature (Figure 1's non-sprinting bar).
    ///
    /// # Errors
    ///
    /// Propagates the solid-steady-state check.
    pub fn nominal_junction_c(&self, nominal_power_w: f64) -> crate::Result<f64> {
        let s = self.nominal_steady_state(nominal_power_w)?;
        Ok(self.junction_temp_c(s.node_temp_c, nominal_power_w))
    }
}

/// Instantaneous thermal state of the package.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ThermalState {
    /// PCM node temperature, °C.
    pub node_temp_c: f64,
    /// Molten fraction of the PCM charge, in `[0, 1]`.
    pub melt_fraction: f64,
}

/// Sprint/cooling durations derived for a chip on a package.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SprintEnvelope {
    /// Maximum safe sprint duration, seconds. Defines the epoch length.
    pub sprint_duration_s: f64,
    /// Cooling duration after a sprint, seconds.
    pub cooling_duration_s: f64,
}

impl SprintEnvelope {
    /// Derive the envelope for `chip` on `package`.
    ///
    /// # Errors
    ///
    /// Propagates thermal simulation errors. Uses a 3 K settle band for the
    /// end of cooling (the PCM has refrozen and the package is within a
    /// few kelvin of nominal steady state).
    pub fn derive(chip: &ChipModel, package: &ThermalPackage) -> crate::Result<Self> {
        let nominal = chip.power_w(ExecutionMode::Nominal);
        let sprint = chip.power_w(ExecutionMode::Sprint);
        Ok(SprintEnvelope {
            sprint_duration_s: package.sprint_duration_s(nominal, sprint)?,
            cooling_duration_s: package.cooling_duration_s(nominal, 3.0)?,
        })
    }

    /// Cooling duration in epochs (epoch = sprint duration).
    #[must_use]
    pub fn cooling_epochs(&self) -> f64 {
        self.cooling_duration_s / self.sprint_duration_s
    }

    /// The game's cooling-state persistence `p_c`, defined by
    /// `1/(1 − p_c) = Δt_cool` in epochs (paper §3.2).
    #[must_use]
    pub fn p_cooling(&self) -> f64 {
        1.0 - 1.0 / self.cooling_epochs().max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::ChipModel;

    fn paper_setup() -> (ChipModel, ThermalPackage) {
        (ChipModel::xeon_e5_like(), ThermalPackage::paper_package())
    }

    #[test]
    fn package_validates() {
        let sink = PcmHeatSink::paper_sink();
        assert!(ThermalPackage::new(sink.clone(), 0.0, 0.3, 25.0, 150.0).is_err());
        assert!(ThermalPackage::new(sink.clone(), 0.05, -0.3, 25.0, 150.0).is_err());
        assert!(ThermalPackage::new(sink.clone(), 0.05, 0.3, f64::NAN, 150.0).is_err());
        assert!(ThermalPackage::new(sink, 0.05, 0.3, 25.0, 0.0).is_err());
    }

    #[test]
    fn nominal_steady_state_keeps_pcm_solid() {
        let (chip, pkg) = paper_setup();
        let s = pkg
            .nominal_steady_state(chip.power_w(ExecutionMode::Nominal))
            .unwrap();
        assert!(s.node_temp_c < pkg.sink().material().melt_point_c());
        assert_eq!(s.melt_fraction, 0.0);
    }

    #[test]
    fn excessive_nominal_power_is_rejected() {
        let pkg = ThermalPackage::paper_package();
        // 200 W nominal would melt the wax at steady state.
        assert!(pkg.nominal_steady_state(200.0).is_err());
    }

    #[test]
    fn sprint_duration_near_150s() {
        let (chip, pkg) = paper_setup();
        let d = pkg
            .sprint_duration_s(
                chip.power_w(ExecutionMode::Nominal),
                chip.power_w(ExecutionMode::Sprint),
            )
            .unwrap();
        assert!(
            (120.0..=180.0).contains(&d),
            "sprint duration {d} s, paper estimates ≈150 s"
        );
    }

    #[test]
    fn cooling_near_twice_sprint() {
        let (chip, pkg) = paper_setup();
        let env = SprintEnvelope::derive(&chip, &pkg).unwrap();
        let ratio = env.cooling_epochs();
        assert!(
            (1.6..=2.6).contains(&ratio),
            "cooling/sprint ratio {ratio}, paper estimates ≈2"
        );
        let pc = env.p_cooling();
        assert!(
            (0.38..=0.62).contains(&pc),
            "derived p_c = {pc}, Table 2 uses 0.5"
        );
    }

    #[test]
    fn sustainable_power_never_melts() {
        let pkg = ThermalPackage::paper_package();
        // 40 W steady is below the melt threshold: sprinting "forever".
        let r = pkg.sprint_duration_s(35.0, 40.0);
        assert!(matches!(r, Err(PowerError::NoEvent { .. })));
    }

    #[test]
    fn melting_pins_temperature() {
        let pkg = ThermalPackage::paper_package();
        let melt = pkg.sink().material().melt_point_c();
        let mut state = ThermalState {
            node_temp_c: melt,
            melt_fraction: 0.5,
        };
        pkg.step(&mut state, 130.0, 1.0);
        assert_eq!(state.node_temp_c, melt);
        assert!(state.melt_fraction > 0.5);
    }

    #[test]
    fn freezing_releases_latent_heat() {
        let pkg = ThermalPackage::paper_package();
        let melt = pkg.sink().material().melt_point_c();
        let mut state = ThermalState {
            node_temp_c: melt,
            melt_fraction: 0.5,
        };
        // Low power: net outflow, so the PCM freezes at pinned temperature.
        pkg.step(&mut state, 10.0, 1.0);
        assert_eq!(state.node_temp_c, melt);
        assert!(state.melt_fraction < 0.5);
    }

    #[test]
    fn sensible_heating_below_melt() {
        let pkg = ThermalPackage::paper_package();
        let mut state = ThermalState {
            node_temp_c: 30.0,
            melt_fraction: 0.0,
        };
        pkg.step(&mut state, 100.0, 1.0);
        assert!(state.node_temp_c > 30.0);
        assert_eq!(state.melt_fraction, 0.0);
    }

    #[test]
    fn temperature_clamps_at_melt_crossing() {
        let pkg = ThermalPackage::paper_package();
        let melt = pkg.sink().material().melt_point_c();
        let mut state = ThermalState {
            node_temp_c: melt - 0.01,
            melt_fraction: 0.0,
        };
        // A large step would overshoot the melting point; it must clamp.
        pkg.step(&mut state, 500.0, 5.0);
        assert_eq!(state.node_temp_c, melt);
    }

    #[test]
    fn sprint_raises_average_junction_temperature() {
        let (chip, pkg) = paper_setup();
        let nominal = chip.power_w(ExecutionMode::Nominal);
        let sprint = chip.power_w(ExecutionMode::Sprint);
        let t_nom = pkg.nominal_junction_c(nominal).unwrap();
        let t_sprint = pkg.average_sprint_junction_c(nominal, sprint).unwrap();
        // Figure 1: sprinting runs ≈10–15 °C hotter on average.
        assert!(t_sprint > t_nom + 5.0);
        assert!(t_sprint < 70.0, "junction stays in a plausible range");
    }

    #[test]
    fn envelope_pc_formula() {
        let env = SprintEnvelope {
            sprint_duration_s: 150.0,
            cooling_duration_s: 300.0,
        };
        assert_eq!(env.cooling_epochs(), 2.0);
        assert!((env.p_cooling() - 0.5).abs() < 1e-12);
    }
}
