//! Chip-multiprocessor power model.
//!
//! The paper's servers hold an Intel Xeon E5-2697 v2-class chip per agent:
//! three cores at 1.2 GHz in normal mode, twelve cores at 2.7 GHz in a
//! sprint (§3.1, §5). We model package power as uncore (constant) plus
//! per-core dynamic power `C_eff · V² · f` scaled by a workload activity
//! factor, and server power as package plus platform overhead (memory,
//! fans, PSU losses). The calibrated defaults reproduce the paper's two
//! operating facts:
//!
//! - a sprinting server draws ≈ 2× a non-sprinting server (§2.2), and
//! - Figure 1's normalized power bars cluster around 1.5–1.9× depending on
//!   workload activity.

use crate::dvfs::{OperatingPoint, VoltageScaling};
use crate::PowerError;

/// Execution mode of a chip multiprocessor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ExecutionMode {
    /// Normal operation: a few cores at low frequency.
    Nominal,
    /// Sprint: all cores at maximum frequency.
    Sprint,
}

impl ExecutionMode {
    /// All execution modes, in escalation order.
    pub const ALL: [ExecutionMode; 2] = [ExecutionMode::Nominal, ExecutionMode::Sprint];
}

impl std::fmt::Display for ExecutionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecutionMode::Nominal => write!(f, "nominal"),
            ExecutionMode::Sprint => write!(f, "sprint"),
        }
    }
}

/// Core count and operating point for one execution mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeConfig {
    active_cores: u32,
    point: OperatingPoint,
}

impl ModeConfig {
    /// Create a mode configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] when `active_cores` is 0.
    pub fn new(active_cores: u32, point: OperatingPoint) -> crate::Result<Self> {
        if active_cores == 0 {
            return Err(PowerError::InvalidParameter {
                name: "active_cores",
                value: 0.0,
                expected: "at least one active core",
            });
        }
        Ok(ModeConfig {
            active_cores,
            point,
        })
    }

    /// Number of powered cores in this mode.
    #[must_use]
    pub fn active_cores(&self) -> u32 {
        self.active_cores
    }

    /// DVFS operating point of this mode.
    #[must_use]
    pub fn point(&self) -> OperatingPoint {
        self.point
    }
}

/// Power model for one chip multiprocessor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipModel {
    total_cores: u32,
    nominal: ModeConfig,
    sprint: ModeConfig,
    /// Effective switching capacitance per core, W / (V²·GHz).
    c_eff: f64,
    /// Uncore + leakage power always drawn by the package, W.
    uncore_w: f64,
}

impl ChipModel {
    /// Create a chip model.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] when either mode uses more
    /// cores than `total_cores`, when the sprint mode is not strictly more
    /// capable than nominal, or for non-positive `c_eff` / negative
    /// `uncore_w`.
    pub fn new(
        total_cores: u32,
        nominal: ModeConfig,
        sprint: ModeConfig,
        c_eff: f64,
        uncore_w: f64,
    ) -> crate::Result<Self> {
        if nominal.active_cores > total_cores {
            return Err(PowerError::InvalidParameter {
                name: "nominal.active_cores",
                value: f64::from(nominal.active_cores),
                expected: "at most total_cores",
            });
        }
        if sprint.active_cores > total_cores {
            return Err(PowerError::InvalidParameter {
                name: "sprint.active_cores",
                value: f64::from(sprint.active_cores),
                expected: "at most total_cores",
            });
        }
        if sprint.active_cores <= nominal.active_cores
            && sprint.point.frequency_ghz() <= nominal.point.frequency_ghz()
        {
            return Err(PowerError::InvalidParameter {
                name: "sprint",
                value: f64::from(sprint.active_cores),
                expected: "a sprint mode with more cores or higher frequency than nominal",
            });
        }
        if c_eff <= 0.0 || !c_eff.is_finite() {
            return Err(PowerError::InvalidParameter {
                name: "c_eff",
                value: c_eff,
                expected: "a positive finite capacitance factor",
            });
        }
        if uncore_w < 0.0 || !uncore_w.is_finite() {
            return Err(PowerError::InvalidParameter {
                name: "uncore_w",
                value: uncore_w,
                expected: "a non-negative finite uncore power",
            });
        }
        Ok(ChipModel {
            total_cores,
            nominal,
            sprint,
            c_eff,
            uncore_w,
        })
    }

    /// The paper's chip: 12-core Xeon E5-2697 v2-class package.
    ///
    /// Nominal = 3 cores at 1.2 GHz, sprint = 12 cores at 2.7 GHz, with the
    /// [`VoltageScaling::xeon_e5_like`] V/f law. Calibrated so a sprint
    /// draws ≈ 130 W at full activity (the real part's TDP) and a nominal
    /// chip ≈ 35 W.
    #[must_use]
    pub fn xeon_e5_like() -> Self {
        let law = VoltageScaling::xeon_e5_like();
        let nominal = ModeConfig::new(3, law.point_at(1.2).expect("valid frequency"))
            .expect("valid nominal mode");
        let sprint = ModeConfig::new(12, law.point_at(2.7).expect("valid frequency"))
            .expect("valid sprint mode");
        ChipModel::new(12, nominal, sprint, 3.074, 30.0).expect("valid calibration")
    }

    /// Total physical cores on the package.
    #[must_use]
    pub fn total_cores(&self) -> u32 {
        self.total_cores
    }

    /// Configuration for an execution mode.
    #[must_use]
    pub fn mode(&self, mode: ExecutionMode) -> ModeConfig {
        match mode {
            ExecutionMode::Nominal => self.nominal,
            ExecutionMode::Sprint => self.sprint,
        }
    }

    /// Package power in watts at full workload activity.
    #[must_use]
    pub fn power_w(&self, mode: ExecutionMode) -> f64 {
        self.power_w_with_activity(mode, 1.0)
    }

    /// Package power in watts with a workload activity factor in `[0, 1]`
    /// scaling the dynamic component (memory-bound workloads switch less).
    #[must_use]
    pub fn power_w_with_activity(&self, mode: ExecutionMode, activity: f64) -> f64 {
        let cfg = self.mode(mode);
        let activity = activity.clamp(0.0, 1.0);
        self.uncore_w
            + f64::from(cfg.active_cores) * self.c_eff * cfg.point.dynamic_scale() * activity
    }

    /// Ratio of sprint to nominal package power at equal activity.
    #[must_use]
    pub fn sprint_power_ratio(&self) -> f64 {
        self.power_w(ExecutionMode::Sprint) / self.power_w(ExecutionMode::Nominal)
    }
}

/// Power model for one server: a chip plus platform overhead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerModel {
    chip: ChipModel,
    /// Memory, storage, fans, VRM and PSU losses, W.
    platform_w: f64,
}

impl ServerModel {
    /// Create a server model.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] for negative platform
    /// power.
    pub fn new(chip: ChipModel, platform_w: f64) -> crate::Result<Self> {
        if platform_w < 0.0 || !platform_w.is_finite() {
            return Err(PowerError::InvalidParameter {
                name: "platform_w",
                value: platform_w,
                expected: "a non-negative finite platform power",
            });
        }
        Ok(ServerModel { chip, platform_w })
    }

    /// The paper's server class: one agent's chip plus 58.75 W of platform
    /// overhead, which lands the sprint : nominal server power ratio at
    /// 2.0× — the "twice as much power" operating point of §2.2 that the
    /// breaker sizing depends on.
    #[must_use]
    pub fn paper_server() -> Self {
        ServerModel::new(ChipModel::xeon_e5_like(), 58.75).expect("valid calibration")
    }

    /// The chip inside this server.
    #[must_use]
    pub fn chip(&self) -> &ChipModel {
        &self.chip
    }

    /// Server wall power in watts at full activity.
    #[must_use]
    pub fn power_w(&self, mode: ExecutionMode) -> f64 {
        self.platform_w + self.chip.power_w(mode)
    }

    /// Server wall power with a workload activity factor.
    #[must_use]
    pub fn power_w_with_activity(&self, mode: ExecutionMode, activity: f64) -> f64 {
        self.platform_w + self.chip.power_w_with_activity(mode, activity)
    }

    /// Ratio of sprinting to nominal server power at equal activity —
    /// the quantity the breaker sizing in §2.2 calls "twice as much power".
    #[must_use]
    pub fn sprint_power_ratio(&self) -> f64 {
        self.power_w(ExecutionMode::Sprint) / self.power_w(ExecutionMode::Nominal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_config_validates() {
        let p = OperatingPoint::new(1.0, 0.8).unwrap();
        assert!(ModeConfig::new(0, p).is_err());
        assert!(ModeConfig::new(4, p).is_ok());
    }

    #[test]
    fn chip_model_validates() {
        let law = VoltageScaling::xeon_e5_like();
        let lo = ModeConfig::new(3, law.point_at(1.2).unwrap()).unwrap();
        let hi = ModeConfig::new(12, law.point_at(2.7).unwrap()).unwrap();
        // Too many cores.
        assert!(ChipModel::new(8, lo, hi, 3.0, 30.0).is_err());
        // Sprint not more capable.
        assert!(ChipModel::new(12, hi, lo, 3.0, 30.0).is_err());
        // Bad constants.
        assert!(ChipModel::new(12, lo, hi, 0.0, 30.0).is_err());
        assert!(ChipModel::new(12, lo, hi, 3.0, -1.0).is_err());
    }

    #[test]
    fn paper_chip_power_calibration() {
        let chip = ChipModel::xeon_e5_like();
        let sprint = chip.power_w(ExecutionMode::Sprint);
        let nominal = chip.power_w(ExecutionMode::Nominal);
        // Sprint lands near the real part's 130 W TDP.
        assert!((125.0..=135.0).contains(&sprint), "sprint = {sprint}");
        assert!((30.0..=40.0).contains(&nominal), "nominal = {nominal}");
    }

    #[test]
    fn paper_server_draws_about_twice_when_sprinting() {
        let server = ServerModel::paper_server();
        let ratio = server.sprint_power_ratio();
        assert!(
            (1.8..=2.1).contains(&ratio),
            "server sprint ratio = {ratio}, expected ≈2× per paper §2.2"
        );
    }

    #[test]
    fn activity_scales_only_dynamic_power() {
        let chip = ChipModel::xeon_e5_like();
        let idle = chip.power_w_with_activity(ExecutionMode::Sprint, 0.0);
        let full = chip.power_w_with_activity(ExecutionMode::Sprint, 1.0);
        assert!((idle - 30.0).abs() < 1e-9, "idle power is uncore only");
        assert!(full > idle);
        // Out-of-range activity is clamped, not extrapolated.
        assert_eq!(chip.power_w_with_activity(ExecutionMode::Sprint, 2.0), full);
        assert_eq!(
            chip.power_w_with_activity(ExecutionMode::Sprint, -1.0),
            idle
        );
    }

    #[test]
    fn lower_activity_narrows_power_ratio() {
        // Memory-bound workloads (low activity) show smaller normalized
        // power in Figure 1; the model must reproduce that trend.
        let server = ServerModel::paper_server();
        let ratio_full = server.power_w_with_activity(ExecutionMode::Sprint, 1.0)
            / server.power_w_with_activity(ExecutionMode::Nominal, 1.0);
        let ratio_low = server.power_w_with_activity(ExecutionMode::Sprint, 0.5)
            / server.power_w_with_activity(ExecutionMode::Nominal, 0.5);
        assert!(ratio_low < ratio_full);
        assert!(ratio_low > 1.0);
    }

    #[test]
    fn mode_accessors() {
        let chip = ChipModel::xeon_e5_like();
        assert_eq!(chip.mode(ExecutionMode::Nominal).active_cores(), 3);
        assert_eq!(chip.mode(ExecutionMode::Sprint).active_cores(), 12);
        assert_eq!(chip.total_cores(), 12);
        assert_eq!(
            chip.mode(ExecutionMode::Sprint).point().frequency_ghz(),
            2.7
        );
    }

    #[test]
    fn display_modes() {
        assert_eq!(ExecutionMode::Nominal.to_string(), "nominal");
        assert_eq!(ExecutionMode::Sprint.to_string(), "sprint");
    }

    #[test]
    fn server_model_validates() {
        assert!(ServerModel::new(ChipModel::xeon_e5_like(), -5.0).is_err());
    }
}
