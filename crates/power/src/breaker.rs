//! Circuit-breaker trip curves.
//!
//! Paper §2.2 and Figure 2: the rack's branch circuit is protected by a
//! UL489-class thermal-magnetic breaker. In the long-delay region the trip
//! time follows an `I²t` law, and manufacturing tolerance produces a
//! *band*: below the band the breaker never trips, above it the breaker
//! always trips, and inside it tripping is non-deterministic. For the
//! paper's breakers, a 150-second overload is tolerated up to 125 % of
//! rated current and always trips above 175 % — which, with sprinters
//! drawing 2× nominal power, yields `N_min = 0.25 N` and `N_max = 0.75 N`
//! (Figure 3).

use crate::PowerError;

/// Current multiple above which the instantaneous (magnetic) element trips
/// regardless of the thermal element.
const INSTANTANEOUS_MULTIPLE: f64 = 10.0;

/// Trip time of the instantaneous element, seconds.
const INSTANTANEOUS_TRIP_S: f64 = 0.01;

/// Region of the trip curve a given (current, duration) point falls in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TripRegion {
    /// Below the tolerance band: the breaker never trips.
    NotTripped,
    /// Inside the tolerance band: tripping is non-deterministic.
    NonDeterministic,
    /// Above the tolerance band: the breaker always trips.
    Tripped,
}

impl std::fmt::Display for TripRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TripRegion::NotTripped => write!(f, "not-tripped"),
            TripRegion::NonDeterministic => write!(f, "non-deterministic"),
            TripRegion::Tripped => write!(f, "tripped"),
        }
    }
}

/// A thermal-magnetic breaker trip curve with a manufacturing tolerance
/// band.
///
/// The long-delay thermal element trips after `t = k / (m² − 1)` seconds at
/// current multiple `m` of rated current; `k` spans `[k_fast, k_slow]`
/// across the tolerance band.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TripCurve {
    rated_current_a: f64,
    /// `I²t` constant of the fastest-tripping unit in the band.
    k_fast: f64,
    /// `I²t` constant of the slowest-tripping unit in the band.
    k_slow: f64,
}

impl TripCurve {
    /// Create a trip curve.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] for a non-positive rated
    /// current, non-positive constants, or `k_fast >= k_slow`.
    pub fn new(rated_current_a: f64, k_fast: f64, k_slow: f64) -> crate::Result<Self> {
        if rated_current_a <= 0.0 || !rated_current_a.is_finite() {
            return Err(PowerError::InvalidParameter {
                name: "rated_current_a",
                value: rated_current_a,
                expected: "a positive finite rated current",
            });
        }
        if k_fast <= 0.0 || !k_fast.is_finite() {
            return Err(PowerError::InvalidParameter {
                name: "k_fast",
                value: k_fast,
                expected: "a positive finite I²t constant",
            });
        }
        if k_slow <= k_fast || !k_slow.is_finite() {
            return Err(PowerError::InvalidParameter {
                name: "k_slow",
                value: k_slow,
                expected: "a finite I²t constant greater than k_fast",
            });
        }
        Ok(TripCurve {
            rated_current_a,
            k_fast,
            k_slow,
        })
    }

    /// A UL489-class breaker calibrated to the paper's operating point:
    /// at a 150-second overload the tolerance band spans 125 %–175 % of
    /// rated current (paper §2.2, Rockwell Bulletin 1489).
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] for a non-positive rated
    /// current.
    pub fn ul489(rated_current_a: f64) -> crate::Result<Self> {
        // k such that the band edges fall at 1.25× and 1.75× for t = 150 s:
        // k = t · (m² − 1).
        let k_fast = 150.0 * (1.25f64 * 1.25 - 1.0); // 84.375
        let k_slow = 150.0 * (1.75f64 * 1.75 - 1.0); // 309.375
        TripCurve::new(rated_current_a, k_fast, k_slow)
    }

    /// Rated current in amperes.
    #[must_use]
    pub fn rated_current_a(&self) -> f64 {
        self.rated_current_a
    }

    /// The curve of a unit whose calibration has drifted: both `I²t`
    /// constants scale by `1 + shift`, moving the whole tolerance band
    /// (negative shifts trip earlier than rated, positive later).
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] when the shift is at or
    /// below −1 or non-finite (the drifted constants must stay positive).
    pub fn with_band_shift(&self, shift: f64) -> crate::Result<Self> {
        if shift <= -1.0 || !shift.is_finite() {
            return Err(PowerError::InvalidParameter {
                name: "shift",
                value: shift,
                expected: "a finite relative shift above -1",
            });
        }
        let factor = 1.0 + shift;
        TripCurve::new(
            self.rated_current_a,
            self.k_fast * factor,
            self.k_slow * factor,
        )
    }

    /// Fastest (band lower edge) trip time at current multiple `m`, or
    /// `None` if that unit never trips at `m`.
    #[must_use]
    pub fn min_trip_time_s(&self, multiple: f64) -> Option<f64> {
        self.trip_time_with_k(multiple, self.k_fast)
    }

    /// Slowest (band upper edge) trip time at current multiple `m`, or
    /// `None` if no unit trips at `m`.
    #[must_use]
    pub fn max_trip_time_s(&self, multiple: f64) -> Option<f64> {
        self.trip_time_with_k(multiple, self.k_slow)
    }

    fn trip_time_with_k(&self, multiple: f64, k: f64) -> Option<f64> {
        if multiple <= 1.0 {
            return None;
        }
        if multiple >= INSTANTANEOUS_MULTIPLE {
            return Some(INSTANTANEOUS_TRIP_S);
        }
        Some(k / (multiple * multiple - 1.0))
    }

    /// Current multiple below which a sustained overload of `duration_s`
    /// never trips (band lower edge).
    #[must_use]
    pub fn never_trip_multiple(&self, duration_s: f64) -> f64 {
        (1.0 + self.k_fast / duration_s).sqrt()
    }

    /// Current multiple above which a sustained overload of `duration_s`
    /// always trips (band upper edge).
    #[must_use]
    pub fn always_trip_multiple(&self, duration_s: f64) -> f64 {
        (1.0 + self.k_slow / duration_s).sqrt()
    }

    /// Region for a sustained overload at `multiple` of rated current for
    /// `duration_s`.
    #[must_use]
    pub fn region(&self, multiple: f64, duration_s: f64) -> TripRegion {
        if multiple >= INSTANTANEOUS_MULTIPLE {
            return TripRegion::Tripped;
        }
        if multiple < self.never_trip_multiple(duration_s) {
            TripRegion::NotTripped
        } else if multiple <= self.always_trip_multiple(duration_s) {
            TripRegion::NonDeterministic
        } else {
            TripRegion::Tripped
        }
    }

    /// Probability of tripping for a sustained overload at `multiple` of
    /// rated current for `duration_s`, linear across the tolerance band —
    /// the current-domain analogue of the paper's Equation 11.
    #[must_use]
    pub fn trip_probability(&self, multiple: f64, duration_s: f64) -> f64 {
        let lo = self.never_trip_multiple(duration_s);
        let hi = self.always_trip_multiple(duration_s);
        if multiple >= INSTANTANEOUS_MULTIPLE {
            return 1.0;
        }
        ((multiple - lo) / (hi - lo)).clamp(0.0, 1.0)
    }
}

/// The sprinter counts at which a rack's breaker enters and exits its
/// tolerance band (the paper's `N_min` and `N_max`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SprinterBand {
    /// Sprinters below this never trip the breaker.
    pub n_min: u32,
    /// Sprinters above this always trip the breaker.
    pub n_max: u32,
}

impl SprinterBand {
    /// Derive the band for `n_chips` identical servers whose nominal and
    /// sprint powers are given, on a breaker rated for the all-nominal
    /// load, with sprints lasting `epoch_s`.
    ///
    /// Current is proportional to power at fixed line voltage, so the
    /// current multiple with `n` sprinters is
    /// `m(n) = 1 + n·(P_sprint − P_nominal) / (N·P_nominal)`.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] when `n_chips` is 0, when
    /// `sprint_w <= nominal_w`, or for non-positive powers/durations.
    pub fn derive(
        curve: &TripCurve,
        n_chips: u32,
        nominal_w: f64,
        sprint_w: f64,
        epoch_s: f64,
    ) -> crate::Result<Self> {
        if n_chips == 0 {
            return Err(PowerError::InvalidParameter {
                name: "n_chips",
                value: 0.0,
                expected: "at least one chip",
            });
        }
        if nominal_w <= 0.0 || !nominal_w.is_finite() {
            return Err(PowerError::InvalidParameter {
                name: "nominal_w",
                value: nominal_w,
                expected: "a positive finite nominal power",
            });
        }
        if sprint_w <= nominal_w || !sprint_w.is_finite() {
            return Err(PowerError::InvalidParameter {
                name: "sprint_w",
                value: sprint_w,
                expected: "a finite sprint power above nominal",
            });
        }
        if epoch_s <= 0.0 || !epoch_s.is_finite() {
            return Err(PowerError::InvalidParameter {
                name: "epoch_s",
                value: epoch_s,
                expected: "a positive finite sprint duration",
            });
        }
        let n = f64::from(n_chips);
        let extra_per_sprinter = (sprint_w - nominal_w) / (n * nominal_w);
        let to_sprinters = |multiple: f64| -> u32 {
            (((multiple - 1.0) / extra_per_sprinter).round().max(0.0) as u32).min(n_chips)
        };
        Ok(SprinterBand {
            n_min: to_sprinters(curve.never_trip_multiple(epoch_s)),
            n_max: to_sprinters(curve.always_trip_multiple(epoch_s)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ul489() -> TripCurve {
        TripCurve::ul489(100.0).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(TripCurve::new(0.0, 1.0, 2.0).is_err());
        assert!(TripCurve::new(10.0, 0.0, 2.0).is_err());
        assert!(TripCurve::new(10.0, 2.0, 1.0).is_err());
        assert!(TripCurve::ul489(-5.0).is_err());
    }

    #[test]
    fn band_edges_at_150s_match_ul489_rating() {
        let c = ul489();
        assert!((c.never_trip_multiple(150.0) - 1.25).abs() < 1e-9);
        assert!((c.always_trip_multiple(150.0) - 1.75).abs() < 1e-9);
    }

    #[test]
    fn no_trip_at_or_below_rated() {
        let c = ul489();
        assert_eq!(c.min_trip_time_s(1.0), None);
        assert_eq!(c.max_trip_time_s(0.5), None);
        assert_eq!(c.region(1.0, 1e9), TripRegion::NotTripped);
        assert_eq!(c.trip_probability(1.0, 3600.0), 0.0);
    }

    #[test]
    fn longer_overloads_trip_at_lower_currents() {
        let c = ul489();
        assert!(c.never_trip_multiple(600.0) < c.never_trip_multiple(150.0));
        assert!(c.always_trip_multiple(600.0) < c.always_trip_multiple(150.0));
    }

    #[test]
    fn short_circuit_always_trips_fast() {
        let c = ul489();
        assert_eq!(c.region(15.0, 0.001), TripRegion::Tripped);
        assert_eq!(c.min_trip_time_s(12.0), Some(0.01));
        assert_eq!(c.trip_probability(20.0, 0.001), 1.0);
    }

    #[test]
    fn trip_probability_is_monotone_in_current() {
        let c = ul489();
        let mut last = -1.0;
        for i in 0..50 {
            let m = 1.0 + i as f64 * 0.05;
            let p = c.trip_probability(m, 150.0);
            assert!(p >= last, "P(trip) must not decrease with current");
            assert!((0.0..=1.0).contains(&p));
            last = p;
        }
    }

    #[test]
    fn trip_probability_band_interior() {
        let c = ul489();
        // Midpoint of the [1.25, 1.75] band at 150 s.
        assert!((c.trip_probability(1.5, 150.0) - 0.5).abs() < 1e-9);
        assert_eq!(c.region(1.5, 150.0), TripRegion::NonDeterministic);
    }

    #[test]
    fn trip_time_follows_i2t() {
        let c = ul489();
        // t = k_fast / (m² − 1).
        let t = c.min_trip_time_s(2.0).unwrap();
        assert!((t - 84.375 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn sprinter_band_reproduces_paper_quarters() {
        // 1000 chips, sprinters draw exactly 2× nominal, breaker rated at
        // the all-nominal load: N_min = 250, N_max = 750 (paper §2.2).
        let c = ul489();
        let band = SprinterBand::derive(&c, 1000, 100.0, 200.0, 150.0).unwrap();
        assert_eq!(band.n_min, 250);
        assert_eq!(band.n_max, 750);
    }

    #[test]
    fn sprinter_band_scales_with_population() {
        let c = ul489();
        let band = SprinterBand::derive(&c, 400, 100.0, 200.0, 150.0).unwrap();
        assert_eq!(band.n_min, 100);
        assert_eq!(band.n_max, 300);
    }

    #[test]
    fn hungrier_sprinters_shrink_the_band() {
        let c = ul489();
        // Sprinters drawing 3× nominal reach the band with fewer chips.
        let band = SprinterBand::derive(&c, 1000, 100.0, 300.0, 150.0).unwrap();
        assert_eq!(band.n_min, 125);
        assert_eq!(band.n_max, 375);
    }

    #[test]
    fn sprinter_band_validates() {
        let c = ul489();
        assert!(SprinterBand::derive(&c, 0, 100.0, 200.0, 150.0).is_err());
        assert!(SprinterBand::derive(&c, 10, 100.0, 90.0, 150.0).is_err());
        assert!(SprinterBand::derive(&c, 10, 0.0, 200.0, 150.0).is_err());
        assert!(SprinterBand::derive(&c, 10, 100.0, 200.0, 0.0).is_err());
    }

    #[test]
    fn band_clamps_to_population() {
        let c = ul489();
        // Tiny sprint increments: even all chips sprinting stays under the
        // band, so both limits clamp to N.
        let band = SprinterBand::derive(&c, 10, 100.0, 100.1, 150.0).unwrap();
        assert_eq!(band.n_min, 10);
        assert_eq!(band.n_max, 10);
    }

    #[test]
    fn region_display() {
        assert_eq!(TripRegion::NotTripped.to_string(), "not-tripped");
        assert_eq!(
            TripRegion::NonDeterministic.to_string(),
            "non-deterministic"
        );
        assert_eq!(TripRegion::Tripped.to_string(), "tripped");
    }
}
