//! Rack assembly: servers, breaker, UPS — and the derived game parameters.
//!
//! The sprinting game is parameterized by `N_min`, `N_max`, `p_c`, `p_r`,
//! and the epoch length (paper Table 2). Rather than assuming those values,
//! [`RackConfig::derive_game_parameters`] computes them from the physical
//! models: the thermal package yields the sprint/cooling durations, the
//! breaker's trip curve yields the sprinter band, and the UPS recharge
//! profile yields recovery persistence.

use crate::breaker::{SprinterBand, TripCurve};
use crate::chip::{ExecutionMode, ServerModel};
use crate::thermal::{SprintEnvelope, ThermalPackage};
use crate::ups::UpsBattery;
use crate::PowerError;

/// Nominal branch-circuit voltage used to convert power to current.
const LINE_VOLTAGE_V: f64 = 230.0;

/// A rack of identical sprinting servers behind one breaker and one UPS.
#[derive(Debug, Clone, PartialEq)]
pub struct RackConfig {
    n_servers: u32,
    server: ServerModel,
    package: ThermalPackage,
    breaker: TripCurve,
    ups: UpsBattery,
}

impl RackConfig {
    /// Assemble a rack.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] when `n_servers` is 0 or
    /// the UPS cannot carry the rack's all-sprint load for one epoch-scale
    /// discharge (150 s) — such a rack could not complete in-progress
    /// sprints during an emergency (paper §2.2).
    pub fn new(
        n_servers: u32,
        server: ServerModel,
        package: ThermalPackage,
        breaker: TripCurve,
        ups: UpsBattery,
    ) -> crate::Result<Self> {
        if n_servers == 0 {
            return Err(PowerError::InvalidParameter {
                name: "n_servers",
                value: 0.0,
                expected: "at least one server",
            });
        }
        let all_sprint_w = f64::from(n_servers) * server.power_w(ExecutionMode::Sprint);
        if !ups.can_carry(all_sprint_w, 150.0) {
            return Err(PowerError::InvalidParameter {
                name: "ups",
                value: ups.capacity_j(),
                expected: "a UPS able to carry the all-sprint rack load for one 150 s epoch",
            });
        }
        Ok(RackConfig {
            n_servers,
            server,
            package,
            breaker,
            ups,
        })
    }

    /// The paper's rack: `n_servers` paper-class servers, a UL489 breaker
    /// rated for the all-nominal load, the paraffin thermal package, and
    /// the Table-2 UPS.
    ///
    /// # Panics
    ///
    /// Panics if `n_servers` is 0 (the paper rack has 1000).
    #[must_use]
    pub fn paper_rack(n_servers: u32) -> Self {
        assert!(n_servers > 0, "a rack needs at least one server");
        let server = ServerModel::paper_server();
        let rated_current =
            f64::from(n_servers) * server.power_w(ExecutionMode::Nominal) / LINE_VOLTAGE_V;
        let breaker = TripCurve::ul489(rated_current).expect("positive rated current");
        // Scale UPS capacity with rack size so the all-sprint discharge of
        // one epoch always fits (the paper battery covers 1000 servers).
        let capacity = f64::from(n_servers) * server.power_w(ExecutionMode::Sprint) * 150.0 * 1.27;
        let ups = UpsBattery::new(capacity, UpsBattery::paper_battery().recharge_ratio())
            .expect("valid capacity");
        RackConfig::new(
            n_servers,
            server,
            ThermalPackage::paper_package(),
            breaker,
            ups,
        )
        .expect("paper calibration is self-consistent")
    }

    /// Number of servers (agents) in the rack.
    #[must_use]
    pub fn n_servers(&self) -> u32 {
        self.n_servers
    }

    /// The server model.
    #[must_use]
    pub fn server(&self) -> &ServerModel {
        &self.server
    }

    /// The thermal package on each chip.
    #[must_use]
    pub fn package(&self) -> &ThermalPackage {
        &self.package
    }

    /// The branch-circuit breaker.
    #[must_use]
    pub fn breaker(&self) -> &TripCurve {
        &self.breaker
    }

    /// The rack UPS.
    #[must_use]
    pub fn ups(&self) -> &UpsBattery {
        &self.ups
    }

    /// Total rack power with `n_sprinters` servers sprinting, watts.
    #[must_use]
    pub fn rack_power_w(&self, n_sprinters: u32) -> f64 {
        let n_sprinters = n_sprinters.min(self.n_servers);
        let nominal = self.server.power_w(ExecutionMode::Nominal);
        let sprint = self.server.power_w(ExecutionMode::Sprint);
        f64::from(self.n_servers - n_sprinters) * nominal + f64::from(n_sprinters) * sprint
    }

    /// Rack current as a multiple of the breaker's rated current with
    /// `n_sprinters` sprinting.
    #[must_use]
    pub fn current_multiple(&self, n_sprinters: u32) -> f64 {
        (self.rack_power_w(n_sprinters) / LINE_VOLTAGE_V) / self.breaker.rated_current_a()
    }

    /// Derive the game parameters of the paper's Table 2 from physics.
    ///
    /// # Panics
    ///
    /// Panics if the physical calibration is inconsistent (e.g. a package
    /// that can never finish a sprint) — the provided constructors cannot
    /// produce such a rack.
    #[must_use]
    pub fn derive_game_parameters(&self) -> DerivedGameParameters {
        let envelope = SprintEnvelope::derive(self.server.chip(), &self.package)
            .expect("paper-class packages always melt under sprint power");
        // Breaker datasheets specify overload tolerance at quantized
        // reference durations (UL489: 150 s); read the band at the nearest
        // 30 s reference rather than the raw simulated sprint duration.
        let band_epoch_s = ((envelope.sprint_duration_s / 30.0).round() * 30.0).max(30.0);
        let band = SprinterBand::derive(
            &self.breaker,
            self.n_servers,
            self.server.power_w(ExecutionMode::Nominal),
            self.server.power_w(ExecutionMode::Sprint),
            band_epoch_s,
        )
        .expect("server powers are validated positive and ordered");
        DerivedGameParameters {
            n_agents: self.n_servers,
            n_min: band.n_min,
            n_max: band.n_max,
            p_cooling: envelope.p_cooling(),
            p_recovery: self.ups.p_recovery(),
            epoch_seconds: envelope.sprint_duration_s,
            cooling_seconds: envelope.cooling_duration_s,
        }
    }
}

/// Game parameters derived from a physical rack — the contents of the
/// paper's Table 2, computed rather than assumed.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DerivedGameParameters {
    /// Number of agents `N`.
    pub n_agents: u32,
    /// Sprinters below this never trip the breaker.
    pub n_min: u32,
    /// Sprinters above this always trip the breaker.
    pub n_max: u32,
    /// Probability of staying in the cooling state each epoch.
    pub p_cooling: f64,
    /// Probability of staying in the recovery state each epoch.
    pub p_recovery: f64,
    /// Epoch (= max sprint) duration, seconds.
    pub epoch_seconds: f64,
    /// Chip cooling duration, seconds.
    pub cooling_seconds: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rack_derives_table2() {
        let rack = RackConfig::paper_rack(1000);
        let p = rack.derive_game_parameters();
        assert_eq!(p.n_agents, 1000);
        assert_eq!(p.n_min, 250, "paper: N_min = 0.25 N");
        assert_eq!(p.n_max, 750, "paper: N_max = 0.75 N");
        assert!((p.p_cooling - 0.5).abs() < 0.1, "p_c = {}", p.p_cooling);
        assert!((p.p_recovery - 0.88).abs() < 0.01, "p_r = {}", p.p_recovery);
        assert!(
            (120.0..=180.0).contains(&p.epoch_seconds),
            "epoch = {} s",
            p.epoch_seconds
        );
    }

    #[test]
    fn parameters_scale_with_rack_size() {
        let p = RackConfig::paper_rack(400).derive_game_parameters();
        assert_eq!(p.n_min, 100);
        assert_eq!(p.n_max, 300);
    }

    #[test]
    fn rack_power_is_linear_in_sprinters() {
        let rack = RackConfig::paper_rack(100);
        let p0 = rack.rack_power_w(0);
        let p50 = rack.rack_power_w(50);
        let p100 = rack.rack_power_w(100);
        assert!((p50 - (p0 + p100) / 2.0).abs() < 1e-6);
        // All sprinting doubles the all-nominal load (2× servers).
        assert!((p100 / p0 - 2.0).abs() < 0.01);
        // Clamps beyond the population.
        assert_eq!(rack.rack_power_w(1000), p100);
    }

    #[test]
    fn current_multiple_at_band_edges() {
        let rack = RackConfig::paper_rack(1000);
        assert!((rack.current_multiple(0) - 1.0).abs() < 1e-9);
        assert!((rack.current_multiple(250) - 1.25).abs() < 0.01);
        assert!((rack.current_multiple(750) - 1.75).abs() < 0.01);
    }

    #[test]
    fn undersized_ups_is_rejected() {
        let server = ServerModel::paper_server();
        let breaker = TripCurve::ul489(100.0).unwrap();
        let tiny_ups = UpsBattery::new(1000.0, 8.0).unwrap();
        let r = RackConfig::new(
            100,
            server,
            ThermalPackage::paper_package(),
            breaker,
            tiny_ups,
        );
        assert!(r.is_err());
    }

    #[test]
    fn zero_servers_rejected() {
        let server = ServerModel::paper_server();
        let breaker = TripCurve::ul489(100.0).unwrap();
        let ups = UpsBattery::paper_battery();
        assert!(RackConfig::new(0, server, ThermalPackage::paper_package(), breaker, ups).is_err());
    }

    #[test]
    fn derived_parameters_serde_round_trip() {
        let p = RackConfig::paper_rack(100).derive_game_parameters();
        let json = serde_json::to_string(&p).unwrap();
        let back: DerivedGameParameters = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn accessors_expose_components() {
        let rack = RackConfig::paper_rack(10);
        assert_eq!(rack.n_servers(), 10);
        assert!(rack.breaker().rated_current_a() > 0.0);
        assert!(rack.ups().capacity_j() > 0.0);
        assert_eq!(rack.package().ambient_c(), 25.0);
        assert!(rack.server().sprint_power_ratio() > 1.9);
    }
}
