use std::error::Error;
use std::fmt;

/// Error raised when a physical model is configured outside its valid
/// operating envelope.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PowerError {
    /// A model parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Rejected value.
        value: f64,
        /// Human-readable description of the valid domain.
        expected: &'static str,
    },
    /// A transient simulation failed to reach the queried event
    /// (e.g. the chip never overheats because the sprint is sustainable).
    NoEvent {
        /// Description of the event that was not reached.
        what: &'static str,
    },
}

impl fmt::Display for PowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerError::InvalidParameter {
                name,
                value,
                expected,
            } => write!(
                f,
                "parameter `{name}` = {value} is invalid: expected {expected}"
            ),
            PowerError::NoEvent { what } => {
                write!(f, "simulation never reached event: {what}")
            }
        }
    }
}

impl Error for PowerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = PowerError::InvalidParameter {
            name: "mass",
            value: -1.0,
            expected: "a positive mass in kg",
        };
        assert!(e.to_string().contains("mass"));
        let e = PowerError::NoEvent { what: "melt onset" };
        assert!(e.to_string().contains("melt onset"));
    }

    #[test]
    fn is_error_send_sync() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<PowerError>();
    }
}
