//! Voltage/frequency operating points.
//!
//! Sprints raise both core count and clock rate (paper §3.1: three cores at
//! 1.2 GHz in normal mode, twelve at 2.7 GHz in a sprint). Dynamic power
//! scales as `V²·f`, so the voltage required at each frequency is the other
//! half of the power model.

use crate::PowerError;

/// A DVFS operating point: a frequency and the voltage required to sustain
/// it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    frequency_ghz: f64,
    voltage_v: f64,
}

impl OperatingPoint {
    /// Create an operating point.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] for non-positive frequency
    /// or voltage.
    pub fn new(frequency_ghz: f64, voltage_v: f64) -> crate::Result<Self> {
        if frequency_ghz <= 0.0 || !frequency_ghz.is_finite() {
            return Err(PowerError::InvalidParameter {
                name: "frequency_ghz",
                value: frequency_ghz,
                expected: "a positive finite frequency in GHz",
            });
        }
        if voltage_v <= 0.0 || !voltage_v.is_finite() {
            return Err(PowerError::InvalidParameter {
                name: "voltage_v",
                value: voltage_v,
                expected: "a positive finite voltage in volts",
            });
        }
        Ok(OperatingPoint {
            frequency_ghz,
            voltage_v,
        })
    }

    /// Clock frequency in GHz.
    #[must_use]
    pub fn frequency_ghz(&self) -> f64 {
        self.frequency_ghz
    }

    /// Supply voltage in volts.
    #[must_use]
    pub fn voltage_v(&self) -> f64 {
        self.voltage_v
    }

    /// Dynamic-power scale factor `V²·f` of this point, in V²·GHz.
    ///
    /// Per-core dynamic power is `C_eff · V² · f`; this method exposes the
    /// `V²·f` part so callers can compare points without fixing `C_eff`.
    #[must_use]
    pub fn dynamic_scale(&self) -> f64 {
        self.voltage_v * self.voltage_v * self.frequency_ghz
    }
}

/// Linear voltage/frequency law `V(f) = v0 + slope · f`, the standard
/// first-order DVFS model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoltageScaling {
    v0: f64,
    slope_v_per_ghz: f64,
}

impl VoltageScaling {
    /// Create a linear V/f law.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] for a non-positive base
    /// voltage or negative slope.
    pub fn new(v0: f64, slope_v_per_ghz: f64) -> crate::Result<Self> {
        if v0 <= 0.0 || !v0.is_finite() {
            return Err(PowerError::InvalidParameter {
                name: "v0",
                value: v0,
                expected: "a positive finite base voltage",
            });
        }
        if slope_v_per_ghz < 0.0 || !slope_v_per_ghz.is_finite() {
            return Err(PowerError::InvalidParameter {
                name: "slope_v_per_ghz",
                value: slope_v_per_ghz,
                expected: "a non-negative finite slope",
            });
        }
        Ok(VoltageScaling {
            v0,
            slope_v_per_ghz,
        })
    }

    /// V/f law calibrated to the paper's Xeon E5-2697 v2-class part:
    /// ≈ 0.70 V at 1.2 GHz and ≈ 1.00 V at 2.7 GHz.
    #[must_use]
    pub fn xeon_e5_like() -> Self {
        VoltageScaling {
            v0: 0.46,
            slope_v_per_ghz: 0.2,
        }
    }

    /// Operating point at frequency `f` under this law.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] for a non-positive
    /// frequency.
    pub fn point_at(&self, frequency_ghz: f64) -> crate::Result<OperatingPoint> {
        OperatingPoint::new(
            frequency_ghz,
            self.v0 + self.slope_v_per_ghz * frequency_ghz,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid_points() {
        assert!(OperatingPoint::new(0.0, 1.0).is_err());
        assert!(OperatingPoint::new(1.0, 0.0).is_err());
        assert!(OperatingPoint::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn dynamic_scale_grows_superlinearly_with_frequency() {
        let law = VoltageScaling::xeon_e5_like();
        let slow = law.point_at(1.2).unwrap();
        let fast = law.point_at(2.7).unwrap();
        let freq_ratio = 2.7 / 1.2;
        let power_ratio = fast.dynamic_scale() / slow.dynamic_scale();
        // Because voltage also rises, per-core power grows faster than f.
        assert!(power_ratio > freq_ratio);
    }

    #[test]
    fn xeon_law_matches_calibration_points() {
        let law = VoltageScaling::xeon_e5_like();
        assert!((law.point_at(1.2).unwrap().voltage_v() - 0.70).abs() < 1e-12);
        assert!((law.point_at(2.7).unwrap().voltage_v() - 1.00).abs() < 1e-12);
    }

    #[test]
    fn voltage_scaling_validates() {
        assert!(VoltageScaling::new(0.0, 0.1).is_err());
        assert!(VoltageScaling::new(0.5, -0.1).is_err());
        assert!(VoltageScaling::new(0.5, 0.0).is_ok());
    }

    #[test]
    fn point_accessors() {
        let p = OperatingPoint::new(2.0, 0.9).unwrap();
        assert_eq!(p.frequency_ghz(), 2.0);
        assert_eq!(p.voltage_v(), 0.9);
        assert!((p.dynamic_scale() - 0.81 * 2.0).abs() < 1e-12);
    }
}
