//! Property-based tests for the physical substrate.

use proptest::prelude::*;

use sprint_power::breaker::{SprinterBand, TripCurve};
use sprint_power::chip::{ChipModel, ExecutionMode};
use sprint_power::network::ThermalNetwork;
use sprint_power::pcm::{PcmHeatSink, PhaseChangeMaterial};
use sprint_power::thermal::{ThermalPackage, ThermalState};
use sprint_power::ups::UpsBattery;

proptest! {
    #[test]
    fn trip_probability_monotone_in_current(
        rated in 10.0f64..1000.0,
        m1 in 0.0f64..12.0,
        m2 in 0.0f64..12.0,
        duration in 1.0f64..1000.0,
    ) {
        let c = TripCurve::ul489(rated).unwrap();
        let (lo, hi) = if m1 <= m2 { (m1, m2) } else { (m2, m1) };
        prop_assert!(c.trip_probability(lo, duration) <= c.trip_probability(hi, duration) + 1e-12);
        prop_assert!((0.0..=1.0).contains(&c.trip_probability(m1, duration)));
    }

    #[test]
    fn longer_overloads_never_raise_the_band(
        t1 in 1.0f64..2000.0,
        t2 in 1.0f64..2000.0,
    ) {
        let c = TripCurve::ul489(100.0).unwrap();
        let (short, long) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        prop_assert!(c.never_trip_multiple(long) <= c.never_trip_multiple(short) + 1e-12);
        prop_assert!(c.always_trip_multiple(long) <= c.always_trip_multiple(short) + 1e-12);
    }

    #[test]
    fn sprinter_band_ordering_and_bounds(
        n in 1u32..5000,
        nominal in 10.0f64..500.0,
        extra in 1.0f64..500.0,
        epoch in 10.0f64..600.0,
    ) {
        let c = TripCurve::ul489(100.0).unwrap();
        let band = SprinterBand::derive(&c, n, nominal, nominal + extra, epoch).unwrap();
        prop_assert!(band.n_min <= band.n_max);
        prop_assert!(band.n_max <= n);
    }

    #[test]
    fn chip_power_monotone_in_activity(a1 in 0.0f64..=1.0, a2 in 0.0f64..=1.0) {
        let chip = ChipModel::xeon_e5_like();
        let (lo, hi) = if a1 <= a2 { (a1, a2) } else { (a2, a1) };
        for mode in ExecutionMode::ALL {
            prop_assert!(
                chip.power_w_with_activity(mode, lo)
                    <= chip.power_w_with_activity(mode, hi) + 1e-12
            );
        }
        // Sprint dominates nominal at equal activity.
        prop_assert!(
            chip.power_w_with_activity(ExecutionMode::Sprint, a1)
                >= chip.power_w_with_activity(ExecutionMode::Nominal, a1)
        );
    }

    #[test]
    fn thermal_step_moves_toward_equilibrium(
        start_temp in 20.0f64..44.0,
        power in 0.0f64..200.0,
    ) {
        let pkg = ThermalPackage::paper_package();
        let mut state = ThermalState {
            node_temp_c: start_temp,
            melt_fraction: 0.0,
        };
        let target = pkg.steady_node_temp_c(power);
        let before = (state.node_temp_c - target).abs();
        // Small steps below the melting point: distance to the sensible
        // steady state never increases.
        for _ in 0..16 {
            if state.node_temp_c >= pkg.sink().material().melt_point_c() {
                break;
            }
            pkg.step(&mut state, power, 0.05);
        }
        if state.node_temp_c < pkg.sink().material().melt_point_c() {
            let after = (state.node_temp_c - target).abs();
            prop_assert!(after <= before + 1e-9);
        }
        // Melt fraction stays physical regardless.
        prop_assert!((0.0..=1.0).contains(&state.melt_fraction));
    }

    #[test]
    fn larger_pcm_charges_sprint_longer(
        mass1 in 0.01f64..0.2,
        mass2 in 0.01f64..0.2,
    ) {
        prop_assume!((mass1 - mass2).abs() > 0.005);
        let (small, large) = if mass1 < mass2 { (mass1, mass2) } else { (mass2, mass1) };
        let chip = ChipModel::xeon_e5_like();
        let nominal = chip.power_w(ExecutionMode::Nominal);
        let sprint = chip.power_w(ExecutionMode::Sprint);
        let duration = |mass: f64| {
            let sink = PcmHeatSink::new(PhaseChangeMaterial::paraffin_wax(), mass).unwrap();
            ThermalPackage::new(sink, 0.05, 0.30, 25.0, 150.0)
                .unwrap()
                .sprint_duration_s(nominal, sprint)
                .unwrap()
        };
        prop_assert!(duration(large) > duration(small));
    }

    #[test]
    fn battery_soc_monotone_and_bounded(
        ratio in 1.0f64..20.0,
        e1 in 0.0f64..60.0,
        e2 in 0.0f64..60.0,
    ) {
        let b = UpsBattery::new(1e6, ratio).unwrap();
        let (lo, hi) = if e1 <= e2 { (e1, e2) } else { (e2, e1) };
        prop_assert!(b.state_of_charge_after(lo) <= b.state_of_charge_after(hi) + 1e-12);
        prop_assert!((0.0..=1.0).contains(&b.state_of_charge_after(e1)));
        // p_recovery consistent with recovery duration.
        let pr = b.p_recovery();
        prop_assert!((0.0..1.0).contains(&pr));
        prop_assert!((1.0 / (1.0 - pr) - b.recovery_epochs(1.0).max(1.0)).abs() < 1e-9);
    }

    #[test]
    fn network_steady_state_superposition(
        p1 in 0.0f64..100.0,
        p2 in 0.0f64..100.0,
    ) {
        // Linear RC networks obey superposition in the injected power
        // (temperatures above ambient add).
        let build = || {
            let mut net = ThermalNetwork::new(0.0).unwrap();
            let a = net.add_node("a", 10.0).unwrap();
            let b = net.add_node("b", 20.0).unwrap();
            net.connect(a, b, 0.2).unwrap();
            net.connect_ambient(b, 0.5).unwrap();
            (net, a, b)
        };
        let (net, a, b) = build();
        let mut inj1 = vec![0.0; 2];
        inj1[a] = p1;
        let mut inj2 = vec![0.0; 2];
        inj2[b] = p2;
        let mut both = vec![0.0; 2];
        both[a] = p1;
        both[b] = p2;
        let t1 = net.steady_state(&inj1).unwrap();
        let t2 = net.steady_state(&inj2).unwrap();
        let tb = net.steady_state(&both).unwrap();
        for i in 0..2 {
            prop_assert!((t1[i] + t2[i] - tb[i]).abs() < 1e-9);
        }
    }
}

proptest! {
    #[test]
    fn drifted_curve_stays_a_valid_band(
        rated in 10.0f64..1000.0,
        shift in -0.9f64..1.0,
        m in 0.0f64..12.0,
        duration in 1.0f64..1000.0,
    ) {
        let c = TripCurve::ul489(rated).unwrap();
        let d = c.with_band_shift(shift).unwrap();
        prop_assert!((0.0..=1.0).contains(&d.trip_probability(m, duration)));
        prop_assert!(d.never_trip_multiple(duration) <= d.always_trip_multiple(duration));
        // Early-tripping drift (shift < 0) never lowers the trip
        // probability; late-tripping drift never raises it.
        let base = c.trip_probability(m, duration);
        let drifted = d.trip_probability(m, duration);
        if shift <= 0.0 {
            prop_assert!(drifted >= base - 1e-12);
        } else {
            prop_assert!(drifted <= base + 1e-12);
        }
        // Zero shift is the identity.
        let zero = c.with_band_shift(0.0).unwrap();
        prop_assert!((zero.trip_probability(m, duration) - base).abs() < 1e-12);
    }
}

#[test]
fn band_shift_rejects_collapsing_drift() {
    let c = TripCurve::ul489(100.0).unwrap();
    assert!(c.with_band_shift(-1.0).is_err());
    assert!(c.with_band_shift(f64::NAN).is_err());
    assert!(c.with_band_shift(0.5).is_ok());
}
