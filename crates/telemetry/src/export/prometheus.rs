//! Prometheus text exposition for the metrics registry.
//!
//! Renders a [`MetricsSnapshot`] in the Prometheus text format
//! (version 0.0.4): one `# TYPE` header per metric, counters suffixed
//! `_total`, histograms expanded into cumulative `_bucket{le="..."}`
//! sample series plus `_sum`/`_count`, and time series summarized as
//! `_count` / `_sum` / `_last` gauges (Prometheus has no native series
//! type; the scraper's own TSDB is the series store).
//!
//! Hygiene rules, pinned by golden tests:
//! - metric names are sanitized to `[a-zA-Z_:][a-zA-Z0-9_:]*` (our
//!   dotted names become underscored: `engine.trips` → `engine_trips`);
//! - label values escape backslash, double-quote, and newline;
//! - output is name-sorted (inherited from the snapshot's `BTreeMap`s)
//!   and therefore byte-stable for a given snapshot.

use std::fmt::Write as _;

use crate::registry::MetricsSnapshot;

/// Render a snapshot as Prometheus text exposition with no extra labels.
#[must_use]
pub fn prometheus_text(snapshot: &MetricsSnapshot) -> String {
    prometheus_text_with_labels(snapshot, &[])
}

/// Render a snapshot as Prometheus text exposition, attaching the given
/// constant labels to every sample (e.g. `[("run", "sweep-42")]`).
#[must_use]
pub fn prometheus_text_with_labels(snapshot: &MetricsSnapshot, labels: &[(&str, &str)]) -> String {
    let base = render_labels(labels, None);
    let mut out = String::new();

    for (name, value) in &snapshot.counters {
        let name = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {name}_total counter");
        let _ = writeln!(out, "{name}_total{base} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let name = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name}{base} {}", fmt_f64(*value));
    }
    for (name, hist) in &snapshot.histograms {
        let name = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (bound, count) in hist.bounds().iter().zip(hist.counts()) {
            cumulative += count;
            let le = render_labels(labels, Some(("le", &fmt_f64(*bound))));
            let _ = writeln!(out, "{name}_bucket{le} {cumulative}");
        }
        // The overflow bucket closes the cumulative series at +Inf.
        let le = render_labels(labels, Some(("le", "+Inf")));
        let _ = writeln!(out, "{name}_bucket{le} {}", hist.count());
        let _ = writeln!(out, "{name}_sum{base} {}", fmt_f64(hist.sum()));
        let _ = writeln!(out, "{name}_count{base} {}", hist.count());
    }
    for (name, values) in &snapshot.series {
        let name = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {name}_count gauge");
        let _ = writeln!(out, "{name}_count{base} {}", values.len());
        let _ = writeln!(out, "# TYPE {name}_sum gauge");
        let _ = writeln!(
            out,
            "{name}_sum{base} {}",
            fmt_f64(values.iter().sum::<f64>())
        );
        let _ = writeln!(out, "# TYPE {name}_last gauge");
        let _ = writeln!(
            out,
            "{name}_last{base} {}",
            fmt_f64(values.last().copied().unwrap_or(0.0))
        );
    }
    out
}

/// Sanitize a metric name into the Prometheus charset
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`; every invalid byte becomes `_`.
fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let valid =
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if valid { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escape a label value: backslash, double-quote, and newline, per the
/// exposition format.
fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Render `{k="v",...}` for the constant labels plus an optional extra
/// (the histogram `le`); empty when there are no labels at all.
fn render_labels(labels: &[(&str, &str)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels.iter().copied().chain(extra) {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{}=\"{}\"", sanitize_name(k), escape_label_value(v));
    }
    out.push('}');
    out
}

/// Format a float the way Prometheus expects: shortest round-trip
/// decimal, with non-finite values spelled `+Inf` / `-Inf` / `NaN`.
fn fmt_f64(x: f64) -> String {
    if x.is_nan() {
        "NaN".to_string()
    } else if x.is_infinite() {
        if x > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn golden_exposition_for_a_mixed_registry() {
        let mut r = Registry::new();
        let c = r.counter("engine.trips");
        r.inc(c, 3);
        let c = r.counter("a.first");
        r.inc(c, 1);
        let g = r.gauge("sweep.jobs");
        r.set(g, 4.0);
        let h = r.histogram("engine.sprinters", &[1.0, 2.5]);
        r.observe(h, 0.5);
        r.observe(h, 2.0);
        r.observe(h, 9.0);
        let s = r.series("engine.tasks");
        r.push(s, 1.5);
        r.push(s, 2.5);

        let text = prometheus_text(&r.snapshot());
        let expected = "\
# TYPE a_first_total counter
a_first_total 1
# TYPE engine_trips_total counter
engine_trips_total 3
# TYPE sweep_jobs gauge
sweep_jobs 4
# TYPE engine_sprinters histogram
engine_sprinters_bucket{le=\"1\"} 1
engine_sprinters_bucket{le=\"2.5\"} 2
engine_sprinters_bucket{le=\"+Inf\"} 3
engine_sprinters_sum 11.5
engine_sprinters_count 3
# TYPE engine_tasks_count gauge
engine_tasks_count 2
# TYPE engine_tasks_sum gauge
engine_tasks_sum 4
# TYPE engine_tasks_last gauge
engine_tasks_last 2.5
";
        assert_eq!(text, expected);
    }

    #[test]
    fn exposition_is_byte_stable() {
        let build = || {
            let mut r = Registry::new();
            // Registration order differs run to run; output must not.
            for name in ["z.last", "a.first", "m.mid"] {
                let c = r.counter(name);
                r.inc(c, 1);
            }
            prometheus_text(&r.snapshot())
        };
        let a = build();
        assert_eq!(a, build());
        let first = a.find("a_first_total").unwrap();
        let last = a.find("z_last_total").unwrap();
        assert!(first < last, "{a}");
    }

    #[test]
    fn names_sanitize_and_label_values_escape() {
        let mut r = Registry::new();
        let c = r.counter("9weird-name.with spaces");
        r.inc(c, 1);
        let text =
            prometheus_text_with_labels(&r.snapshot(), &[("run", "a\"b\\c\nd"), ("host", "rack1")]);
        assert!(
            text.contains(
                "_weird_name_with_spaces_total{run=\"a\\\"b\\\\c\\nd\",host=\"rack1\"} 1"
            ),
            "{text}"
        );
        assert!(!text.contains('\u{0}'), "{text}");
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_labels() {
        let mut r = Registry::new();
        let h = r.histogram("lat", &[1.0]);
        r.observe(h, 0.5);
        r.observe(h, 5.0);
        let text = prometheus_text_with_labels(&r.snapshot(), &[("run", "x")]);
        assert!(text.contains("lat_bucket{run=\"x\",le=\"1\"} 1"), "{text}");
        assert!(
            text.contains("lat_bucket{run=\"x\",le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(text.contains("lat_sum{run=\"x\"} 5.5"), "{text}");
        assert!(text.contains("lat_count{run=\"x\"} 2"), "{text}");
    }

    #[test]
    fn non_finite_gauges_render_prometheus_spellings() {
        let mut r = Registry::new();
        let g = r.gauge("inf");
        r.set(g, f64::INFINITY);
        let text = prometheus_text(&r.snapshot());
        assert!(text.contains("inf +Inf"), "{text}");
    }
}
