//! Exporters: external text formats derived from telemetry state.
//!
//! - [`prometheus`] — Prometheus text exposition (format 0.0.4) from a
//!   [`MetricsSnapshot`](crate::MetricsSnapshot), for scraping.
//! - [`flamegraph`] — collapsed-stack output from a
//!   [`SpanReport`](crate::SpanReport)'s path table, with self/cumulative
//!   split, for `flamegraph.pl` / speedscope-style tooling.
//!
//! Both exporters are pure functions over frozen snapshots: stable
//! output ordering (inputs are name-sorted maps), no I/O, no clock.

pub mod flamegraph;
pub mod prometheus;

pub use flamegraph::{collapsed_stacks, flame_tree, FlameNode};
pub use prometheus::{prometheus_text, prometheus_text_with_labels};
