//! Collapsed-stack flamegraph export from span path profiles.
//!
//! Consumes the `;`-joined stack paths a nesting-aware
//! [`SpanProfile`](crate::SpanProfile) accumulates (see
//! [`SpanReport::paths`]) and renders the standard collapsed-stack
//! format — one `frame;frame;... value` line per stack, value in
//! nanoseconds — that `flamegraph.pl`, inferno, and speedscope consume
//! directly. Values are *self* time: each stack's total minus the total
//! of its direct children, clamped at zero (a child measured on another
//! thread can exceed its parent's inline window). The full
//! self/cumulative split is available structurally via [`flame_tree`].
//!
//! Profiles that never used the nesting API still export: flat span
//! names are treated as single-frame stacks.

use std::collections::BTreeMap;

use crate::spans::{SpanReport, SpanStats, PATH_SEPARATOR};

/// One node of the span tree, with the self/cumulative split resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlameNode {
    /// Frame name (one path segment).
    pub name: String,
    /// Completed spans at exactly this path.
    pub count: u64,
    /// Cumulative nanoseconds: this path's own total (which, measured by
    /// enclosing open/close pairs, already contains its children).
    pub total_nanos: u64,
    /// Self nanoseconds: `total_nanos` minus direct children's totals,
    /// clamped at zero.
    pub self_nanos: u64,
    /// Child frames, name-sorted.
    pub children: Vec<FlameNode>,
}

/// The paths to fold: `paths` when the profile recorded any, otherwise
/// every flat span as a single-frame stack.
fn effective_paths(report: &SpanReport) -> &BTreeMap<String, SpanStats> {
    if report.paths.is_empty() {
        &report.spans
    } else {
        &report.paths
    }
}

/// Build the span tree with self/cumulative splits from a report.
///
/// Returns the name-sorted roots. Paths missing intermediate nodes (a
/// path table can hold `a;b` without `a` when the outer span never
/// closed) get synthetic zero-total parents so the tree is always
/// well-formed.
#[must_use]
pub fn flame_tree(report: &SpanReport) -> Vec<FlameNode> {
    #[derive(Default)]
    struct Build {
        count: u64,
        total: u64,
        children: BTreeMap<String, Build>,
    }

    let mut root = Build::default();
    for (path, stats) in effective_paths(report) {
        let mut node = &mut root;
        for frame in path.split(PATH_SEPARATOR) {
            node = node.children.entry(frame.to_string()).or_default();
        }
        node.count += stats.count;
        node.total += stats.total_nanos;
    }

    fn finish(name: &str, b: &Build) -> FlameNode {
        let children: Vec<FlameNode> = b
            .children
            .iter()
            .map(|(name, child)| finish(name, child))
            .collect();
        let child_total: u64 = children.iter().map(|c| c.total_nanos).sum();
        // A synthetic parent (total 0) reports its children's weight as
        // cumulative; a measured parent keeps its own inline total.
        let total = if b.total == 0 && b.count == 0 {
            child_total
        } else {
            b.total
        };
        FlameNode {
            name: name.to_string(),
            count: b.count,
            total_nanos: total,
            self_nanos: total.saturating_sub(child_total),
            children,
        }
    }

    root.children
        .iter()
        .map(|(name, child)| finish(name, child))
        .collect()
}

/// Render a report in collapsed-stack format: one name-sorted
/// `frame;frame value` line per stack with nonzero self time (plus
/// zero-self leaf stacks, so every measured path appears). Byte-stable
/// for a given report.
#[must_use]
pub fn collapsed_stacks(report: &SpanReport) -> String {
    let mut out = String::new();
    let mut stack = Vec::new();
    fn walk(nodes: &[FlameNode], stack: &mut Vec<String>, out: &mut String) {
        for node in nodes {
            stack.push(node.name.clone());
            if node.self_nanos > 0 || node.children.is_empty() {
                out.push_str(&stack.join(";"));
                out.push(' ');
                out.push_str(&node.self_nanos.to_string());
                out.push('\n');
            }
            walk(&node.children, stack, out);
            stack.pop();
        }
    }
    walk(&flame_tree(report), &mut stack, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spans::SpanProfile;

    fn report_with_paths(entries: &[(&str, u64)]) -> SpanReport {
        let mut p = SpanProfile::deterministic();
        for (path, nanos) in entries {
            p.record_path_nanos(path, *nanos);
        }
        p.report()
    }

    #[test]
    fn golden_collapsed_output() {
        let report = report_with_paths(&[
            ("engine.epoch", 1000),
            ("engine.epoch;engine.decide", 600),
            ("engine.epoch;engine.faults", 150),
            ("sweep.trial", 400),
        ]);
        let expected = "\
engine.epoch 250
engine.epoch;engine.decide 600
engine.epoch;engine.faults 150
sweep.trial 400
";
        assert_eq!(collapsed_stacks(&report), expected);
    }

    #[test]
    fn tree_carries_self_and_cumulative_split() {
        let report =
            report_with_paths(&[("engine.epoch", 1000), ("engine.epoch;engine.decide", 600)]);
        let tree = flame_tree(&report);
        assert_eq!(tree.len(), 1);
        let epoch = &tree[0];
        assert_eq!(epoch.name, "engine.epoch");
        assert_eq!(epoch.total_nanos, 1000);
        assert_eq!(epoch.self_nanos, 400);
        assert_eq!(epoch.children.len(), 1);
        let decide = &epoch.children[0];
        assert_eq!(decide.total_nanos, 600);
        assert_eq!(decide.self_nanos, 600);
    }

    #[test]
    fn missing_parent_gets_synthetic_cumulative_node() {
        let report = report_with_paths(&[("outer;inner", 500)]);
        let tree = flame_tree(&report);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree[0].name, "outer");
        assert_eq!(tree[0].total_nanos, 500, "synthetic parent sums children");
        assert_eq!(tree[0].self_nanos, 0);
        let text = collapsed_stacks(&report);
        assert_eq!(text, "outer;inner 500\n");
    }

    #[test]
    fn child_exceeding_parent_clamps_self_at_zero() {
        // Cross-thread fold-ins can out-measure the parent's window.
        let report = report_with_paths(&[("sweep", 100), ("sweep;worker-0", 900)]);
        let tree = flame_tree(&report);
        assert_eq!(tree[0].total_nanos, 100);
        assert_eq!(tree[0].self_nanos, 0);
    }

    #[test]
    fn flat_profiles_export_as_single_frame_stacks() {
        let mut p = SpanProfile::deterministic();
        let s = p.start();
        p.end("solver", s);
        let report = p.report();
        assert!(report.paths.is_empty());
        let text = collapsed_stacks(&report);
        assert_eq!(text, "solver 1\n");
    }

    #[test]
    fn output_is_byte_stable_regardless_of_record_order() {
        let a = collapsed_stacks(&report_with_paths(&[("b", 2), ("a", 1), ("c", 3)]));
        let b = collapsed_stacks(&report_with_paths(&[("c", 3), ("a", 1), ("b", 2)]));
        assert_eq!(a, b);
    }

    #[test]
    fn real_open_close_profiles_produce_nested_stacks() {
        let mut p = SpanProfile::deterministic();
        let outer = p.open("engine.epoch");
        let inner = p.open("engine.decide");
        p.close(inner);
        p.close(outer);
        let text = collapsed_stacks(&p.report());
        assert!(text.contains("engine.epoch;engine.decide "), "{text}");
    }
}
