//! Telemetry for the computational sprinting rack: structured tracing,
//! a metrics registry, and timing spans.
//!
//! Three pillars, one per module:
//!
//! - [`event`] / [`recorder`] — a typed event taxonomy ([`Event`]) behind
//!   the [`Recorder`] trait, with [`Noop`] (zero-cost disabled),
//!   [`InMemory`] (post-run analysis), and [`JsonlWriter`] (streaming
//!   JSON Lines) sinks. Events carry simulation-time data only, so a
//!   recorded stream is byte-reproducible under a fixed seed.
//! - [`registry`] — counters, gauges, fixed-bucket histograms, and
//!   epoch-resolution time series behind copy-sized handles, frozen into
//!   a serializable [`MetricsSnapshot`].
//! - [`clock`] / [`spans`] — timing spans against an injected [`Clock`]:
//!   the OS monotonic clock for real profiles, or a [`ManualClock`] when
//!   reproducibility matters more than wall time.
//!
//! [`Telemetry`] bundles one of each for threading through a run. The
//! overhead contract: with the [`Noop`] recorder, instrumented code pays
//! one branch per emission site and nothing else — no event construction,
//! no allocation, no RNG perturbation.

pub mod clock;
pub mod event;
pub mod export;
pub mod recorder;
pub mod registry;
pub mod ring;
pub mod snapshot;
pub mod spans;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use event::{ControlTier, Event, EventKind, FaultKind, SanctionLevel, Severity};
pub use export::{collapsed_stacks, flame_tree, prometheus_text, prometheus_text_with_labels};
pub use recorder::{InMemory, JsonlWriter, Noop, Recorder, RecorderError, RotatingJsonl};
pub use registry::{
    CounterId, FixedHistogram, GaugeId, HistogramId, MetricsSnapshot, Registry, SeriesId,
};
pub use ring::{EventRing, RingConfig, RingProducer, DEFAULT_RING_CAPACITY};
pub use snapshot::{HealthAggregator, HealthSnapshot, WorkerHealth};
pub use spans::{SpanProfile, SpanReport, SpanStats};

/// A run's complete telemetry kit: recorder, registry, and span profile.
pub struct Telemetry {
    recorder: Box<dyn Recorder>,
    /// The metrics registry.
    pub registry: Registry,
    /// The span profile.
    pub spans: SpanProfile,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.recorder.enabled())
            .field("registry", &self.registry)
            .field("spans", &self.spans)
            .finish()
    }
}

impl Telemetry {
    /// Fully disabled telemetry: [`Noop`] recorder, deterministic clock.
    /// This is what un-instrumented entry points thread through, and it
    /// must cost nothing measurable.
    #[must_use]
    pub fn disabled() -> Self {
        Telemetry {
            recorder: Box::new(Noop),
            registry: Registry::new(),
            spans: SpanProfile::deterministic(),
        }
    }

    /// Alias for [`Telemetry::disabled`], for call sites of the unified
    /// run API that want no observation: `engine::run(cfg, streams,
    /// policy, &mut Telemetry::noop())`.
    #[must_use]
    pub fn noop() -> Self {
        Telemetry::disabled()
    }

    /// In-memory telemetry with real (monotonic) span timings — the usual
    /// kit for report generation.
    #[must_use]
    pub fn in_memory() -> Self {
        Telemetry {
            recorder: Box::new(InMemory::new()),
            registry: Registry::new(),
            spans: SpanProfile::monotonic(),
        }
    }

    /// Telemetry around an explicit recorder and span profile.
    #[must_use]
    pub fn new(recorder: Box<dyn Recorder>, spans: SpanProfile) -> Self {
        Telemetry {
            recorder,
            registry: Registry::new(),
            spans,
        }
    }

    /// Whether the recorder accepts events (gate event construction on
    /// this).
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.recorder.enabled()
    }

    /// Whether the recorder wants events of `kind`.
    #[must_use]
    pub fn wants(&self, kind: EventKind) -> bool {
        self.recorder.wants(kind)
    }

    /// Record one event (no-op when the recorder is disabled).
    pub fn emit(&mut self, event: &Event) {
        if self.recorder.enabled() {
            self.recorder.record(event);
        }
    }

    /// Mutable access to the recorder, for passing down to observed
    /// sub-steps (e.g. the mean-field solver).
    pub fn recorder(&mut self) -> &mut dyn Recorder {
        self.recorder.as_mut()
    }

    /// The recorded events, when the underlying recorder retains them.
    #[must_use]
    pub fn events(&self) -> Option<&[Event]> {
        self.recorder.events()
    }

    /// Mirror the recorder's write/drop accounting into the registry as
    /// `telemetry.recorder.written` / `telemetry.recorder.dropped`.
    /// Monotone and idempotent (safe to call at every checkpoint), so
    /// drops are surfaced as counters, never silent truncation.
    pub fn export_recorder_metrics(&mut self) {
        if !self.recorder.enabled() {
            return;
        }
        let written = self.recorder.write_count();
        let dropped = self.recorder.drop_count();
        let c = self.registry.counter("telemetry.recorder.written");
        self.registry.set_counter(c, written);
        let c = self.registry.counter("telemetry.recorder.dropped");
        self.registry.set_counter(c, dropped);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_kit_accepts_nothing() {
        let mut t = Telemetry::disabled();
        assert!(!t.enabled());
        assert!(!t.wants(EventKind::EpochTick));
        t.emit(&Event::RunEnd {
            total_tasks: 1.0,
            trips: 0,
        });
        assert!(t.events().is_none());
    }

    #[test]
    fn in_memory_kit_records_and_exposes_events() {
        let mut t = Telemetry::in_memory();
        assert!(t.enabled());
        t.emit(&Event::RunEnd {
            total_tasks: 2.0,
            trips: 1,
        });
        assert_eq!(t.events().unwrap().len(), 1);
        let s = t.spans.start();
        t.spans.end("x", s);
        assert_eq!(t.spans.report().spans.len(), 1);
    }

    #[test]
    fn recorder_accounting_mirrors_into_registry() {
        let mut t = Telemetry::in_memory();
        t.emit(&Event::SolverBisection);
        t.emit(&Event::SolverBisection);
        t.export_recorder_metrics();
        t.export_recorder_metrics();
        assert_eq!(
            t.registry.counter_value("telemetry.recorder.written"),
            Some(2)
        );
        assert_eq!(
            t.registry.counter_value("telemetry.recorder.dropped"),
            Some(0)
        );
        // Disabled kits export nothing (and register nothing).
        let mut d = Telemetry::disabled();
        d.export_recorder_metrics();
        assert_eq!(d.registry.counter_value("telemetry.recorder.written"), None);
    }

    #[test]
    fn ring_backed_kit_drains_through_the_consumer() {
        let (mut ring, mut producers) = EventRing::new(1);
        let producer = producers.pop().unwrap();
        let mut t = Telemetry::new(Box::new(producer), SpanProfile::deterministic());
        assert!(t.enabled());
        t.emit(&Event::SolverBisection);
        t.export_recorder_metrics();
        assert_eq!(
            t.registry.counter_value("telemetry.recorder.written"),
            Some(1)
        );
        let events = ring.drain();
        assert_eq!(events, vec![Event::SolverBisection]);
    }

    #[test]
    fn custom_recorder_threads_through() {
        let jsonl = JsonlWriter::new(Vec::new());
        let mut t = Telemetry::new(Box::new(jsonl), SpanProfile::deterministic());
        t.emit(&Event::SolverBisection);
        // The recorder is reachable for downstream observed calls.
        t.recorder().record(&Event::SolverBisection);
        assert!(t.enabled());
    }
}
