//! Timing spans rolled into a per-run profile.
//!
//! A span is a named start/end pair read from an injected [`Clock`];
//! repeated spans with the same name accumulate into one [`SpanStats`]
//! entry (count, total, max). The flat accumulator ([`SpanProfile::start`]
//! / [`SpanProfile::end`]) keeps the per-span cost to two clock reads and
//! one vector update, which is right for the rack's flat hot loops.
//!
//! For profiles that feed a flamegraph, the nesting-aware pair
//! [`SpanProfile::open`] / [`SpanProfile::close`] additionally maintains
//! a stack of open frames and accumulates each closed span under its
//! full `;`-joined stack path (e.g. `engine.epoch;engine.decide`). Path
//! stats land in [`SpanReport::paths`], from which the collapsed-stack
//! exporter derives self/cumulative splits. Both APIs coexist: `open` /
//! `close` also feeds the flat table, so `stats` and existing reports
//! see the same totals either way.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::clock::{Clock, ManualClock, MonotonicClock};

/// Accumulated statistics for one named span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SpanStats {
    /// Completed spans under this name.
    pub count: u64,
    /// Total nanoseconds across all spans.
    pub total_nanos: u64,
    /// Longest single span.
    pub max_nanos: u64,
}

impl SpanStats {
    /// Mean nanoseconds per span (0 when empty).
    #[must_use]
    pub fn mean_nanos(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_nanos as f64 / self.count as f64
        }
    }
}

/// A started span: the timestamp its matching [`SpanProfile::end`] closes.
#[derive(Debug, Clone, Copy)]
pub struct SpanStart(u64);

/// Separator between frames in a span stack path.
pub const PATH_SEPARATOR: char = ';';

/// Accumulates named spans against an injected clock.
pub struct SpanProfile {
    clock: Box<dyn Clock>,
    spans: Vec<(String, SpanStats)>,
    /// Stacked frames opened by [`SpanProfile::open`], innermost last.
    open: Vec<(String, u64)>,
    /// Stats keyed by `;`-joined stack path.
    paths: Vec<(String, SpanStats)>,
}

impl std::fmt::Debug for SpanProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanProfile")
            .field("spans", &self.spans)
            .finish_non_exhaustive()
    }
}

impl SpanProfile {
    /// A profile timing against an explicit clock.
    #[must_use]
    pub fn with_clock(clock: Box<dyn Clock>) -> Self {
        SpanProfile {
            clock,
            spans: Vec::new(),
            open: Vec::new(),
            paths: Vec::new(),
        }
    }

    /// A profile against the OS monotonic clock (real timings, not
    /// reproducible run to run).
    #[must_use]
    pub fn monotonic() -> Self {
        SpanProfile::with_clock(Box::new(MonotonicClock::new()))
    }

    /// A profile against a deterministic manual clock (reproducible
    /// "timings" counting clock reads, not wall time).
    #[must_use]
    pub fn deterministic() -> Self {
        SpanProfile::with_clock(Box::new(ManualClock::default()))
    }

    /// Start a span.
    #[must_use]
    pub fn start(&mut self) -> SpanStart {
        SpanStart(self.clock.now_nanos())
    }

    /// End a span under `name`, accumulating its duration.
    pub fn end(&mut self, name: &str, started: SpanStart) {
        let now = self.clock.now_nanos();
        self.record_nanos(name, now.saturating_sub(started.0));
    }

    /// Open a nesting-aware span: pushes a frame named `name` onto the
    /// open stack. Close with [`SpanProfile::close`], innermost first.
    pub fn open(&mut self, name: &str) -> SpanStart {
        let now = self.clock.now_nanos();
        self.open.push((name.to_string(), now));
        SpanStart(now)
    }

    /// Close the innermost open frame, accumulating its duration both
    /// under its flat name (as [`SpanProfile::end`] would) and under its
    /// full `;`-joined stack path for tree-aware consumers.
    ///
    /// `started` is the handle [`SpanProfile::open`] returned; it guards
    /// against mismatched pairs — closing with a stale handle drops
    /// frames opened after it (they were leaked, not closed).
    pub fn close(&mut self, started: SpanStart) {
        let now = self.clock.now_nanos();
        // Unwind to the frame this handle opened (normally the top).
        while let Some((name, opened_at)) = self.open.pop() {
            if opened_at < started.0 {
                // A stale handle closed an outer frame first; restore it
                // and fold the duration there.
                self.open.push((name, opened_at));
                break;
            }
            let is_match = opened_at == started.0;
            if is_match {
                let nanos = now.saturating_sub(opened_at);
                let path = self.current_path(&name);
                self.record_nanos(&name, nanos);
                Self::fold(&mut self.paths, &path, nanos);
                return;
            }
            // Leaked inner frame: discard silently (its time is inside
            // the closing span's total anyway).
        }
    }

    /// The `;`-joined path of the open stack plus `leaf`.
    fn current_path(&self, leaf: &str) -> String {
        let mut path = String::new();
        for (frame, _) in &self.open {
            path.push_str(frame);
            path.push(PATH_SEPARATOR);
        }
        path.push_str(leaf);
        path
    }

    /// Fold an externally measured duration into the profile (used when
    /// the measurement happened on another thread).
    pub fn record_nanos(&mut self, name: &str, nanos: u64) {
        Self::fold(&mut self.spans, name, nanos);
    }

    /// Fold an externally measured duration into the path table under an
    /// explicit `;`-joined stack path (e.g. `sweep;worker-0`), for
    /// cross-thread measurements that should appear in flamegraphs.
    pub fn record_path_nanos(&mut self, path: &str, nanos: u64) {
        Self::fold(&mut self.paths, path, nanos);
    }

    fn fold(table: &mut Vec<(String, SpanStats)>, name: &str, nanos: u64) {
        let stats = match table.iter().position(|(n, _)| n == name) {
            Some(i) => &mut table[i].1,
            None => {
                table.push((name.to_string(), SpanStats::default()));
                &mut table.last_mut().expect("just pushed").1
            }
        };
        stats.count += 1;
        stats.total_nanos += nanos;
        stats.max_nanos = stats.max_nanos.max(nanos);
    }

    /// Stats for one span name, if any span completed under it.
    #[must_use]
    pub fn stats(&self, name: &str) -> Option<SpanStats> {
        self.spans.iter().find(|(n, _)| n == name).map(|(_, s)| *s)
    }

    /// Stats for one full stack path, if any span closed under it.
    #[must_use]
    pub fn path_stats(&self, path: &str) -> Option<SpanStats> {
        self.paths.iter().find(|(n, _)| n == path).map(|(_, s)| *s)
    }

    /// Freeze into a serializable, name-sorted report.
    #[must_use]
    pub fn report(&self) -> SpanReport {
        SpanReport {
            spans: self.spans.iter().cloned().collect(),
            paths: self.paths.iter().cloned().collect(),
        }
    }
}

/// A frozen, serializable span profile.
///
/// Serialize-only: the vendored serde shim has no map deserialization, and
/// reports are an export format, not an interchange one.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize)]
pub struct SpanReport {
    /// Accumulated stats by span name.
    pub spans: BTreeMap<String, SpanStats>,
    /// Accumulated stats by `;`-joined stack path, populated by the
    /// nesting-aware [`SpanProfile::open`] / [`SpanProfile::close`] pair
    /// (empty for purely flat profiles). Input to the flamegraph
    /// exporter.
    pub paths: BTreeMap<String, SpanStats>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_accumulate_under_one_name() {
        let mut p = SpanProfile::deterministic();
        for _ in 0..3 {
            let s = p.start();
            p.end("solver", s);
        }
        let stats = p.stats("solver").unwrap();
        assert_eq!(stats.count, 3);
        // Manual clock: each start/end pair spans exactly one tick.
        assert_eq!(stats.total_nanos, 3);
        assert_eq!(stats.max_nanos, 1);
        assert!((stats.mean_nanos() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_profiles_reproduce() {
        let run = || {
            let mut p = SpanProfile::deterministic();
            for _ in 0..10 {
                let outer = p.start();
                let inner = p.start();
                p.end("inner", inner);
                p.end("outer", outer);
            }
            p.report()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn monotonic_spans_measure_something() {
        let mut p = SpanProfile::monotonic();
        let s = p.start();
        std::hint::black_box((0..1000).sum::<u64>());
        p.end("work", s);
        assert_eq!(p.stats("work").unwrap().count, 1);
    }

    #[test]
    fn external_measurements_fold_in() {
        let mut p = SpanProfile::monotonic();
        p.record_nanos("trial", 100);
        p.record_nanos("trial", 300);
        let stats = p.stats("trial").unwrap();
        assert_eq!(stats.count, 2);
        assert_eq!(stats.total_nanos, 400);
        assert_eq!(stats.max_nanos, 300);
        let report = p.report();
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"trial\""), "{json}");
        assert!(json.contains("\"total_nanos\":400"), "{json}");
    }

    #[test]
    fn missing_span_is_none() {
        let p = SpanProfile::deterministic();
        assert!(p.stats("nope").is_none());
    }

    #[test]
    fn open_close_accumulates_under_stack_paths_and_flat_names() {
        let mut p = SpanProfile::deterministic();
        for _ in 0..2 {
            let outer = p.open("engine.epoch");
            let inner = p.open("engine.decide");
            p.close(inner);
            p.close(outer);
        }
        let path = p.path_stats("engine.epoch;engine.decide").unwrap();
        assert_eq!(path.count, 2);
        let root = p.path_stats("engine.epoch").unwrap();
        assert_eq!(root.count, 2);
        assert!(root.total_nanos > path.total_nanos);
        // Flat view sees the same spans.
        assert_eq!(p.stats("engine.epoch").unwrap().count, 2);
        assert_eq!(p.stats("engine.decide").unwrap().count, 2);
        let report = p.report();
        assert_eq!(report.paths.len(), 2);
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("engine.epoch;engine.decide"), "{json}");
    }

    #[test]
    fn close_with_stale_handle_discards_leaked_inner_frames() {
        let mut p = SpanProfile::deterministic();
        let outer = p.open("outer");
        let _leaked = p.open("leaked");
        p.close(outer);
        assert_eq!(p.stats("outer").unwrap().count, 1);
        assert!(p.stats("leaked").is_none());
        // The stack is clean: a fresh root span records at the root path.
        let s = p.open("next");
        p.close(s);
        assert!(p.path_stats("next").is_some());
    }

    #[test]
    fn external_path_measurements_fold_in() {
        let mut p = SpanProfile::monotonic();
        p.record_path_nanos("sweep;worker-0", 500);
        p.record_path_nanos("sweep;worker-0", 250);
        let s = p.path_stats("sweep;worker-0").unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.total_nanos, 750);
        assert_eq!(s.max_nanos, 500);
    }
}
