//! Timing spans rolled into a per-run profile.
//!
//! A span is a named start/end pair read from an injected [`Clock`];
//! repeated spans with the same name accumulate into one [`SpanStats`]
//! entry (count, total, max). The profile is deliberately not a tracing
//! tree — the rack's hot paths are flat loops, and a flat accumulator
//! keeps the per-span cost to two clock reads and one vector update.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::clock::{Clock, ManualClock, MonotonicClock};

/// Accumulated statistics for one named span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SpanStats {
    /// Completed spans under this name.
    pub count: u64,
    /// Total nanoseconds across all spans.
    pub total_nanos: u64,
    /// Longest single span.
    pub max_nanos: u64,
}

impl SpanStats {
    /// Mean nanoseconds per span (0 when empty).
    #[must_use]
    pub fn mean_nanos(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_nanos as f64 / self.count as f64
        }
    }
}

/// A started span: the timestamp its matching [`SpanProfile::end`] closes.
#[derive(Debug, Clone, Copy)]
pub struct SpanStart(u64);

/// Accumulates named spans against an injected clock.
pub struct SpanProfile {
    clock: Box<dyn Clock>,
    spans: Vec<(String, SpanStats)>,
}

impl std::fmt::Debug for SpanProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanProfile")
            .field("spans", &self.spans)
            .finish_non_exhaustive()
    }
}

impl SpanProfile {
    /// A profile timing against an explicit clock.
    #[must_use]
    pub fn with_clock(clock: Box<dyn Clock>) -> Self {
        SpanProfile {
            clock,
            spans: Vec::new(),
        }
    }

    /// A profile against the OS monotonic clock (real timings, not
    /// reproducible run to run).
    #[must_use]
    pub fn monotonic() -> Self {
        SpanProfile::with_clock(Box::new(MonotonicClock::new()))
    }

    /// A profile against a deterministic manual clock (reproducible
    /// "timings" counting clock reads, not wall time).
    #[must_use]
    pub fn deterministic() -> Self {
        SpanProfile::with_clock(Box::new(ManualClock::default()))
    }

    /// Start a span.
    #[must_use]
    pub fn start(&mut self) -> SpanStart {
        SpanStart(self.clock.now_nanos())
    }

    /// End a span under `name`, accumulating its duration.
    pub fn end(&mut self, name: &str, started: SpanStart) {
        let now = self.clock.now_nanos();
        self.record_nanos(name, now.saturating_sub(started.0));
    }

    /// Fold an externally measured duration into the profile (used when
    /// the measurement happened on another thread).
    pub fn record_nanos(&mut self, name: &str, nanos: u64) {
        let stats = match self.spans.iter().position(|(n, _)| n == name) {
            Some(i) => &mut self.spans[i].1,
            None => {
                self.spans.push((name.to_string(), SpanStats::default()));
                &mut self.spans.last_mut().expect("just pushed").1
            }
        };
        stats.count += 1;
        stats.total_nanos += nanos;
        stats.max_nanos = stats.max_nanos.max(nanos);
    }

    /// Stats for one span name, if any span completed under it.
    #[must_use]
    pub fn stats(&self, name: &str) -> Option<SpanStats> {
        self.spans.iter().find(|(n, _)| n == name).map(|(_, s)| *s)
    }

    /// Freeze into a serializable, name-sorted report.
    #[must_use]
    pub fn report(&self) -> SpanReport {
        SpanReport {
            spans: self.spans.iter().cloned().collect(),
        }
    }
}

/// A frozen, serializable span profile.
///
/// Serialize-only: the vendored serde shim has no map deserialization, and
/// reports are an export format, not an interchange one.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize)]
pub struct SpanReport {
    /// Accumulated stats by span name.
    pub spans: BTreeMap<String, SpanStats>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_accumulate_under_one_name() {
        let mut p = SpanProfile::deterministic();
        for _ in 0..3 {
            let s = p.start();
            p.end("solver", s);
        }
        let stats = p.stats("solver").unwrap();
        assert_eq!(stats.count, 3);
        // Manual clock: each start/end pair spans exactly one tick.
        assert_eq!(stats.total_nanos, 3);
        assert_eq!(stats.max_nanos, 1);
        assert!((stats.mean_nanos() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_profiles_reproduce() {
        let run = || {
            let mut p = SpanProfile::deterministic();
            for _ in 0..10 {
                let outer = p.start();
                let inner = p.start();
                p.end("inner", inner);
                p.end("outer", outer);
            }
            p.report()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn monotonic_spans_measure_something() {
        let mut p = SpanProfile::monotonic();
        let s = p.start();
        std::hint::black_box((0..1000).sum::<u64>());
        p.end("work", s);
        assert_eq!(p.stats("work").unwrap().count, 1);
    }

    #[test]
    fn external_measurements_fold_in() {
        let mut p = SpanProfile::monotonic();
        p.record_nanos("trial", 100);
        p.record_nanos("trial", 300);
        let stats = p.stats("trial").unwrap();
        assert_eq!(stats.count, 2);
        assert_eq!(stats.total_nanos, 400);
        assert_eq!(stats.max_nanos, 300);
        let report = p.report();
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"trial\""), "{json}");
        assert!(json.contains("\"total_nanos\":400"), "{json}");
    }

    #[test]
    fn missing_span_is_none() {
        let p = SpanProfile::deterministic();
        assert!(p.stats("nope").is_none());
    }
}
