//! A bounded, lock-free MPSC ring for live event tailing.
//!
//! The in-memory and JSONL recorders are fine for post-run analysis but
//! wrong for live observation: one grows without bound, the other blocks
//! on I/O in the emitting thread. The [`EventRing`] is the third shape —
//! a fixed set of preallocated single-producer segments, one per
//! emitting thread, drained by exactly one consumer. Producers never
//! contend with each other (each owns its segment exclusively) and never
//! block or allocate on the hot path for fixed-size events; when a
//! segment is full the event is counted in an explicit drop counter
//! instead of silently truncating or stalling the epoch loop.
//!
//! Each producer is a [`RingProducer`], a [`Recorder`] that can back a
//! [`Telemetry`](crate::Telemetry) kit directly. Filtering happens at
//! the source: a minimum [`Severity`] gate (so e.g. the per-agent
//! decision firehose is never constructed) and per-kind 1-of-n sampling
//! strides for high-volume kinds that should be thinned, not silenced.
//!
//! Determinism: the ring carries simulation-time events only, and the
//! engine emits from a single thread, so a drained stream from an
//! engine run is identical at every `--jobs` count. Sweep workers each
//! publish into their own segment; their merged stream interleaves by
//! worker (scheduling-dependent), which is why sweep *reports* are built
//! from the slot-per-trial table, never from ring order.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::event::{Event, EventKind, Severity};
use crate::recorder::Recorder;
use crate::registry::Registry;

/// Tuning for an [`EventRing`].
#[derive(Debug, Clone)]
pub struct RingConfig {
    /// Slots preallocated per producer segment.
    pub capacity: usize,
    /// Minimum severity a producer accepts; quieter kinds are rejected
    /// at the `wants` gate so emitters skip event construction entirely.
    pub min_severity: Severity,
    /// Per-kind sampling strides: `(kind, n)` keeps the first of every
    /// `n` events of `kind` (per producer, deterministic by count).
    pub sample: Vec<(EventKind, u32)>,
}

/// Default segment capacity: enough for a full 100k-epoch run of
/// Info-and-louder engine events without dropping.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 17;

impl Default for RingConfig {
    fn default() -> Self {
        RingConfig {
            capacity: DEFAULT_RING_CAPACITY,
            min_severity: Severity::Debug,
            sample: Vec::new(),
        }
    }
}

impl RingConfig {
    /// Keep only events at `min` severity or louder.
    #[must_use]
    pub fn with_min_severity(mut self, min: Severity) -> Self {
        self.min_severity = min;
        self
    }

    /// Keep the first of every `n` events of `kind` (n = 0 or 1 keeps
    /// everything).
    #[must_use]
    pub fn with_sample(mut self, kind: EventKind, n: u32) -> Self {
        if n > 1 {
            self.sample.push((kind, n));
        }
        self
    }

    /// Override the per-producer segment capacity (min 2 slots).
    #[must_use]
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(2);
        self
    }
}

/// One producer's SPSC segment. The producer owns `tail` and writes the
/// slot it indexes; the consumer owns `head` and reads slots in
/// `[head, tail)`. Indices are monotonically increasing (wrapping)
/// positions, reduced modulo capacity at access time, so `tail - head`
/// is the live occupancy.
struct Segment {
    slots: Box<[UnsafeCell<Option<Event>>]>,
    /// Next write position. Written by the producer (Release), read by
    /// the consumer (Acquire).
    tail: AtomicUsize,
    /// Next read position. Written by the consumer (Release), read by
    /// the producer (Acquire).
    head: AtomicUsize,
    /// Events rejected because the segment was full.
    dropped: AtomicU64,
    /// Events successfully published.
    published: AtomicU64,
}

// SAFETY: slot `i % capacity` is written only by the unique producer
// (while `tail - head < capacity` guarantees the consumer is not reading
// it) and taken only by the unique consumer after observing the
// producer's Release store of `tail` (Acquire), which orders the slot
// write before the read. Producer uniqueness is enforced by handing out
// each `RingProducer` exactly once; consumer uniqueness by
// `EventRing::drain` taking `&mut self` on a non-clonable ring.
unsafe impl Sync for Segment {}

impl Segment {
    fn new(capacity: usize) -> Self {
        let slots: Vec<UnsafeCell<Option<Event>>> =
            (0..capacity).map(|_| UnsafeCell::new(None)).collect();
        Segment {
            slots: slots.into_boxed_slice(),
            tail: AtomicUsize::new(0),
            head: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            published: AtomicU64::new(0),
        }
    }
}

struct RingShared {
    segments: Vec<Segment>,
}

/// The consumer half of a bounded lock-free event ring.
///
/// Built together with its producers by [`EventRing::new`]; drain from
/// one thread while producers publish from theirs.
pub struct EventRing {
    shared: Arc<RingShared>,
}

impl std::fmt::Debug for EventRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventRing")
            .field("producers", &self.shared.segments.len())
            .field("published", &self.published())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl EventRing {
    /// A ring with `producers` segments under the default config.
    /// Returns the consumer and one [`RingProducer`] per segment.
    #[must_use]
    pub fn new(producers: usize) -> (EventRing, Vec<RingProducer>) {
        EventRing::with_config(producers, &RingConfig::default())
    }

    /// A ring with `producers` segments under an explicit config.
    #[must_use]
    pub fn with_config(producers: usize, config: &RingConfig) -> (EventRing, Vec<RingProducer>) {
        let producers = producers.max(1);
        let capacity = config.capacity.max(2);
        let shared = Arc::new(RingShared {
            segments: (0..producers).map(|_| Segment::new(capacity)).collect(),
        });
        let handles = (0..producers)
            .map(|segment| RingProducer {
                shared: Arc::clone(&shared),
                segment,
                min_severity: config.min_severity,
                sample: config
                    .sample
                    .iter()
                    .map(|&(kind, n)| SampleState { kind, n, seen: 0 })
                    .collect(),
            })
            .collect();
        (EventRing { shared }, handles)
    }

    /// Take every published-but-unconsumed event, segment by segment in
    /// producer order (FIFO within a producer).
    pub fn drain(&mut self) -> Vec<Event> {
        let mut out = Vec::new();
        for seg in &self.shared.segments {
            let capacity = seg.slots.len();
            let mut h = seg.head.load(Ordering::Relaxed);
            let tail = seg.tail.load(Ordering::Acquire);
            while h != tail {
                // SAFETY: `h < tail` means the producer published this
                // slot (Release/Acquire on `tail`) and cannot rewrite it
                // until `head` passes it.
                let slot = unsafe { (*seg.slots[h % capacity].get()).take() };
                if let Some(event) = slot {
                    out.push(event);
                }
                h = h.wrapping_add(1);
            }
            seg.head.store(h, Ordering::Release);
        }
        out
    }

    /// Total events published across all producers.
    #[must_use]
    pub fn published(&self) -> u64 {
        self.shared
            .segments
            .iter()
            .map(|s| s.published.load(Ordering::Relaxed))
            .sum()
    }

    /// Total events dropped (full segments) across all producers. Drops
    /// are always counted, never silent.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.shared
            .segments
            .iter()
            .map(|s| s.dropped.load(Ordering::Relaxed))
            .sum()
    }

    /// Events dropped by one producer's segment.
    #[must_use]
    pub fn producer_dropped(&self, producer: usize) -> u64 {
        self.shared
            .segments
            .get(producer)
            .map_or(0, |s| s.dropped.load(Ordering::Relaxed))
    }

    /// Number of producer segments.
    #[must_use]
    pub fn producers(&self) -> usize {
        self.shared.segments.len()
    }

    /// Mirror the ring's accounting into a registry: `ring.published`,
    /// `ring.dropped`, and the per-producer drop counters.
    pub fn export_metrics(&self, registry: &mut Registry) {
        let c = registry.counter("ring.published");
        registry.set_counter(c, self.published());
        let c = registry.counter("ring.dropped");
        registry.set_counter(c, self.dropped());
        for (i, seg) in self.shared.segments.iter().enumerate() {
            let dropped = seg.dropped.load(Ordering::Relaxed);
            if dropped > 0 {
                let c = registry.counter(&format!("ring.producer.{i}.dropped"));
                registry.set_counter(c, dropped);
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct SampleState {
    kind: EventKind,
    n: u32,
    seen: u32,
}

/// The producer half: a [`Recorder`] publishing into its own segment.
///
/// Exactly one handle exists per segment and the type is not clonable,
/// so slot writes are single-producer by construction. Publishing is
/// wait-free: a full segment increments the drop counter and returns.
pub struct RingProducer {
    shared: Arc<RingShared>,
    segment: usize,
    min_severity: Severity,
    sample: Vec<SampleState>,
}

impl std::fmt::Debug for RingProducer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingProducer")
            .field("segment", &self.segment)
            .field("min_severity", &self.min_severity)
            .finish_non_exhaustive()
    }
}

impl RingProducer {
    /// This producer's segment index.
    #[must_use]
    pub fn index(&self) -> usize {
        self.segment
    }

    /// Events this producer dropped against a full segment.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.shared.segments[self.segment]
            .dropped
            .load(Ordering::Relaxed)
    }

    /// Events this producer published.
    #[must_use]
    pub fn published(&self) -> u64 {
        self.shared.segments[self.segment]
            .published
            .load(Ordering::Relaxed)
    }
}

impl Recorder for RingProducer {
    fn wants(&self, kind: EventKind) -> bool {
        kind.severity() >= self.min_severity
    }

    fn record(&mut self, event: &Event) {
        let kind = event.kind();
        if kind.severity() < self.min_severity {
            return;
        }
        if let Some(s) = self.sample.iter_mut().find(|s| s.kind == kind) {
            let keep = s.seen % s.n == 0;
            s.seen = s.seen.wrapping_add(1);
            if !keep {
                return;
            }
        }
        let seg = &self.shared.segments[self.segment];
        let capacity = seg.slots.len();
        let tail = seg.tail.load(Ordering::Relaxed);
        let head = seg.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) >= capacity {
            // Full: count the loss explicitly rather than blocking the
            // epoch loop or overwriting unconsumed telemetry.
            seg.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // SAFETY: this is the unique producer for the segment, and the
        // occupancy check above guarantees the consumer is not reading
        // slot `tail % capacity`.
        unsafe {
            *seg.slots[tail % capacity].get() = Some(event.clone());
        }
        seg.tail.store(tail.wrapping_add(1), Ordering::Release);
        seg.published.fetch_add(1, Ordering::Relaxed);
    }

    fn drop_count(&self) -> u64 {
        self.dropped()
    }

    fn write_count(&self) -> u64 {
        self.published()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(epoch: usize) -> Event {
        Event::EpochTick {
            epoch,
            sprinters: 1,
            stuck: 0,
            tripped: false,
            recovering: false,
            tasks: 2.0,
        }
    }

    #[test]
    fn publishes_and_drains_fifo_per_producer() {
        let (mut ring, mut producers) = EventRing::new(1);
        let p = &mut producers[0];
        for epoch in 0..5 {
            p.record(&tick(epoch));
        }
        assert_eq!(ring.published(), 5);
        assert_eq!(ring.dropped(), 0);
        let events = ring.drain();
        assert_eq!(events.len(), 5);
        for (i, e) in events.iter().enumerate() {
            match e {
                Event::EpochTick { epoch, .. } => assert_eq!(*epoch, i),
                other => panic!("unexpected event {other:?}"),
            }
        }
        assert!(ring.drain().is_empty(), "drain consumes");
    }

    #[test]
    fn full_segment_counts_drops_never_truncates_silently() {
        let config = RingConfig::default().with_capacity(4);
        let (mut ring, mut producers) = EventRing::with_config(1, &config);
        let p = &mut producers[0];
        for epoch in 0..10 {
            p.record(&tick(epoch));
        }
        assert_eq!(ring.published(), 4);
        assert_eq!(ring.dropped(), 6);
        assert_eq!(ring.producer_dropped(0), 6);
        assert_eq!(p.drop_count(), 6);
        // The surviving events are the oldest four, in order.
        let events = ring.drain();
        assert_eq!(events.len(), 4);
        // Space reclaimed by the drain is writable again.
        p.record(&tick(99));
        assert_eq!(ring.drain().len(), 1);
    }

    #[test]
    fn severity_floor_rejects_at_the_wants_gate() {
        let config = RingConfig::default().with_min_severity(Severity::Warn);
        let (mut ring, mut producers) = EventRing::with_config(1, &config);
        let p = &mut producers[0];
        assert!(!p.wants(EventKind::EpochTick));
        assert!(p.wants(EventKind::BreakerTrip));
        p.record(&tick(0));
        p.record(&Event::BreakerTrip {
            epoch: 0,
            realized: 1.0,
            measured: 1.0,
            p_trip: 0.5,
        });
        let events = ring.drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind(), EventKind::BreakerTrip);
        assert_eq!(ring.dropped(), 0, "filtered events are not drops");
    }

    #[test]
    fn sampling_keeps_first_of_every_n_deterministically() {
        let config = RingConfig::default().with_sample(EventKind::EpochTick, 3);
        let (mut ring, mut producers) = EventRing::with_config(1, &config);
        let p = &mut producers[0];
        for epoch in 0..9 {
            p.record(&tick(epoch));
        }
        let kept: Vec<usize> = ring
            .drain()
            .iter()
            .map(|e| match e {
                Event::EpochTick { epoch, .. } => *epoch,
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(kept, [0, 3, 6]);
    }

    #[test]
    fn concurrent_producers_never_lose_or_duplicate_within_capacity() {
        let per_producer = 5_000usize;
        let config = RingConfig::default().with_capacity(per_producer);
        let (mut ring, producers) = EventRing::with_config(4, &config);
        std::thread::scope(|scope| {
            for mut p in producers {
                scope.spawn(move || {
                    for epoch in 0..per_producer {
                        p.record(&tick(epoch));
                    }
                });
            }
        });
        assert_eq!(ring.published(), 4 * per_producer as u64);
        assert_eq!(ring.dropped(), 0);
        let events = ring.drain();
        assert_eq!(events.len(), 4 * per_producer);
        // Per-producer FIFO: the drained stream is 4 contiguous ordered
        // segments of `per_producer` ticks each.
        for chunk in events.chunks(per_producer) {
            for (i, e) in chunk.iter().enumerate() {
                match e {
                    Event::EpochTick { epoch, .. } => assert_eq!(*epoch, i),
                    other => panic!("unexpected event {other:?}"),
                }
            }
        }
    }

    #[test]
    fn concurrent_drain_while_publishing_sees_every_event_once() {
        let total = 20_000usize;
        let config = RingConfig::default().with_capacity(64);
        let (mut ring, mut producers) = EventRing::with_config(1, &config);
        let mut p = producers.pop().unwrap();
        let mut seen = Vec::new();
        std::thread::scope(|scope| {
            let handle = scope.spawn(move || {
                let mut published = 0u64;
                for epoch in 0..total {
                    // Spin until the slot frees: this test wants zero
                    // drops so it can assert exactly-once delivery.
                    loop {
                        let before = p.dropped();
                        p.record(&tick(epoch));
                        if p.dropped() == before {
                            break;
                        }
                        std::hint::spin_loop();
                    }
                    published += 1;
                }
                published
            });
            while !handle.is_finished() {
                seen.extend(ring.drain());
            }
            assert_eq!(handle.join().unwrap(), total as u64);
        });
        seen.extend(ring.drain());
        assert_eq!(seen.len(), total);
        for (i, e) in seen.iter().enumerate() {
            match e {
                Event::EpochTick { epoch, .. } => assert_eq!(*epoch, i),
                other => panic!("unexpected event {other:?}"),
            }
        }
    }

    #[test]
    fn export_metrics_mirrors_accounting_idempotently() {
        let config = RingConfig::default().with_capacity(2);
        let (ring, mut producers) = EventRing::with_config(1, &config);
        let p = &mut producers[0];
        for epoch in 0..5 {
            p.record(&tick(epoch));
        }
        let mut registry = Registry::new();
        ring.export_metrics(&mut registry);
        ring.export_metrics(&mut registry);
        assert_eq!(registry.counter_value("ring.published"), Some(2));
        assert_eq!(registry.counter_value("ring.dropped"), Some(3));
        assert_eq!(registry.counter_value("ring.producer.0.dropped"), Some(3));
    }
}
