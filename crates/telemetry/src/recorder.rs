//! Event sinks: where recorded [`Event`]s go.
//!
//! The [`Recorder`] trait is the zero-cost-when-disabled seam between the
//! instrumented hot paths and storage. Producers check
//! [`Recorder::enabled`] once and skip event construction entirely when it
//! returns `false`, so [`Noop`] recording costs one branch per emission
//! site and perturbs nothing — no RNG draws, no allocation, no I/O.

use std::io::Write;

use crate::event::{Event, EventKind};

/// A sink for structured telemetry events.
pub trait Recorder: Send {
    /// Whether this recorder accepts events at all. Producers gate event
    /// construction on this, so disabled recorders are zero-cost.
    fn enabled(&self) -> bool {
        true
    }

    /// Whether this recorder wants events of `kind`. Lets producers skip
    /// high-volume kinds (per-agent sprint decisions) at the source.
    fn wants(&self, kind: EventKind) -> bool {
        let _ = kind;
        self.enabled()
    }

    /// Record one event.
    fn record(&mut self, event: &Event);

    /// The recorded events, when this recorder retains them in memory.
    fn events(&self) -> Option<&[Event]> {
        None
    }

    /// Events this recorder accepted and stored or wrote.
    fn write_count(&self) -> u64 {
        0
    }

    /// Events this recorder lost to capacity, serialization, or I/O
    /// failures. Filtered kinds are not losses and are not counted.
    /// Sinks that can lose events must report them here so drops are
    /// surfaced as counters, never silent truncation.
    fn drop_count(&self) -> u64 {
        0
    }
}

/// The disabled recorder: accepts nothing, records nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct Noop;

impl Recorder for Noop {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: &Event) {}
}

/// Retains every recorded event in memory, for post-run analysis.
#[derive(Debug, Clone, Default)]
pub struct InMemory {
    events: Vec<Event>,
    excluded: Vec<EventKind>,
}

impl InMemory {
    /// An empty in-memory recorder accepting every event kind.
    #[must_use]
    pub fn new() -> Self {
        InMemory::default()
    }

    /// Exclude an event kind (e.g. the per-agent decision firehose).
    #[must_use]
    pub fn without(mut self, kind: EventKind) -> Self {
        if !self.excluded.contains(&kind) {
            self.excluded.push(kind);
        }
        self
    }

    /// Recorded events in arrival order.
    #[must_use]
    pub fn recorded(&self) -> &[Event] {
        &self.events
    }

    /// Consume the recorder, yielding its events.
    #[must_use]
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }
}

impl Recorder for InMemory {
    fn wants(&self, kind: EventKind) -> bool {
        !self.excluded.contains(&kind)
    }

    fn record(&mut self, event: &Event) {
        if self.wants(event.kind()) {
            self.events.push(event.clone());
        }
    }

    fn events(&self) -> Option<&[Event]> {
        Some(&self.events)
    }

    fn write_count(&self) -> u64 {
        self.events.len() as u64
    }
}

/// Streams events as JSON Lines to any writer.
///
/// One event per line, serialized with serde_json's deterministic float
/// formatting: identical event streams produce byte-identical output.
/// Serialization or I/O failures increment [`JsonlWriter::dropped`]
/// instead of panicking — telemetry must never take the rack down.
#[derive(Debug)]
pub struct JsonlWriter<W: Write + Send> {
    writer: W,
    excluded: Vec<EventKind>,
    written: u64,
    dropped: u64,
}

impl<W: Write + Send> JsonlWriter<W> {
    /// Stream events to `writer`.
    #[must_use]
    pub fn new(writer: W) -> Self {
        JsonlWriter {
            writer,
            excluded: Vec::new(),
            written: 0,
            dropped: 0,
        }
    }

    /// Exclude an event kind from the stream.
    #[must_use]
    pub fn without(mut self, kind: EventKind) -> Self {
        if !self.excluded.contains(&kind) {
            self.excluded.push(kind);
        }
        self
    }

    /// Events successfully written.
    #[must_use]
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Events lost to serialization or I/O errors.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Flush and release the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates the final flush failure.
    pub fn finish(mut self) -> std::io::Result<W> {
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write + Send> Recorder for JsonlWriter<W> {
    fn wants(&self, kind: EventKind) -> bool {
        !self.excluded.contains(&kind)
    }

    fn record(&mut self, event: &Event) {
        if !self.wants(event.kind()) {
            return;
        }
        let Ok(mut line) = serde_json::to_string(event) else {
            self.dropped += 1;
            return;
        };
        line.push('\n');
        match self.writer.write_all(line.as_bytes()) {
            Ok(()) => self.written += 1,
            Err(_) => self.dropped += 1,
        }
    }

    fn write_count(&self) -> u64 {
        self.written
    }

    fn drop_count(&self) -> u64 {
        self.dropped
    }
}

/// Why a file-backed recorder lost an event or failed to close.
///
/// Write failures never panic and never abort the run: the event is
/// counted as dropped, the most recent error is retained for inspection,
/// and the simulation continues — telemetry must never take the rack
/// down.
#[derive(Debug)]
pub enum RecorderError {
    /// Opening the sink failed.
    Open {
        /// The file that could not be opened.
        path: std::path::PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// Writing or flushing an event line failed.
    Write {
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// Rotating the active file into its numbered backup failed.
    Rotate {
        /// The file being rotated.
        path: std::path::PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
}

impl std::fmt::Display for RecorderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecorderError::Open { path, source } => {
                write!(f, "opening telemetry sink {}: {source}", path.display())
            }
            RecorderError::Write { source } => {
                write!(f, "writing telemetry event: {source}")
            }
            RecorderError::Rotate { path, source } => {
                write!(f, "rotating telemetry sink {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for RecorderError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecorderError::Open { source, .. }
            | RecorderError::Write { source }
            | RecorderError::Rotate { path: _, source } => Some(source),
        }
    }
}

/// A size-rotating, buffered JSON Lines file sink.
///
/// Events stream through an internal [`BufWriter`]; when the active file
/// would exceed `max_bytes` it is flushed and rotated into numbered
/// backups (`trace.jsonl.1` is the newest backup, `.2` older, up to
/// `keep`), and a fresh active file is opened. Failures are typed
/// ([`RecorderError`]), counted in [`RotatingJsonl::dropped`], and
/// surfaced — never panics, never silent truncation.
#[derive(Debug)]
pub struct RotatingJsonl {
    path: std::path::PathBuf,
    max_bytes: u64,
    keep: usize,
    writer: std::io::BufWriter<std::fs::File>,
    active_bytes: u64,
    excluded: Vec<EventKind>,
    written: u64,
    dropped: u64,
    rotations: u64,
    last_error: Option<RecorderError>,
}

impl RotatingJsonl {
    /// Open `path` for appending, rotating once the active file would
    /// grow past `max_bytes` and keeping `keep` numbered backups.
    ///
    /// # Errors
    ///
    /// [`RecorderError::Open`] when the active file cannot be created.
    pub fn create(
        path: impl Into<std::path::PathBuf>,
        max_bytes: u64,
        keep: usize,
    ) -> Result<Self, RecorderError> {
        let path = path.into();
        let file = std::fs::File::create(&path).map_err(|source| RecorderError::Open {
            path: path.clone(),
            source,
        })?;
        Ok(RotatingJsonl {
            path,
            max_bytes: max_bytes.max(1),
            keep: keep.max(1),
            writer: std::io::BufWriter::new(file),
            active_bytes: 0,
            excluded: Vec::new(),
            written: 0,
            dropped: 0,
            rotations: 0,
            last_error: None,
        })
    }

    /// Exclude an event kind from the stream.
    #[must_use]
    pub fn without(mut self, kind: EventKind) -> Self {
        if !self.excluded.contains(&kind) {
            self.excluded.push(kind);
        }
        self
    }

    /// Events successfully written.
    #[must_use]
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Events lost to serialization, I/O, or rotation errors.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Completed rotations.
    #[must_use]
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// The most recent failure, when any event has been dropped.
    #[must_use]
    pub fn last_error(&self) -> Option<&RecorderError> {
        self.last_error.as_ref()
    }

    /// Shift numbered backups up and move the active file to `.1`.
    fn rotate(&mut self) -> Result<(), RecorderError> {
        self.writer
            .flush()
            .map_err(|source| RecorderError::Write { source })?;
        let backup = |n: usize| {
            let mut p = self.path.clone().into_os_string();
            p.push(format!(".{n}"));
            std::path::PathBuf::from(p)
        };
        // Oldest backup falls off the end; the rest shift up by one.
        for n in (1..self.keep).rev() {
            let from = backup(n);
            if from.exists() {
                std::fs::rename(&from, backup(n + 1)).map_err(|source| RecorderError::Rotate {
                    path: from.clone(),
                    source,
                })?;
            }
        }
        std::fs::rename(&self.path, backup(1)).map_err(|source| RecorderError::Rotate {
            path: self.path.clone(),
            source,
        })?;
        let file = std::fs::File::create(&self.path).map_err(|source| RecorderError::Open {
            path: self.path.clone(),
            source,
        })?;
        self.writer = std::io::BufWriter::new(file);
        self.active_bytes = 0;
        self.rotations += 1;
        Ok(())
    }

    /// Flush buffered lines to the active file without closing it — the
    /// drain hook for long-lived sinks (the `sprint serve` daemon's event
    /// log), where shutdown must publish every buffered line while the
    /// recorder object stays alive for accounting.
    ///
    /// # Errors
    ///
    /// The flush failure, typed ([`RecorderError::Write`]).
    pub fn flush(&mut self) -> Result<(), RecorderError> {
        self.writer
            .flush()
            .map_err(|source| RecorderError::Write { source })
    }

    /// Flush buffered lines and close the active file.
    ///
    /// # Errors
    ///
    /// The final flush failure, typed.
    pub fn finish(mut self) -> Result<(), RecorderError> {
        self.writer
            .flush()
            .map_err(|source| RecorderError::Write { source })
    }
}

impl Recorder for RotatingJsonl {
    fn wants(&self, kind: EventKind) -> bool {
        !self.excluded.contains(&kind)
    }

    fn record(&mut self, event: &Event) {
        if !self.wants(event.kind()) {
            return;
        }
        let Ok(mut line) = serde_json::to_string(event) else {
            self.dropped += 1;
            return;
        };
        line.push('\n');
        if self.active_bytes + line.len() as u64 > self.max_bytes && self.active_bytes > 0 {
            if let Err(e) = self.rotate() {
                self.dropped += 1;
                self.last_error = Some(e);
                return;
            }
        }
        match self.writer.write_all(line.as_bytes()) {
            Ok(()) => {
                self.active_bytes += line.len() as u64;
                self.written += 1;
            }
            Err(source) => {
                self.dropped += 1;
                self.last_error = Some(RecorderError::Write { source });
            }
        }
    }

    fn write_count(&self) -> u64 {
        self.written
    }

    fn drop_count(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(epoch: usize) -> Event {
        Event::EpochTick {
            epoch,
            sprinters: 1,
            stuck: 0,
            tripped: false,
            recovering: false,
            tasks: 2.0,
        }
    }

    #[test]
    fn noop_is_disabled_and_silent() {
        let mut n = Noop;
        assert!(!n.enabled());
        assert!(!n.wants(EventKind::EpochTick));
        n.record(&tick(0));
        assert!(n.events().is_none());
    }

    #[test]
    fn in_memory_retains_in_order_and_filters() {
        let mut r = InMemory::new().without(EventKind::SprintDecision);
        r.record(&tick(0));
        r.record(&Event::SprintDecision {
            epoch: 0,
            agent: 1,
            estimate: 3.0,
            sprint: true,
        });
        r.record(&tick(1));
        assert_eq!(r.recorded().len(), 2);
        assert_eq!(r.events().unwrap()[1].kind(), EventKind::EpochTick);
        assert_eq!(r.into_events().len(), 2);
    }

    #[test]
    fn jsonl_writes_one_line_per_event() {
        let mut w = JsonlWriter::new(Vec::new());
        w.record(&tick(0));
        w.record(&tick(1));
        assert_eq!(w.written(), 2);
        assert_eq!(w.dropped(), 0);
        let bytes = w.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let e: Event = serde_json::from_str(line).unwrap();
            assert_eq!(e.kind(), EventKind::EpochTick);
        }
    }

    #[test]
    fn jsonl_streams_are_byte_identical_for_identical_events() {
        let run = || {
            let mut w = JsonlWriter::new(Vec::new());
            for epoch in 0..50 {
                w.record(&tick(epoch));
                w.record(&Event::BreakerTrip {
                    epoch,
                    realized: 0.1 + epoch as f64 / 3.0,
                    measured: 0.1 + epoch as f64 / 3.0,
                    p_trip: 1.0 / (1.0 + epoch as f64),
                });
            }
            w.finish().unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn jsonl_filter_drops_kind_silently() {
        let mut w = JsonlWriter::new(Vec::new()).without(EventKind::EpochTick);
        w.record(&tick(0));
        assert_eq!(w.written(), 0);
        assert_eq!(w.dropped(), 0, "filtered events are not failures");
    }

    /// A scratch directory removed on drop, so failed assertions don't
    /// leak files between test runs.
    struct Scratch(std::path::PathBuf);

    impl Scratch {
        fn new(tag: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("sprint-telemetry-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            Scratch(dir)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn rotating_jsonl_rotates_at_the_size_limit_and_keeps_backups() {
        let scratch = Scratch::new("rotate");
        let path = scratch.0.join("trace.jsonl");
        let line_len = {
            let mut probe = serde_json::to_string(&tick(0)).unwrap();
            probe.push('\n');
            probe.len() as u64
        };
        // Room for two lines per file: every third event rotates.
        let mut w = RotatingJsonl::create(&path, 2 * line_len, 2).unwrap();
        for epoch in 0..7 {
            w.record(&tick(epoch));
        }
        assert_eq!(w.written(), 7);
        assert_eq!(w.dropped(), 0);
        assert_eq!(w.rotations(), 3);
        assert!(w.last_error().is_none());
        w.finish().unwrap();

        let read = |p: &std::path::Path| std::fs::read_to_string(p).unwrap();
        let active = read(&path);
        assert_eq!(active.lines().count(), 1, "{active}");
        // Newest backup is .1; only `keep = 2` backups survive.
        assert_eq!(read(&path.with_extension("jsonl.1")).lines().count(), 2);
        assert_eq!(read(&path.with_extension("jsonl.2")).lines().count(), 2);
        assert!(!path.with_extension("jsonl.3").exists());
        // Every surviving line is valid JSONL.
        for text in [&active] {
            for line in text.lines() {
                let e: Event = serde_json::from_str(line).unwrap();
                assert_eq!(e.kind(), EventKind::EpochTick);
            }
        }
    }

    #[test]
    fn rotating_jsonl_write_failure_is_typed_and_counted_not_a_panic() {
        let scratch = Scratch::new("rotate-fail");
        let path = scratch.0.join("trace.jsonl");
        let mut w = RotatingJsonl::create(&path, 64, 1).unwrap();
        // Make rotation impossible: replace the scratch dir's active
        // file's parent with a read-only dir? Portability is poor, so
        // instead force a rotate-rename failure by deleting the active
        // file out from under the writer.
        w.record(&tick(0));
        std::fs::remove_file(&path).unwrap();
        // Fill past the limit so the next record must rotate; the rename
        // of a missing file fails, which must surface as a typed drop.
        for epoch in 0..64 {
            w.record(&tick(epoch));
        }
        assert!(w.dropped() > 0, "failed rotation counts drops");
        assert!(
            matches!(w.last_error(), Some(RecorderError::Rotate { .. })),
            "{:?}",
            w.last_error()
        );
        assert_eq!(w.drop_count(), w.dropped());
    }

    #[test]
    fn rotating_jsonl_open_failure_is_typed() {
        let missing = std::path::Path::new("/nonexistent-sprint-dir/trace.jsonl");
        match RotatingJsonl::create(missing, 1024, 1) {
            Err(RecorderError::Open { path, .. }) => assert_eq!(path, missing),
            other => panic!("expected Open error, got {other:?}"),
        }
    }
}
