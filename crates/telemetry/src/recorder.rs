//! Event sinks: where recorded [`Event`]s go.
//!
//! The [`Recorder`] trait is the zero-cost-when-disabled seam between the
//! instrumented hot paths and storage. Producers check
//! [`Recorder::enabled`] once and skip event construction entirely when it
//! returns `false`, so [`Noop`] recording costs one branch per emission
//! site and perturbs nothing — no RNG draws, no allocation, no I/O.

use std::io::Write;

use crate::event::{Event, EventKind};

/// A sink for structured telemetry events.
pub trait Recorder: Send {
    /// Whether this recorder accepts events at all. Producers gate event
    /// construction on this, so disabled recorders are zero-cost.
    fn enabled(&self) -> bool {
        true
    }

    /// Whether this recorder wants events of `kind`. Lets producers skip
    /// high-volume kinds (per-agent sprint decisions) at the source.
    fn wants(&self, kind: EventKind) -> bool {
        let _ = kind;
        self.enabled()
    }

    /// Record one event.
    fn record(&mut self, event: &Event);

    /// The recorded events, when this recorder retains them in memory.
    fn events(&self) -> Option<&[Event]> {
        None
    }
}

/// The disabled recorder: accepts nothing, records nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct Noop;

impl Recorder for Noop {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: &Event) {}
}

/// Retains every recorded event in memory, for post-run analysis.
#[derive(Debug, Clone, Default)]
pub struct InMemory {
    events: Vec<Event>,
    excluded: Vec<EventKind>,
}

impl InMemory {
    /// An empty in-memory recorder accepting every event kind.
    #[must_use]
    pub fn new() -> Self {
        InMemory::default()
    }

    /// Exclude an event kind (e.g. the per-agent decision firehose).
    #[must_use]
    pub fn without(mut self, kind: EventKind) -> Self {
        if !self.excluded.contains(&kind) {
            self.excluded.push(kind);
        }
        self
    }

    /// Recorded events in arrival order.
    #[must_use]
    pub fn recorded(&self) -> &[Event] {
        &self.events
    }

    /// Consume the recorder, yielding its events.
    #[must_use]
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }
}

impl Recorder for InMemory {
    fn wants(&self, kind: EventKind) -> bool {
        !self.excluded.contains(&kind)
    }

    fn record(&mut self, event: &Event) {
        if self.wants(event.kind()) {
            self.events.push(event.clone());
        }
    }

    fn events(&self) -> Option<&[Event]> {
        Some(&self.events)
    }
}

/// Streams events as JSON Lines to any writer.
///
/// One event per line, serialized with serde_json's deterministic float
/// formatting: identical event streams produce byte-identical output.
/// Serialization or I/O failures increment [`JsonlWriter::dropped`]
/// instead of panicking — telemetry must never take the rack down.
#[derive(Debug)]
pub struct JsonlWriter<W: Write + Send> {
    writer: W,
    excluded: Vec<EventKind>,
    written: u64,
    dropped: u64,
}

impl<W: Write + Send> JsonlWriter<W> {
    /// Stream events to `writer`.
    #[must_use]
    pub fn new(writer: W) -> Self {
        JsonlWriter {
            writer,
            excluded: Vec::new(),
            written: 0,
            dropped: 0,
        }
    }

    /// Exclude an event kind from the stream.
    #[must_use]
    pub fn without(mut self, kind: EventKind) -> Self {
        if !self.excluded.contains(&kind) {
            self.excluded.push(kind);
        }
        self
    }

    /// Events successfully written.
    #[must_use]
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Events lost to serialization or I/O errors.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Flush and release the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates the final flush failure.
    pub fn finish(mut self) -> std::io::Result<W> {
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write + Send> Recorder for JsonlWriter<W> {
    fn wants(&self, kind: EventKind) -> bool {
        !self.excluded.contains(&kind)
    }

    fn record(&mut self, event: &Event) {
        if !self.wants(event.kind()) {
            return;
        }
        let Ok(mut line) = serde_json::to_string(event) else {
            self.dropped += 1;
            return;
        };
        line.push('\n');
        match self.writer.write_all(line.as_bytes()) {
            Ok(()) => self.written += 1,
            Err(_) => self.dropped += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(epoch: usize) -> Event {
        Event::EpochTick {
            epoch,
            sprinters: 1,
            stuck: 0,
            tripped: false,
            recovering: false,
            tasks: 2.0,
        }
    }

    #[test]
    fn noop_is_disabled_and_silent() {
        let mut n = Noop;
        assert!(!n.enabled());
        assert!(!n.wants(EventKind::EpochTick));
        n.record(&tick(0));
        assert!(n.events().is_none());
    }

    #[test]
    fn in_memory_retains_in_order_and_filters() {
        let mut r = InMemory::new().without(EventKind::SprintDecision);
        r.record(&tick(0));
        r.record(&Event::SprintDecision {
            epoch: 0,
            agent: 1,
            estimate: 3.0,
            sprint: true,
        });
        r.record(&tick(1));
        assert_eq!(r.recorded().len(), 2);
        assert_eq!(r.events().unwrap()[1].kind(), EventKind::EpochTick);
        assert_eq!(r.into_events().len(), 2);
    }

    #[test]
    fn jsonl_writes_one_line_per_event() {
        let mut w = JsonlWriter::new(Vec::new());
        w.record(&tick(0));
        w.record(&tick(1));
        assert_eq!(w.written(), 2);
        assert_eq!(w.dropped(), 0);
        let bytes = w.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let e: Event = serde_json::from_str(line).unwrap();
            assert_eq!(e.kind(), EventKind::EpochTick);
        }
    }

    #[test]
    fn jsonl_streams_are_byte_identical_for_identical_events() {
        let run = || {
            let mut w = JsonlWriter::new(Vec::new());
            for epoch in 0..50 {
                w.record(&tick(epoch));
                w.record(&Event::BreakerTrip {
                    epoch,
                    realized: 0.1 + epoch as f64 / 3.0,
                    measured: 0.1 + epoch as f64 / 3.0,
                    p_trip: 1.0 / (1.0 + epoch as f64),
                });
            }
            w.finish().unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn jsonl_filter_drops_kind_silently() {
        let mut w = JsonlWriter::new(Vec::new()).without(EventKind::EpochTick);
        w.record(&tick(0));
        assert_eq!(w.written(), 0);
        assert_eq!(w.dropped(), 0, "filtered events are not failures");
    }
}
