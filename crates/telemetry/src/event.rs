//! The typed event taxonomy for the sprinting rack.
//!
//! Every observable state change in the system — an epoch advancing, a
//! sprint decision, a breaker trip, a fault firing, the coordinator
//! re-solving, a mean-field iteration — is one [`Event`] variant. Events
//! carry only simulation-time data (epoch indices, counts, probabilities),
//! never wall-clock timestamps, so a recorded stream is bit-reproducible
//! under a fixed seed.

use serde::{Deserialize, Serialize};

/// Which fault the injection layer fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// An agent crashed.
    Crash,
    /// A crashed agent restarted (cold, threshold re-acquisition pending).
    Restart,
    /// A sprinter's power gate stuck in the sprint position.
    StuckGate,
    /// The panel current sensor dropped out and held its last reading.
    SensorDropout,
    /// The drifted breaker tripped where the nominal curve says it cannot.
    SpuriousTrip,
    /// The drifted breaker held where the nominal curve says certain trip.
    MissedTrip,
    /// The transport dropped a control-plane message.
    MessageLoss,
    /// The transport delayed a control-plane message past its epoch.
    MessageDelay,
    /// The transport delivered a control-plane message more than once.
    MessageDuplicate,
    /// A rack partition cut agents off from the coordinator.
    Partition,
}

impl FaultKind {
    /// All fault kinds, for per-kind metric registration.
    pub const ALL: [FaultKind; 10] = [
        FaultKind::Crash,
        FaultKind::Restart,
        FaultKind::StuckGate,
        FaultKind::SensorDropout,
        FaultKind::SpuriousTrip,
        FaultKind::MissedTrip,
        FaultKind::MessageLoss,
        FaultKind::MessageDelay,
        FaultKind::MessageDuplicate,
        FaultKind::Partition,
    ];

    /// Stable snake_case name, used for per-kind metric names.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Crash => "crash",
            FaultKind::Restart => "restart",
            FaultKind::StuckGate => "stuck_gate",
            FaultKind::SensorDropout => "sensor_dropout",
            FaultKind::SpuriousTrip => "spurious_trip",
            FaultKind::MissedTrip => "missed_trip",
            FaultKind::MessageLoss => "message_loss",
            FaultKind::MessageDelay => "message_delay",
            FaultKind::MessageDuplicate => "message_duplicate",
            FaultKind::Partition => "partition",
        }
    }
}

/// One rung of the control plane's graceful-degradation ladder.
///
/// An agent always holds a usable threshold; this names where it came
/// from, ordered best to worst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ControlTier {
    /// A live lease on a freshly solved equilibrium strategy.
    Equilibrium,
    /// The lease lapsed; the agent runs its last assignment, stale.
    StaleCache,
    /// No usable assignment; the provably breaker-safe fallback.
    Conservative,
}

impl ControlTier {
    /// All tiers, best first, for per-tier metric registration.
    pub const ALL: [ControlTier; 3] = [
        ControlTier::Equilibrium,
        ControlTier::StaleCache,
        ControlTier::Conservative,
    ];

    /// Stable snake_case name, used for per-tier metric names.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ControlTier::Equilibrium => "equilibrium",
            ControlTier::StaleCache => "stale_cache",
            ControlTier::Conservative => "conservative",
        }
    }
}

/// One rung of the coordinator's graduated sanctions ladder.
///
/// Replaces the offline grim trigger's single irreversible ban with an
/// escalation that tolerates sensor noise: a warning costs nothing, a
/// revocation is timed and followed by probation, and only repeated
/// detections reach permanent exclusion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SanctionLevel {
    /// First detection: the agent is put on notice, nothing changes.
    Warning,
    /// Timed sprint-lease revocation; expires into probation.
    Revocation,
    /// Permanent exclusion from the sprinting population.
    Exclusion,
}

impl SanctionLevel {
    /// All sanction levels, mildest first, for per-level metrics.
    pub const ALL: [SanctionLevel; 3] = [
        SanctionLevel::Warning,
        SanctionLevel::Revocation,
        SanctionLevel::Exclusion,
    ];

    /// Stable snake_case name, used for per-level metric names.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            SanctionLevel::Warning => "warning",
            SanctionLevel::Revocation => "revocation",
            SanctionLevel::Exclusion => "exclusion",
        }
    }
}

/// How loud an event is, for severity-based recorder filtering.
///
/// Ordered quietest first so `severity >= min` expresses "at least this
/// important". The mapping from kind to severity is fixed (see
/// [`EventKind::severity`]): per-agent firehose kinds are [`Debug`],
/// routine lifecycle is [`Info`], anomalies the operator should see are
/// [`Warn`], and enforcement actions are [`Error`].
///
/// [`Debug`]: Severity::Debug
/// [`Info`]: Severity::Info
/// [`Warn`]: Severity::Warn
/// [`Error`]: Severity::Error
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Per-agent / per-iteration firehose detail.
    Debug,
    /// Routine lifecycle: epochs, leases, solver outcomes.
    Info,
    /// Anomalies: trips, faults, tier degradation, suspicion.
    Warn,
    /// Enforcement: adversary detections and sanctions.
    Error,
}

impl Severity {
    /// All severities, quietest first.
    pub const ALL: [Severity; 4] = [
        Severity::Debug,
        Severity::Info,
        Severity::Warn,
        Severity::Error,
    ];

    /// Stable snake_case name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Severity::Debug => "debug",
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

/// Discriminant of an [`Event`], for recorder-side filtering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// [`Event::RunStart`].
    RunStart,
    /// [`Event::EpochTick`].
    EpochTick,
    /// [`Event::SprintDecision`].
    SprintDecision,
    /// [`Event::BreakerTrip`].
    BreakerTrip,
    /// [`Event::FaultInjected`].
    FaultInjected,
    /// [`Event::CoordinatorResolve`].
    CoordinatorResolve,
    /// [`Event::SolverIteration`].
    SolverIteration,
    /// [`Event::SolverEscalation`].
    SolverEscalation,
    /// [`Event::SolverBisection`].
    SolverBisection,
    /// [`Event::SolverOutcome`].
    SolverOutcome,
    /// [`Event::TierShift`].
    TierShift,
    /// [`Event::LeaseGranted`].
    LeaseGranted,
    /// [`Event::LeaseExpired`].
    LeaseExpired,
    /// [`Event::AgentSuspected`].
    AgentSuspected,
    /// [`Event::RetryBackoff`].
    RetryBackoff,
    /// [`Event::AdversaryDetected`].
    AdversaryDetected,
    /// [`Event::SanctionApplied`].
    SanctionApplied,
    /// [`Event::SanctionLifted`].
    SanctionLifted,
    /// [`Event::TrialStarted`].
    TrialStarted,
    /// [`Event::TrialFinished`].
    TrialFinished,
    /// [`Event::JobRecovered`].
    JobRecovered,
    /// [`Event::JobCancelled`].
    JobCancelled,
    /// [`Event::JobDeadlineExceeded`].
    JobDeadlineExceeded,
    /// [`Event::JobShed`].
    JobShed,
    /// [`Event::RunEnd`].
    RunEnd,
}

impl EventKind {
    /// All event kinds, in declaration order.
    pub const ALL: [EventKind; 25] = [
        EventKind::RunStart,
        EventKind::EpochTick,
        EventKind::SprintDecision,
        EventKind::BreakerTrip,
        EventKind::FaultInjected,
        EventKind::CoordinatorResolve,
        EventKind::SolverIteration,
        EventKind::SolverEscalation,
        EventKind::SolverBisection,
        EventKind::SolverOutcome,
        EventKind::TierShift,
        EventKind::LeaseGranted,
        EventKind::LeaseExpired,
        EventKind::AgentSuspected,
        EventKind::RetryBackoff,
        EventKind::AdversaryDetected,
        EventKind::SanctionApplied,
        EventKind::SanctionLifted,
        EventKind::TrialStarted,
        EventKind::TrialFinished,
        EventKind::JobRecovered,
        EventKind::JobCancelled,
        EventKind::JobDeadlineExceeded,
        EventKind::JobShed,
        EventKind::RunEnd,
    ];

    /// The fixed severity of events of this kind.
    #[must_use]
    pub fn severity(&self) -> Severity {
        match self {
            EventKind::SprintDecision
            | EventKind::SolverIteration
            | EventKind::SolverEscalation
            | EventKind::SolverBisection
            | EventKind::TrialStarted => Severity::Debug,
            EventKind::RunStart
            | EventKind::EpochTick
            | EventKind::CoordinatorResolve
            | EventKind::SolverOutcome
            | EventKind::LeaseGranted
            | EventKind::LeaseExpired
            | EventKind::SanctionLifted
            | EventKind::TrialFinished
            | EventKind::JobRecovered
            | EventKind::JobCancelled
            | EventKind::RunEnd => Severity::Info,
            EventKind::BreakerTrip
            | EventKind::FaultInjected
            | EventKind::TierShift
            | EventKind::AgentSuspected
            | EventKind::RetryBackoff
            | EventKind::JobDeadlineExceeded
            | EventKind::JobShed => Severity::Warn,
            EventKind::AdversaryDetected | EventKind::SanctionApplied => Severity::Error,
        }
    }
}

/// One structured telemetry event.
///
/// Serialized externally tagged — `{"EpochTick":{...}}`, unit variants as
/// bare strings — so a JSONL stream is self-describing line by line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A simulation run began.
    RunStart {
        /// Agents in the rack.
        agents: u32,
        /// Epoch horizon.
        epochs: usize,
        /// Master seed.
        seed: u64,
        /// Driving policy's display name.
        policy: String,
    },
    /// One epoch of rack dynamics resolved.
    EpochTick {
        /// Epoch index.
        epoch: usize,
        /// Sprinters this epoch (0 while recovering).
        sprinters: u32,
        /// Stuck power gates drawing phantom sprint current.
        stuck: u32,
        /// Whether the breaker tripped this epoch.
        tripped: bool,
        /// Whether the rack spent this epoch in recovery.
        recovering: bool,
        /// Task-units produced this epoch across the rack.
        tasks: f64,
    },
    /// One agent's sprint decision (high-volume; recorders may filter).
    SprintDecision {
        /// Epoch index.
        epoch: usize,
        /// Agent index.
        agent: u32,
        /// The utility estimate the decision saw.
        estimate: f64,
        /// Whether the agent sprints.
        sprint: bool,
    },
    /// The breaker tripped.
    BreakerTrip {
        /// Epoch index.
        epoch: usize,
        /// True sprinter-equivalent load.
        realized: f64,
        /// Load the breaker measured (differs under sensor faults).
        measured: f64,
        /// Equation-11 trip probability at the measured load.
        p_trip: f64,
    },
    /// The fault-injection layer fired.
    FaultInjected {
        /// Epoch index.
        epoch: usize,
        /// Which fault.
        kind: FaultKind,
        /// Affected agent, when the fault is per-agent.
        agent: Option<u32>,
    },
    /// The coordinator completed an offline (re-)solve.
    CoordinatorResolve {
        /// Distinct application types solved for.
        types: usize,
        /// Whether Algorithm 1 met its tolerance.
        converged: bool,
        /// Outer iterations spent.
        iterations: usize,
        /// Final fixed-point residual.
        residual: f64,
        /// Stationary tripping probability advertised to agents.
        trip_probability: f64,
    },
    /// One outer iteration of the mean-field solver (Algorithm 1).
    SolverIteration {
        /// Damping-escalation attempt index (0 = configured damping).
        attempt: u32,
        /// Global iteration counter across attempts.
        iteration: usize,
        /// Damping factor in effect.
        damping: f64,
        /// Tripping probability entering the iteration.
        p_trip: f64,
        /// Tripping probability the best response implies.
        implied: f64,
        /// `|implied − p_trip|`.
        residual: f64,
    },
    /// The solver escalated to heavier damping.
    SolverEscalation {
        /// The new damping factor.
        damping: f64,
    },
    /// The solver fell back to bisection.
    SolverBisection,
    /// The solver finished (converged or exhausted).
    SolverOutcome {
        /// Whether a fixed point within tolerance was found.
        converged: bool,
        /// Total outer iterations across every attempt.
        iterations: usize,
        /// Final (best) residual.
        residual: f64,
        /// Threshold of the returned (or best) iterate.
        threshold: f64,
    },
    /// An agent moved between degradation-ladder tiers.
    TierShift {
        /// Epoch index.
        epoch: usize,
        /// The agent whose tier changed.
        agent: u32,
        /// Tier before the shift.
        from: ControlTier,
        /// Tier after the shift.
        to: ControlTier,
    },
    /// The coordinator granted (or renewed) a strategy lease.
    LeaseGranted {
        /// Epoch index.
        epoch: usize,
        /// The agent holding the lease.
        agent: u32,
        /// Lease duration in epochs.
        lease_epochs: u32,
        /// Whether the leased strategy came from the stale-cache tier.
        stale: bool,
    },
    /// An agent's strategy lease lapsed without renewal.
    LeaseExpired {
        /// Epoch index.
        epoch: usize,
        /// The agent whose lease lapsed.
        agent: u32,
    },
    /// The coordinator marked an agent suspect after missed heartbeats.
    AgentSuspected {
        /// Epoch index.
        epoch: usize,
        /// The suspect agent.
        agent: u32,
        /// Epochs of silence that triggered suspicion.
        silent_epochs: u32,
    },
    /// A retry loop backed off before its next attempt.
    RetryBackoff {
        /// Epoch index.
        epoch: usize,
        /// Retry attempt number (1 = first retry).
        attempt: u32,
        /// Jittered delay until the next attempt, in epochs.
        delay_epochs: u32,
    },
    /// The CUSUM detector crossed its decision threshold for an agent.
    AdversaryDetected {
        /// Epoch index (when the triggering report was accepted).
        epoch: usize,
        /// The agent the detector flagged.
        agent: u32,
        /// The CUSUM statistic at the moment of detection.
        statistic: f64,
        /// Observed sprint rate given active, over the triggering window.
        observed: f64,
        /// Sprint rate the assigned threshold implies under the density.
        expected: f64,
    },
    /// The coordinator escalated an agent on the sanctions ladder.
    SanctionApplied {
        /// Epoch index.
        epoch: usize,
        /// The sanctioned agent.
        agent: u32,
        /// Which rung of the ladder was applied.
        level: SanctionLevel,
        /// Confirmed detections against this agent so far.
        strikes: u32,
        /// Sanction duration in epochs; `None` when untimed (a warning,
        /// or a permanent exclusion).
        duration_epochs: Option<u32>,
    },
    /// A timed sanction lapsed and the agent moved back down the ladder.
    SanctionLifted {
        /// Epoch index.
        epoch: usize,
        /// The re-admitted agent.
        agent: u32,
        /// `true` when a revocation expired into probation (the detector
        /// stays armed with a reduced threshold); `false` when probation
        /// completed and the agent is fully restored.
        probation: bool,
    },
    /// A sweep worker picked up one grid trial.
    TrialStarted {
        /// Trial index in expansion order.
        trial: usize,
        /// The worker slot executing it (pool-local index, not a thread
        /// id; jobs-dependent, so never folded into canonical reports).
        worker: usize,
    },
    /// A sweep worker finished one grid trial.
    TrialFinished {
        /// Trial index in expansion order.
        trial: usize,
        /// The worker slot that executed it.
        worker: usize,
        /// Supervised attempts consumed (1 = clean first try).
        attempts: u32,
        /// Whether the trial ended quarantined instead of recorded.
        quarantined: bool,
    },
    /// The daemon re-executed (or re-adopted) a journaled job after a
    /// restart.
    JobRecovered {
        /// Daemon-assigned job id.
        job: u64,
        /// `true` when the job was re-executed from its spec; `false`
        /// when a spooled report was adopted without re-execution.
        reexecuted: bool,
    },
    /// A job was cancelled through `POST /v1/jobs/{id}/cancel`.
    JobCancelled {
        /// Daemon-assigned job id.
        job: u64,
    },
    /// A job ran past its `deadline_ms` and was abandoned at the next
    /// cooperative checkpoint.
    JobDeadlineExceeded {
        /// Daemon-assigned job id.
        job: u64,
        /// The deadline that was exceeded, in milliseconds.
        limit_ms: u64,
    },
    /// Admission control shed a submission (queue full, rate limit, or
    /// quota) instead of accepting it.
    JobShed {
        /// Jobs queued at the moment of shedding.
        queued: u64,
    },
    /// A simulation run finished.
    RunEnd {
        /// Total task-units completed.
        total_tasks: f64,
        /// Breaker trips observed.
        trips: u32,
    },
}

impl Event {
    /// The event's discriminant, for filtering.
    #[must_use]
    pub fn kind(&self) -> EventKind {
        match self {
            Event::RunStart { .. } => EventKind::RunStart,
            Event::EpochTick { .. } => EventKind::EpochTick,
            Event::SprintDecision { .. } => EventKind::SprintDecision,
            Event::BreakerTrip { .. } => EventKind::BreakerTrip,
            Event::FaultInjected { .. } => EventKind::FaultInjected,
            Event::CoordinatorResolve { .. } => EventKind::CoordinatorResolve,
            Event::SolverIteration { .. } => EventKind::SolverIteration,
            Event::SolverEscalation { .. } => EventKind::SolverEscalation,
            Event::SolverBisection => EventKind::SolverBisection,
            Event::SolverOutcome { .. } => EventKind::SolverOutcome,
            Event::TierShift { .. } => EventKind::TierShift,
            Event::LeaseGranted { .. } => EventKind::LeaseGranted,
            Event::LeaseExpired { .. } => EventKind::LeaseExpired,
            Event::AgentSuspected { .. } => EventKind::AgentSuspected,
            Event::RetryBackoff { .. } => EventKind::RetryBackoff,
            Event::AdversaryDetected { .. } => EventKind::AdversaryDetected,
            Event::SanctionApplied { .. } => EventKind::SanctionApplied,
            Event::SanctionLifted { .. } => EventKind::SanctionLifted,
            Event::TrialStarted { .. } => EventKind::TrialStarted,
            Event::TrialFinished { .. } => EventKind::TrialFinished,
            Event::JobRecovered { .. } => EventKind::JobRecovered,
            Event::JobCancelled { .. } => EventKind::JobCancelled,
            Event::JobDeadlineExceeded { .. } => EventKind::JobDeadlineExceeded,
            Event::JobShed { .. } => EventKind::JobShed,
            Event::RunEnd { .. } => EventKind::RunEnd,
        }
    }

    /// The event's severity (fixed per kind).
    #[must_use]
    pub fn severity(&self) -> Severity {
        self.kind().severity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_serialize_self_describing() {
        let e = Event::EpochTick {
            epoch: 3,
            sprinters: 12,
            stuck: 0,
            tripped: false,
            recovering: false,
            tasks: 41.5,
        };
        let json = serde_json::to_string(&e).unwrap();
        assert!(json.starts_with("{\"EpochTick\":"), "{json}");
        let back: Event = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
        assert_eq!(back.kind(), EventKind::EpochTick);
    }

    #[test]
    fn every_variant_reports_its_kind() {
        let samples = [
            Event::RunStart {
                agents: 1,
                epochs: 1,
                seed: 0,
                policy: "g".into(),
            },
            Event::SprintDecision {
                epoch: 0,
                agent: 0,
                estimate: 1.0,
                sprint: true,
            },
            Event::BreakerTrip {
                epoch: 0,
                realized: 10.0,
                measured: 10.0,
                p_trip: 0.5,
            },
            Event::FaultInjected {
                epoch: 0,
                kind: FaultKind::Crash,
                agent: Some(4),
            },
            Event::CoordinatorResolve {
                types: 1,
                converged: true,
                iterations: 8,
                residual: 1e-10,
                trip_probability: 0.05,
            },
            Event::SolverIteration {
                attempt: 0,
                iteration: 1,
                damping: 0.5,
                p_trip: 1.0,
                implied: 0.2,
                residual: 0.8,
            },
            Event::SolverEscalation { damping: 0.25 },
            Event::SolverBisection,
            Event::SolverOutcome {
                converged: false,
                iterations: 900,
                residual: 0.3,
                threshold: 2.0,
            },
            Event::TierShift {
                epoch: 5,
                agent: 3,
                from: ControlTier::Equilibrium,
                to: ControlTier::StaleCache,
            },
            Event::LeaseGranted {
                epoch: 5,
                agent: 3,
                lease_epochs: 20,
                stale: false,
            },
            Event::LeaseExpired {
                epoch: 25,
                agent: 3,
            },
            Event::AgentSuspected {
                epoch: 30,
                agent: 3,
                silent_epochs: 12,
            },
            Event::RetryBackoff {
                epoch: 31,
                attempt: 1,
                delay_epochs: 2,
            },
            Event::AdversaryDetected {
                epoch: 40,
                agent: 7,
                statistic: 2.4,
                observed: 1.0,
                expected: 0.3,
            },
            Event::SanctionApplied {
                epoch: 40,
                agent: 7,
                level: SanctionLevel::Revocation,
                strikes: 2,
                duration_epochs: Some(30),
            },
            Event::SanctionLifted {
                epoch: 70,
                agent: 7,
                probation: true,
            },
            Event::TrialStarted {
                trial: 9,
                worker: 1,
            },
            Event::TrialFinished {
                trial: 9,
                worker: 1,
                attempts: 2,
                quarantined: false,
            },
            Event::JobRecovered {
                job: 3,
                reexecuted: true,
            },
            Event::JobCancelled { job: 3 },
            Event::JobDeadlineExceeded {
                job: 3,
                limit_ms: 500,
            },
            Event::JobShed { queued: 64 },
            Event::RunEnd {
                total_tasks: 100.0,
                trips: 2,
            },
        ];
        for e in samples {
            let json = serde_json::to_string(&e).unwrap();
            let back: Event = serde_json::from_str(&json).unwrap();
            assert_eq!(back.kind(), e.kind());
        }
    }

    #[test]
    fn severities_cover_every_kind_and_order_quietest_first() {
        assert!(Severity::Debug < Severity::Info);
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
        for kind in EventKind::ALL {
            // Every kind maps to a severity without panicking, and the
            // mapping is stable enough to filter on.
            let s = kind.severity();
            assert!(Severity::ALL.contains(&s));
        }
        assert_eq!(EventKind::SprintDecision.severity(), Severity::Debug);
        assert_eq!(EventKind::EpochTick.severity(), Severity::Info);
        assert_eq!(EventKind::BreakerTrip.severity(), Severity::Warn);
        assert_eq!(EventKind::SanctionApplied.severity(), Severity::Error);
        let e = Event::SolverBisection;
        assert_eq!(e.severity(), Severity::Debug);
    }

    #[test]
    fn fault_kinds_round_trip_and_names_are_distinct() {
        let mut names = Vec::new();
        for k in FaultKind::ALL {
            let json = serde_json::to_string(&k).unwrap();
            let back: FaultKind = serde_json::from_str(&json).unwrap();
            assert_eq!(back, k);
            names.push(k.name());
        }
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), FaultKind::ALL.len());
    }

    #[test]
    fn sanction_levels_round_trip_and_order_mildest_first() {
        let mut names = Vec::new();
        for s in SanctionLevel::ALL {
            let json = serde_json::to_string(&s).unwrap();
            let back: SanctionLevel = serde_json::from_str(&json).unwrap();
            assert_eq!(back, s);
            names.push(s.name());
        }
        assert_eq!(names, ["warning", "revocation", "exclusion"]);
    }

    #[test]
    fn control_tiers_round_trip_and_order_best_first() {
        let mut names = Vec::new();
        for t in ControlTier::ALL {
            let json = serde_json::to_string(&t).unwrap();
            let back: ControlTier = serde_json::from_str(&json).unwrap();
            assert_eq!(back, t);
            names.push(t.name());
        }
        assert_eq!(names, ["equilibrium", "stale_cache", "conservative"]);
    }
}
