//! Injected clocks for timing spans.
//!
//! Span timing reads time through the [`Clock`] trait so the same
//! instrumented code can run against the OS monotonic clock (real
//! profiles) or a [`ManualClock`] (deterministic ticks), keeping traced
//! runs reproducible byte for byte.

use std::time::Instant;

/// A monotonic nanosecond source.
pub trait Clock: Send {
    /// Nanoseconds since this clock's origin. Must never go backwards.
    fn now_nanos(&mut self) -> u64;
}

/// The OS monotonic clock.
#[derive(Debug, Clone)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is now.
    #[must_use]
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_nanos(&mut self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A deterministic clock advancing a fixed tick per reading.
///
/// Two identical runs read identical timestamps, so span profiles (and
/// anything derived from them) stay bit-reproducible.
#[derive(Debug, Clone, Copy)]
pub struct ManualClock {
    now: u64,
    tick: u64,
}

impl ManualClock {
    /// A clock at zero advancing `tick` nanoseconds per reading.
    #[must_use]
    pub fn new(tick: u64) -> Self {
        ManualClock { now: 0, tick }
    }

    /// Advance the clock by an explicit amount.
    pub fn advance(&mut self, nanos: u64) {
        self.now = self.now.saturating_add(nanos);
    }
}

impl Default for ManualClock {
    fn default() -> Self {
        ManualClock::new(1)
    }
}

impl Clock for ManualClock {
    fn now_nanos(&mut self) -> u64 {
        self.now = self.now.saturating_add(self.tick);
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_never_goes_backwards() {
        let mut c = MonotonicClock::new();
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn manual_is_deterministic() {
        let mut a = ManualClock::new(10);
        let mut b = ManualClock::new(10);
        for _ in 0..5 {
            assert_eq!(a.now_nanos(), b.now_nanos());
        }
        a.advance(100);
        assert_eq!(a.now_nanos(), 160);
    }
}
