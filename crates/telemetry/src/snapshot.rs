//! Periodic health snapshots: a read-only observer over the event stream.
//!
//! A [`HealthAggregator`] folds [`Event`]s — from a live ring drain, an
//! in-process recorder, or a recorded JSONL trace — into running counts,
//! and freezes them on demand into a serializable [`HealthSnapshot`]:
//! epoch progress and rate, sprint/trip/recovery rates, degradation
//! tier, lease and sanction counts, sweep trial progress, and drop
//! accounting. The aggregator is an observer in the pattern sense: it
//! never touches the epoch loop, holds no references into the engine,
//! and derives everything from the same event stream any other consumer
//! sees, so attaching it cannot perturb a run.
//!
//! Snapshots carry simulation-time facts plus one explicitly injected
//! wall-clock input: the caller passes `elapsed_nanos` into
//! [`HealthAggregator::snapshot`], which keeps snapshot bytes
//! deterministic whenever the caller injects a deterministic elapsed
//! time (the CI jobs-invariance gate does exactly that).

use serde::Serialize;

use crate::event::{ControlTier, Event};
use crate::registry::Registry;

/// Running state folded from an event stream. Create one per run (or
/// per monitoring window), feed every event to [`HealthAggregator::fold`],
/// and freeze views with [`HealthAggregator::snapshot`].
#[derive(Debug, Clone, Default)]
pub struct HealthAggregator {
    agents: u32,
    policy: Option<String>,
    horizon: usize,
    last_epoch: usize,
    epochs: u64,
    sprinter_epochs: f64,
    recovering_epochs: u64,
    tripped_epochs: u64,
    tasks: f64,
    breaker_trips: u64,
    faults: u64,
    decisions: u64,
    tier: Option<ControlTier>,
    tier_shifts: u64,
    leases_granted: u64,
    leases_expired: u64,
    agents_suspected: u64,
    adversaries_detected: u64,
    sanctions_applied: u64,
    sanctions_lifted: u64,
    trials_started: u64,
    trials_finished: u64,
    trials_quarantined: u64,
    runs_finished: u64,
}

impl HealthAggregator {
    /// An empty aggregator.
    #[must_use]
    pub fn new() -> Self {
        HealthAggregator::default()
    }

    /// Fold one event into the running state.
    pub fn fold(&mut self, event: &Event) {
        match event {
            Event::RunStart {
                agents,
                epochs,
                policy,
                ..
            } => {
                self.agents = *agents;
                self.horizon = *epochs;
                self.policy = Some(policy.clone());
            }
            Event::EpochTick {
                epoch,
                sprinters,
                tripped,
                recovering,
                tasks,
                ..
            } => {
                self.last_epoch = *epoch;
                self.epochs += 1;
                self.sprinter_epochs += f64::from(*sprinters);
                self.tripped_epochs += u64::from(*tripped);
                self.recovering_epochs += u64::from(*recovering);
                self.tasks += tasks;
            }
            Event::SprintDecision { .. } => self.decisions += 1,
            Event::BreakerTrip { .. } => self.breaker_trips += 1,
            Event::FaultInjected { .. } => self.faults += 1,
            Event::TierShift { to, .. } => {
                self.tier = Some(*to);
                self.tier_shifts += 1;
            }
            Event::LeaseGranted { .. } => self.leases_granted += 1,
            Event::LeaseExpired { .. } => self.leases_expired += 1,
            Event::AgentSuspected { .. } => self.agents_suspected += 1,
            Event::AdversaryDetected { .. } => self.adversaries_detected += 1,
            Event::SanctionApplied { .. } => self.sanctions_applied += 1,
            Event::SanctionLifted { .. } => self.sanctions_lifted += 1,
            Event::TrialStarted { .. } => self.trials_started += 1,
            Event::TrialFinished { quarantined, .. } => {
                self.trials_finished += 1;
                self.trials_quarantined += u64::from(*quarantined);
            }
            Event::RunEnd { .. } => self.runs_finished += 1,
            // Daemon-lifecycle kinds are counted by the serve layer's own
            // registry; folding them here would churn snapshot bytes that
            // downstream golden gates pin.
            Event::CoordinatorResolve { .. }
            | Event::SolverIteration { .. }
            | Event::SolverEscalation { .. }
            | Event::SolverBisection
            | Event::SolverOutcome { .. }
            | Event::RetryBackoff { .. }
            | Event::JobRecovered { .. }
            | Event::JobCancelled { .. }
            | Event::JobDeadlineExceeded { .. }
            | Event::JobShed { .. } => {}
        }
    }

    /// Fold a whole batch (e.g. one ring drain).
    pub fn fold_all<'a>(&mut self, events: impl IntoIterator<Item = &'a Event>) {
        for event in events {
            self.fold(event);
        }
    }

    /// Epochs folded so far.
    #[must_use]
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Whether a `RunEnd` has been folded.
    #[must_use]
    pub fn finished(&self) -> bool {
        self.runs_finished > 0
    }

    /// Freeze the running state into a snapshot.
    ///
    /// `elapsed_nanos` is the observation window's wall-clock length and
    /// is the *only* wall-clock input: pass a measured duration for live
    /// monitoring, or a fixed value (e.g. 0) when snapshot bytes must be
    /// reproducible. `drop_counts` comes from the transport (ring or
    /// recorder) so truncation is always visible in the snapshot itself.
    #[must_use]
    pub fn snapshot(&self, elapsed_nanos: u64, dropped_events: u64) -> HealthSnapshot {
        let epochs = self.epochs;
        let rate = |n: u64| {
            if epochs == 0 {
                0.0
            } else {
                n as f64 / epochs as f64
            }
        };
        let epochs_per_sec = if elapsed_nanos == 0 {
            0.0
        } else {
            epochs as f64 * 1e9 / elapsed_nanos as f64
        };
        let sprint_rate = if epochs == 0 || self.agents == 0 {
            0.0
        } else {
            self.sprinter_epochs / (epochs as f64 * f64::from(self.agents))
        };
        HealthSnapshot {
            agents: self.agents,
            policy: self.policy.clone().unwrap_or_default(),
            epoch: self.last_epoch,
            horizon: self.horizon,
            epochs: self.epochs,
            epochs_per_sec,
            sprint_rate,
            trip_rate: rate(self.tripped_epochs),
            recovery_rate: rate(self.recovering_epochs),
            tasks: self.tasks,
            breaker_trips: self.breaker_trips,
            faults: self.faults,
            decisions: self.decisions,
            tier: self.tier.map(|t| t.name().to_string()),
            tier_shifts: self.tier_shifts,
            leases_granted: self.leases_granted,
            leases_expired: self.leases_expired,
            agents_suspected: self.agents_suspected,
            adversaries_detected: self.adversaries_detected,
            sanctions_applied: self.sanctions_applied,
            sanctions_lifted: self.sanctions_lifted,
            trials_started: self.trials_started,
            trials_finished: self.trials_finished,
            trials_quarantined: self.trials_quarantined,
            runs_finished: self.runs_finished,
            cache_hit_ratio: None,
            dropped_events,
            workers: Vec::new(),
        }
    }

    /// As [`HealthAggregator::snapshot`], additionally reading the
    /// equilibrium-cache hit ratio out of a registry when its
    /// `cache.equilibrium.*` counters are present.
    #[must_use]
    pub fn snapshot_with_registry(
        &self,
        elapsed_nanos: u64,
        dropped_events: u64,
        registry: &Registry,
    ) -> HealthSnapshot {
        let mut snap = self.snapshot(elapsed_nanos, dropped_events);
        let hits = registry.counter_value("cache.equilibrium.hits");
        let misses = registry.counter_value("cache.equilibrium.misses");
        if let (Some(h), Some(m)) = (hits, misses) {
            if h + m > 0 {
                snap.cache_hit_ratio = Some(h as f64 / (h + m) as f64);
            }
        }
        snap
    }
}

/// Per-worker utilization within an observation window.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WorkerHealth {
    /// Worker slot index within the pool.
    pub worker: usize,
    /// Trials (or work items) this worker completed.
    pub trials: u64,
    /// Nanoseconds this worker spent executing work.
    pub busy_nanos: u64,
    /// `busy_nanos` over the pool's wall-clock window (0..=1 nominal;
    /// can exceed 1 marginally when clocks skew).
    pub utilization: f64,
}

/// A frozen, serializable health view of a run in progress.
///
/// Serialize-only (like [`MetricsSnapshot`](crate::MetricsSnapshot)):
/// snapshots are an export format. All fields except `epochs_per_sec`
/// and `workers` derive from simulation-time events, so two snapshots of
/// the same run at the same point with the same injected elapsed time
/// serialize to identical bytes.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HealthSnapshot {
    /// Agents in the rack (0 until `RunStart` is seen).
    pub agents: u32,
    /// Driving policy name ("" until `RunStart` is seen).
    pub policy: String,
    /// Last epoch index observed.
    pub epoch: usize,
    /// Epoch horizon of the run (0 until `RunStart` is seen).
    pub horizon: usize,
    /// Epoch ticks folded.
    pub epochs: u64,
    /// Epoch throughput over the injected elapsed time (0 when no
    /// elapsed time was injected).
    pub epochs_per_sec: f64,
    /// Mean fraction of agents sprinting per epoch.
    pub sprint_rate: f64,
    /// Fraction of epochs that tripped the breaker.
    pub trip_rate: f64,
    /// Fraction of epochs spent in recovery.
    pub recovery_rate: f64,
    /// Cumulative task-units produced.
    pub tasks: f64,
    /// Breaker-trip events observed.
    pub breaker_trips: u64,
    /// Fault injections observed.
    pub faults: u64,
    /// Per-agent sprint decisions observed (0 when the firehose is
    /// filtered at the source).
    pub decisions: u64,
    /// Current degradation tier, when the control plane reported one.
    pub tier: Option<String>,
    /// Degradation-ladder shifts observed.
    pub tier_shifts: u64,
    /// Strategy leases granted or renewed.
    pub leases_granted: u64,
    /// Strategy leases lapsed.
    pub leases_expired: u64,
    /// Agents marked suspect after missed heartbeats.
    pub agents_suspected: u64,
    /// CUSUM adversary detections.
    pub adversaries_detected: u64,
    /// Sanctions applied.
    pub sanctions_applied: u64,
    /// Sanctions lifted.
    pub sanctions_lifted: u64,
    /// Sweep trials started (sweep monitoring only).
    pub trials_started: u64,
    /// Sweep trials finished.
    pub trials_finished: u64,
    /// Sweep trials quarantined.
    pub trials_quarantined: u64,
    /// Completed runs observed (a sweep sees many).
    pub runs_finished: u64,
    /// Equilibrium-cache hit ratio, when a registry was consulted.
    pub cache_hit_ratio: Option<f64>,
    /// Events lost in transport (ring-full or recorder failures) —
    /// truncation is part of the health picture, never hidden.
    pub dropped_events: u64,
    /// Per-worker utilization for pool-backed windows (empty for
    /// single-threaded runs).
    pub workers: Vec<WorkerHealth>,
}

impl HealthSnapshot {
    /// One-line operator rendering, for rolling display.
    #[must_use]
    pub fn render_line(&self) -> String {
        let mut line = format!(
            "epoch {:>6}/{:<6} {:>8.1} ep/s  sprint {:>5.1}%  trip {:>5.2}%  recov {:>5.1}%  tasks {:.1}",
            self.epoch,
            self.horizon,
            self.epochs_per_sec,
            self.sprint_rate * 100.0,
            self.trip_rate * 100.0,
            self.recovery_rate * 100.0,
            self.tasks,
        );
        if let Some(tier) = &self.tier {
            line.push_str(&format!("  tier {tier}"));
        }
        if self.leases_granted > 0 || self.leases_expired > 0 {
            line.push_str(&format!(
                "  leases {}/{}",
                self.leases_granted, self.leases_expired
            ));
        }
        if self.sanctions_applied > 0 {
            line.push_str(&format!(
                "  sanctions {}/{}",
                self.sanctions_applied, self.sanctions_lifted
            ));
        }
        if self.trials_finished > 0 || self.trials_started > 0 {
            line.push_str(&format!(
                "  trials {}/{}",
                self.trials_finished, self.trials_started
            ));
        }
        if self.dropped_events > 0 {
            line.push_str(&format!("  DROPPED {}", self.dropped_events));
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SanctionLevel;

    fn tick(epoch: usize, sprinters: u32, tripped: bool, recovering: bool) -> Event {
        Event::EpochTick {
            epoch,
            sprinters,
            stuck: 0,
            tripped,
            recovering,
            tasks: 10.0,
        }
    }

    fn folded() -> HealthAggregator {
        let mut agg = HealthAggregator::new();
        agg.fold(&Event::RunStart {
            agents: 10,
            epochs: 100,
            seed: 7,
            policy: "greedy".into(),
        });
        agg.fold(&tick(0, 5, false, false));
        agg.fold(&tick(1, 0, true, false));
        agg.fold(&tick(2, 0, false, true));
        agg.fold(&tick(3, 5, false, false));
        agg.fold(&Event::BreakerTrip {
            epoch: 1,
            realized: 8.0,
            measured: 8.0,
            p_trip: 0.9,
        });
        agg.fold(&Event::TierShift {
            epoch: 2,
            agent: 0,
            from: ControlTier::Equilibrium,
            to: ControlTier::StaleCache,
        });
        agg.fold(&Event::LeaseGranted {
            epoch: 2,
            agent: 0,
            lease_epochs: 20,
            stale: true,
        });
        agg.fold(&Event::SanctionApplied {
            epoch: 3,
            agent: 4,
            level: SanctionLevel::Warning,
            strikes: 1,
            duration_epochs: None,
        });
        agg
    }

    #[test]
    fn rates_and_counts_fold_correctly() {
        let agg = folded();
        let snap = agg.snapshot(2_000_000_000, 0);
        assert_eq!(snap.agents, 10);
        assert_eq!(snap.policy, "greedy");
        assert_eq!(snap.epoch, 3);
        assert_eq!(snap.horizon, 100);
        assert_eq!(snap.epochs, 4);
        assert!((snap.epochs_per_sec - 2.0).abs() < 1e-12);
        // 10 sprinter-epochs over 4 epochs x 10 agents.
        assert!((snap.sprint_rate - 0.25).abs() < 1e-12);
        assert!((snap.trip_rate - 0.25).abs() < 1e-12);
        assert!((snap.recovery_rate - 0.25).abs() < 1e-12);
        assert!((snap.tasks - 40.0).abs() < 1e-12);
        assert_eq!(snap.breaker_trips, 1);
        assert_eq!(snap.tier.as_deref(), Some("stale_cache"));
        assert_eq!(snap.leases_granted, 1);
        assert_eq!(snap.sanctions_applied, 1);
        assert_eq!(snap.dropped_events, 0);
    }

    #[test]
    fn snapshot_bytes_are_deterministic_for_fixed_elapsed() {
        let make = || serde_json::to_string(&folded().snapshot(0, 0)).unwrap();
        assert_eq!(make(), make());
    }

    #[test]
    fn cache_ratio_reads_from_registry_when_present() {
        let agg = HealthAggregator::new();
        let mut registry = Registry::new();
        let h = registry.counter("cache.equilibrium.hits");
        registry.inc(h, 9);
        let m = registry.counter("cache.equilibrium.misses");
        registry.inc(m, 1);
        let snap = agg.snapshot_with_registry(0, 0, &registry);
        assert!((snap.cache_hit_ratio.unwrap() - 0.9).abs() < 1e-12);
        // Without the counters, the ratio stays absent, not fabricated.
        let empty = agg.snapshot_with_registry(0, 0, &Registry::new());
        assert!(empty.cache_hit_ratio.is_none());
    }

    #[test]
    fn trial_lifecycle_and_drops_surface_in_render() {
        let mut agg = HealthAggregator::new();
        agg.fold(&Event::TrialStarted {
            trial: 0,
            worker: 0,
        });
        agg.fold(&Event::TrialFinished {
            trial: 0,
            worker: 0,
            attempts: 1,
            quarantined: true,
        });
        let snap = agg.snapshot(0, 3);
        assert_eq!(snap.trials_started, 1);
        assert_eq!(snap.trials_finished, 1);
        assert_eq!(snap.trials_quarantined, 1);
        let line = snap.render_line();
        assert!(line.contains("trials 1/1"), "{line}");
        assert!(line.contains("DROPPED 3"), "{line}");
    }

    #[test]
    fn zero_epochs_never_divides_by_zero() {
        let snap = HealthAggregator::new().snapshot(0, 0);
        assert_eq!(snap.epochs_per_sec, 0.0);
        assert_eq!(snap.sprint_rate, 0.0);
        assert_eq!(snap.trip_rate, 0.0);
        let _ = snap.render_line();
    }
}
