//! The metrics registry: counters, gauges, fixed-bucket histograms, and
//! epoch-resolution time series.
//!
//! Hot paths register each instrument once (linear name lookup, amortized
//! to nothing) and then update through copy-sized handles — an index into
//! a dense `Vec`, no hashing or string comparison per update. A
//! [`MetricsSnapshot`] freezes everything into name-sorted, serializable
//! maps for reports.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Handle to a monotonically increasing counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a last-value-wins gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a fixed-bucket histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// Handle to an append-only time series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesId(usize);

/// A histogram over fixed, caller-supplied bucket bounds.
///
/// Bucket `i` counts observations `x ≤ bounds[i]` (first matching bound);
/// one overflow bucket counts everything beyond the last bound.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FixedHistogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
}

impl FixedHistogram {
    /// A histogram with the given ascending upper bounds.
    #[must_use]
    pub fn new(bounds: &[f64]) -> Self {
        FixedHistogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, x: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| x <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += x;
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The bucket upper bounds.
    #[must_use]
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts; the final entry is the overflow bucket.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }
}

/// The per-run metrics registry.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, FixedHistogram)>,
    series: Vec<(String, Vec<f64>)>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register (or look up) a counter.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|(n, _)| n == name) {
            return CounterId(i);
        }
        self.counters.push((name.to_string(), 0));
        CounterId(self.counters.len() - 1)
    }

    /// Increment a counter.
    pub fn inc(&mut self, id: CounterId, by: u64) {
        self.counters[id.0].1 += by;
    }

    /// Raise a counter to an absolute value, keeping it monotone: the
    /// counter becomes `max(current, value)`. For mirroring totals that
    /// accumulate outside the registry (a recorder's drop count, a
    /// ring's published count) without double-counting on re-export.
    pub fn set_counter(&mut self, id: CounterId, value: u64) {
        let c = &mut self.counters[id.0].1;
        *c = (*c).max(value);
    }

    /// Register (or look up) a gauge.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(i) = self.gauges.iter().position(|(n, _)| n == name) {
            return GaugeId(i);
        }
        self.gauges.push((name.to_string(), 0.0));
        GaugeId(self.gauges.len() - 1)
    }

    /// Set a gauge.
    pub fn set(&mut self, id: GaugeId, value: f64) {
        self.gauges[id.0].1 = value;
    }

    /// Register (or look up) a fixed-bucket histogram. Bounds are fixed by
    /// the first registration; later registrations reuse them.
    pub fn histogram(&mut self, name: &str, bounds: &[f64]) -> HistogramId {
        if let Some(i) = self.histograms.iter().position(|(n, _)| n == name) {
            return HistogramId(i);
        }
        self.histograms
            .push((name.to_string(), FixedHistogram::new(bounds)));
        HistogramId(self.histograms.len() - 1)
    }

    /// Record a histogram observation.
    pub fn observe(&mut self, id: HistogramId, x: f64) {
        self.histograms[id.0].1.observe(x);
    }

    /// Register (or look up) a time series.
    pub fn series(&mut self, name: &str) -> SeriesId {
        if let Some(i) = self.series.iter().position(|(n, _)| n == name) {
            return SeriesId(i);
        }
        self.series.push((name.to_string(), Vec::new()));
        SeriesId(self.series.len() - 1)
    }

    /// Append one sample to a time series.
    pub fn push(&mut self, id: SeriesId, value: f64) {
        self.series[id.0].1.push(value);
    }

    /// Bulk-extend a time series (e.g. a solver's residual curve).
    pub fn extend_series(&mut self, id: SeriesId, values: &[f64]) {
        self.series[id.0].1.extend_from_slice(values);
    }

    /// Current value of a counter by name, if registered.
    #[must_use]
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Current value of a gauge by name, if registered.
    #[must_use]
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// A time series by name, if registered.
    #[must_use]
    pub fn series_values(&self, name: &str) -> Option<&[f64]> {
        self.series
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_slice())
    }

    /// Fold another registry into this one, instrument by instrument.
    ///
    /// Merge semantics are chosen so that folding per-worker registries
    /// in a fixed (worker-index) order is deterministic given each
    /// worker's content: counters add; gauges are last-value-wins (the
    /// merged-in value overwrites); histograms add bucket counts
    /// elementwise when the bounds agree, and otherwise fold only the
    /// scalar count/sum (bounds are fixed by first registration); series
    /// append. Instruments missing on either side are registered.
    pub fn merge(&mut self, other: &Registry) {
        for (name, value) in &other.counters {
            let id = self.counter(name);
            self.inc(id, *value);
        }
        for (name, value) in &other.gauges {
            let id = self.gauge(name);
            self.set(id, *value);
        }
        for (name, hist) in &other.histograms {
            let id = self.histogram(name, hist.bounds());
            let mine = &mut self.histograms[id.0].1;
            if mine.bounds == hist.bounds {
                for (acc, x) in mine.counts.iter_mut().zip(&hist.counts) {
                    *acc += x;
                }
            }
            mine.count += hist.count;
            mine.sum += hist.sum;
        }
        for (name, values) in &other.series {
            let id = self.series(name);
            self.extend_series(id, values);
        }
    }

    /// Freeze everything into a serializable, name-sorted snapshot.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.iter().cloned().collect(),
            gauges: self.gauges.iter().cloned().collect(),
            histograms: self.histograms.iter().cloned().collect(),
            series: self.series.iter().cloned().collect(),
        }
    }
}

/// A frozen, serializable view of a [`Registry`].
///
/// Serialize-only: the vendored serde shim has no map deserialization, and
/// snapshots are an export format, not an interchange one.
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct MetricsSnapshot {
    /// Counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, FixedHistogram>,
    /// Time series by name.
    pub series: BTreeMap<String, Vec<f64>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_idempotently_and_accumulate() {
        let mut r = Registry::new();
        let a = r.counter("engine.trips");
        let b = r.counter("engine.trips");
        assert_eq!(a, b);
        r.inc(a, 2);
        r.inc(b, 3);
        assert_eq!(r.counter_value("engine.trips"), Some(5));
        assert_eq!(r.counter_value("missing"), None);
    }

    #[test]
    fn gauges_hold_last_value() {
        let mut r = Registry::new();
        let g = r.gauge("solver.residual");
        r.set(g, 0.5);
        r.set(g, 0.25);
        assert_eq!(r.gauge_value("solver.residual"), Some(0.25));
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = FixedHistogram::new(&[1.0, 2.0, 4.0]);
        for x in [0.5, 1.0, 1.5, 3.0, 100.0] {
            h.observe(x);
        }
        assert_eq!(h.counts(), &[2, 1, 1, 1]);
        assert_eq!(h.count(), 5);
        assert!((h.mean() - 21.2).abs() < 1e-12);
    }

    #[test]
    fn series_append_and_extend() {
        let mut r = Registry::new();
        let s = r.series("engine.sprinters");
        r.push(s, 3.0);
        r.extend_series(s, &[4.0, 5.0]);
        assert_eq!(
            r.series_values("engine.sprinters"),
            Some(&[3.0, 4.0, 5.0][..])
        );
    }

    #[test]
    fn set_counter_is_monotone_and_idempotent() {
        let mut r = Registry::new();
        let c = r.counter("ring.dropped");
        r.set_counter(c, 5);
        r.set_counter(c, 5);
        assert_eq!(r.counter_value("ring.dropped"), Some(5));
        r.set_counter(c, 3);
        assert_eq!(r.counter_value("ring.dropped"), Some(5), "never decreases");
        r.set_counter(c, 9);
        assert_eq!(r.counter_value("ring.dropped"), Some(9));
    }

    #[test]
    fn merge_folds_every_instrument_kind() {
        let mut a = Registry::new();
        let c = a.counter("trials");
        a.inc(c, 2);
        let g = a.gauge("jobs");
        a.set(g, 1.0);
        let h = a.histogram("lat", &[1.0, 2.0]);
        a.observe(h, 0.5);
        let s = a.series("ts");
        a.push(s, 1.0);

        let mut b = Registry::new();
        let c = b.counter("trials");
        b.inc(c, 3);
        let c = b.counter("only_b");
        b.inc(c, 7);
        let g = b.gauge("jobs");
        b.set(g, 4.0);
        let h = b.histogram("lat", &[1.0, 2.0]);
        b.observe(h, 1.5);
        let s = b.series("ts");
        b.push(s, 2.0);

        a.merge(&b);
        assert_eq!(a.counter_value("trials"), Some(5));
        assert_eq!(a.counter_value("only_b"), Some(7));
        assert_eq!(a.gauge_value("jobs"), Some(4.0));
        let snap = a.snapshot();
        let lat = &snap.histograms["lat"];
        assert_eq!(lat.count(), 2);
        assert_eq!(lat.counts(), &[1, 1, 0]);
        assert_eq!(a.series_values("ts"), Some(&[1.0, 2.0][..]));
    }

    #[test]
    fn merge_with_mismatched_bounds_keeps_scalars() {
        let mut a = Registry::new();
        let h = a.histogram("lat", &[1.0]);
        a.observe(h, 0.5);
        let mut b = Registry::new();
        let h = b.histogram("lat", &[9.0, 10.0]);
        b.observe(h, 8.0);
        a.merge(&b);
        let snap = a.snapshot();
        let lat = &snap.histograms["lat"];
        assert_eq!(lat.count(), 2, "scalar totals still fold");
        assert!((lat.sum() - 8.5).abs() < 1e-12);
        assert_eq!(lat.bounds(), &[1.0], "first registration wins");
    }

    #[test]
    fn snapshot_is_sorted_and_serializable() {
        let mut r = Registry::new();
        let zc = r.counter("z.last");
        r.inc(zc, 1);
        let ac = r.counter("a.first");
        r.inc(ac, 7);
        let h = r.histogram("lat", &[1.0]);
        r.observe(h, 0.5);
        let s = r.series("ts");
        r.push(s, 9.0);
        let snap = r.snapshot();
        let names: Vec<&String> = snap.counters.keys().collect();
        assert_eq!(names, ["a.first", "z.last"]);
        let json = serde_json::to_string(&snap).unwrap();
        // BTreeMap serialization keeps names sorted: a.first before z.last.
        let a = json.find("a.first").unwrap();
        let z = json.find("z.last").unwrap();
        assert!(a < z, "{json}");
        assert!(json.contains("\"lat\""), "{json}");
        assert!(json.contains("\"ts\""), "{json}");
    }
}
