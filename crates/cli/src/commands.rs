//! The `sprint` subcommands.

use serde::Serialize;

use sprint_game::cooperative::CooperativeSearch;
use sprint_game::{EquilibriumCache, GameConfig, MeanFieldSolver};
use sprint_power::rack::RackConfig;
use sprint_serve::harness::{self, ServeChild};
use sprint_serve::http::client as serve_client;
use sprint_serve::jobs::{
    execute as execute_job, report_json, ChaosMode, ChaosOutcome, ChaosSpec, ExecOptions, JobKind,
    JobOutcome, JobSpec, RunSpec,
};
use sprint_serve::{AdmissionConfig, Daemon, ServeConfig};
use sprint_sim::policy::PolicyKind;
use sprint_sim::scenario::Scenario;
use sprint_sim::sweep::{GameVariant, PopulationSpec, Supervision, SweepSpec};
use sprint_sim::telemetry::{
    collapsed_stacks, prometheus_text, Event, EventKind, EventRing, HealthAggregator, JsonlWriter,
    MetricsSnapshot, Noop, RingConfig, Severity, SpanProfile, SpanReport, Telemetry,
};
use sprint_sim::RunOptions;
use sprint_workloads::Benchmark;

use crate::args::{ArgError, ParsedArgs};

/// Top-level CLI error.
#[derive(Debug)]
pub enum CliError {
    /// Bad command line.
    Args(ArgError),
    /// Library error while executing a command.
    Run(Box<dyn std::error::Error>),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::Run(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

fn run_err<E: std::error::Error + 'static>(e: E) -> CliError {
    CliError::Run(Box::new(e))
}

/// Usage text for `sprint help`.
pub const USAGE: &str = "\
sprint — the computational sprinting game (ASPLOS 2016 reproduction)

USAGE:
  sprint solve         --benchmark <name> [--n-agents N] [--n-min X] [--n-max X]
                       [--p-cooling P] [--p-recovery P] [--discount D] [--json true]
  sprint simulate      --benchmark <name> --policy <g|e-b|e-t|c-t>
                       [--agents N] [--epochs E] [--seed S] [--jobs J]
                       [--json true] [--telemetry true]
  sprint trace         --benchmark <name> [--policy P] [--agents N] [--epochs E]
                       [--seed S] [--jobs J] [--decisions true] [--out FILE.jsonl]
  sprint report        --benchmark <name> [--policy P] [--agents N] [--epochs E]
                       [--seed S] [--jobs J] [--json true]
                       [--prometheus FILE.prom] [--flamegraph FILE.folded]
  sprint monitor       --trace FILE.jsonl [--follow true] [--every N] [--json true]
  sprint monitor       --benchmark <name> [--policy P] [--agents N] [--epochs E]
                       [--seed S] [--jobs J] [--every N] [--decisions true]
                       [--json true] [--prometheus FILE.prom]
                       [--flamegraph FILE.folded]
  sprint compare       --benchmark <name> [--agents N] [--epochs E] [--seeds K]
                       [--jobs J]
  sprint sweep         [--spec FILE.json] [--benchmark <name>] [--agents N]
                       [--epochs E] [--seeds K] [--jobs J] [--json true]
                       [--records FILE.jsonl] [--telemetry true]
                       [--print-spec true] [--trial-deadline MS]
  sprint chaos         --benchmark <name> [--agents N] [--epochs E] [--seeds K]
                       [--jobs J] [--fault-seed S] [--json true] [--telemetry true]
                       [--partition true] [--partition-start E]
                       [--partition-epochs D] [--report FILE.json]
                       [--adversaries FRAC] [--adversary-kind K]
                       [--cheat-probability P] [--clique-period N]
                       [--ceasefire E]
  sprint chaos         --serve-restart true [--restart-jobs N] [--workers W]
                       [--json true]
  sprint cluster       --benchmark <name> [--racks K] [--agents-per-rack N]
                       [--epochs E] [--facility-n-min X] [--facility-n-max X]
                       [--seed S] [--json true]
  sprint serve         [--addr HOST:PORT] [--workers N] [--jobs J]
                       [--jobs-cap N] [--spool DIR] [--event-log FILE.jsonl]
                       [--snapshot-ms MS] [--journal FILE.jsonl]
                       [--max-queue N] [--rate-limit PER_S]
                       [--client-jobs N]
  sprint derive-params [--servers N] [--json true]
  sprint benchmarks
  sprint help

Benchmarks: naive decision gradient svm linear kmeans als correlation
            pagerank cc triangle
Adversary kinds: greedy_defector stochastic_cheater collusive_clique
                 fictitious_play

`sprint serve` runs the rack-as-a-service daemon: POST a JobSpec (run,
sweep, or chaos) to /v1/jobs and read the same canonical JobReport the
CLI prints with --json true. Sweep spec files may be either a versioned
JobSpec document or a legacy bare sweep spec.";

fn parse_benchmark(args: &ParsedArgs) -> Result<Benchmark, CliError> {
    let name = args
        .get("benchmark")
        .ok_or_else(|| ArgError("--benchmark is required".into()))?;
    Benchmark::from_name(name).ok_or_else(|| {
        ArgError(format!(
            "unknown benchmark `{name}`; see `sprint benchmarks`"
        ))
        .into()
    })
}

fn parse_policy(raw: &str) -> Result<PolicyKind, CliError> {
    match raw.to_ascii_lowercase().as_str() {
        "g" | "greedy" => Ok(PolicyKind::Greedy),
        "e-b" | "eb" | "backoff" => Ok(PolicyKind::ExponentialBackoff),
        "e-t" | "et" | "equilibrium" => Ok(PolicyKind::EquilibriumThreshold),
        "c-t" | "ct" | "cooperative" => Ok(PolicyKind::CooperativeThreshold),
        other => Err(ArgError(format!("unknown policy `{other}`; use g, e-b, e-t, or c-t")).into()),
    }
}

/// Parse `--jobs` for run-style commands: default 1 (serial); 0 sizes
/// the engine's agent-kernel worker pool to the available cores. Results
/// are byte-identical at every job count.
fn parse_jobs(args: &ParsedArgs) -> Result<usize, CliError> {
    let jobs: usize = args.get_parsed("jobs", 1)?;
    Ok(if jobs == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        jobs
    })
}

fn parse_config(args: &ParsedArgs) -> Result<GameConfig, CliError> {
    let defaults = GameConfig::paper_defaults();
    GameConfig::builder()
        .n_agents(args.get_parsed("n-agents", defaults.n_agents())?)
        .n_min(args.get_parsed("n-min", defaults.n_min())?)
        .n_max(args.get_parsed("n-max", defaults.n_max())?)
        .p_cooling(args.get_parsed("p-cooling", defaults.p_cooling())?)
        .p_recovery(args.get_parsed("p-recovery", defaults.p_recovery())?)
        .discount(args.get_parsed("discount", defaults.discount())?)
        .build()
        .map_err(run_err)
}

fn emit<T: Serialize>(json: bool, value: &T, text: impl FnOnce()) -> Result<(), CliError> {
    if json {
        let s = serde_json::to_string_pretty(value).map_err(run_err)?;
        println!("{s}");
    } else {
        text();
    }
    Ok(())
}

#[derive(Serialize)]
struct SolveReport {
    benchmark: &'static str,
    config: GameConfig,
    threshold: f64,
    sprint_probability: f64,
    expected_sprinters: f64,
    trip_probability: f64,
    cooperative_threshold: f64,
    efficiency_vs_cooperative: f64,
}

/// `sprint solve`: equilibrium + cooperative bound for one benchmark.
pub fn solve(args: &ParsedArgs) -> Result<(), CliError> {
    args.expect_only(&[
        "benchmark",
        "n-agents",
        "n-min",
        "n-max",
        "p-cooling",
        "p-recovery",
        "discount",
        "json",
    ])?;
    let benchmark = parse_benchmark(args)?;
    let config = parse_config(args)?;
    let json = args.get_bool("json", false)?;

    let density = benchmark.utility_density(512).map_err(run_err)?;
    let eq = MeanFieldSolver::new(config)
        .run(&density, &mut Telemetry::noop())
        .map_err(run_err)?;
    let ct = CooperativeSearch::default_resolution()
        .solve(&config, &density)
        .map_err(run_err)?;
    let et = sprint_game::cooperative::analytic_throughput(&config, &density, eq.threshold())
        .map_err(run_err)?;
    let report = SolveReport {
        benchmark: benchmark.name(),
        config,
        threshold: eq.threshold(),
        sprint_probability: eq.sprint_probability(),
        expected_sprinters: eq.expected_sprinters(),
        trip_probability: eq.trip_probability(),
        cooperative_threshold: ct.threshold,
        efficiency_vs_cooperative: et.tasks_per_epoch / ct.throughput.tasks_per_epoch,
    };
    emit(json, &report, || {
        println!("benchmark           {}", report.benchmark);
        println!("threshold u_T       {:.4}", report.threshold);
        println!("P(sprint | active)  {:.4}", report.sprint_probability);
        println!("expected sprinters  {:.1}", report.expected_sprinters);
        println!("P(trip)             {:.4}", report.trip_probability);
        println!("cooperative u_T     {:.4}", report.cooperative_threshold);
        println!(
            "efficiency vs C-T   {:.3}",
            report.efficiency_vs_cooperative
        );
    })
}

#[derive(Serialize)]
struct TelemetrySection {
    events: usize,
    metrics: MetricsSnapshot,
    spans: SpanReport,
}

fn print_telemetry_section(section: &TelemetrySection) {
    println!("telemetry           {} events recorded", section.events);
    for (name, value) in &section.metrics.counters {
        println!("  counter {name:<28} {value}");
    }
    for (name, value) in &section.metrics.gauges {
        println!("  gauge   {name:<28} {value:.4}");
    }
    print_span_table(&section.spans);
}

fn print_span_table(spans: &SpanReport) {
    if spans.spans.is_empty() {
        return;
    }
    println!(
        "  {:<22} {:>8} {:>12} {:>12}",
        "span", "count", "mean µs", "max µs"
    );
    for (name, stats) in &spans.spans {
        println!(
            "  {:<22} {:>8} {:>12.1} {:>12.1}",
            name,
            stats.count,
            stats.mean_nanos() / 1_000.0,
            stats.max_nanos as f64 / 1_000.0
        );
    }
}

/// Parse the shared run-shaped flags into the canonical [`RunSpec`].
///
/// Every run-style subcommand (simulate/trace/report/monitor) builds
/// this same typed spec — the flag→config plumbing lives here once, and
/// the spec is exactly what `sprint serve` accepts over HTTP.
fn parse_run_spec(args: &ParsedArgs) -> Result<RunSpec, CliError> {
    let benchmark = parse_benchmark(args)?;
    Ok(RunSpec {
        benchmark: benchmark.name().to_string(),
        policy: parse_policy(&args.get_or("policy", "e-t"))?,
        agents: args.get_parsed("agents", 1000)?,
        epochs: args.get_parsed("epochs", 600)?,
        seed: args.get_parsed("seed", 1)?,
        // Local runs thread `--jobs` through ExecOptions directly; the
        // in-spec knob exists for HTTP submissions, where the daemon
        // applies its own cap.
        jobs: None,
    })
}

/// `sprint simulate`: one policy, one seed, executed as a canonical run
/// job. `--json true` prints the same `JobReport` bytes the daemon
/// returns for this spec over HTTP.
pub fn simulate(args: &ParsedArgs) -> Result<(), CliError> {
    args.expect_only(&[
        "benchmark",
        "policy",
        "agents",
        "epochs",
        "seed",
        "jobs",
        "json",
        "telemetry",
    ])?;
    let run = parse_run_spec(args)?;
    let jobs = parse_jobs(args)?;
    let json = args.get_bool("json", false)?;
    let with_telemetry = args.get_bool("telemetry", false)?;

    let spec = JobSpec::new(JobKind::Run { spec: run });
    let opts = ExecOptions {
        jobs,
        ..ExecOptions::default()
    };
    let cache = EquilibriumCache::process();
    let (report, section) = if with_telemetry {
        let mut kit = Telemetry::in_memory();
        let report = execute_job(&spec, cache, &opts, &mut kit).map_err(run_err)?;
        let section = TelemetrySection {
            events: kit.events().map_or(0, <[Event]>::len),
            metrics: kit.registry.snapshot(),
            spans: kit.spans.report(),
        };
        (report, Some(section))
    } else {
        (
            execute_job(&spec, cache, &opts, &mut Telemetry::noop()).map_err(run_err)?,
            None,
        )
    };
    let JobOutcome::Run { report: summary } = &report.outcome else {
        return Err(CliError::Run("run job produced a non-run outcome".into()));
    };
    if json {
        println!("{}", report_json(&report).map_err(run_err)?);
        if let Some(section) = &section {
            // Telemetry carries wall-clock facts; keep stdout canonical.
            eprintln!("telemetry           {} events recorded", section.events);
        }
        return Ok(());
    }
    println!(
        "{} on {} x {} for {} epochs (seed {})",
        summary.policy, summary.agents, summary.benchmark, summary.epochs, summary.seed
    );
    println!("tasks/agent-epoch   {:.4}", summary.tasks_per_agent_epoch);
    println!("power emergencies   {}", summary.trips);
    println!("mean sprinters      {:.1}", summary.mean_sprinters);
    let o = summary.occupancy;
    println!(
        "occupancy           active {:.1}%  cooling {:.1}%  recovery {:.1}%  sprint {:.1}%",
        o[0] * 100.0,
        o[1] * 100.0,
        o[2] * 100.0,
        o[3] * 100.0
    );
    if let Some(section) = &section {
        print_telemetry_section(section);
    }
    Ok(())
}

/// `sprint trace`: stream one run's structured events as JSON Lines.
///
/// Events carry simulation-time data only, so two traces of the same
/// scenario and seed are byte-identical. The per-agent decision firehose
/// (`SprintDecision`, one event per agent per epoch) is excluded unless
/// `--decisions true`.
pub fn trace(args: &ParsedArgs) -> Result<(), CliError> {
    args.expect_only(&[
        "benchmark",
        "policy",
        "agents",
        "epochs",
        "seed",
        "jobs",
        "decisions",
        "out",
    ])?;
    let run = parse_run_spec(args)?;
    let jobs = parse_jobs(args)?;
    let decisions = args.get_bool("decisions", false)?;
    let out = args.get("out");

    let writer: Box<dyn std::io::Write + Send> = match out {
        Some(path) => Box::new(std::io::BufWriter::new(
            std::fs::File::create(path).map_err(run_err)?,
        )),
        None => Box::new(std::io::stdout()),
    };
    let mut jsonl = JsonlWriter::new(writer);
    if !decisions {
        jsonl = jsonl.without(EventKind::SprintDecision);
    }
    // Deterministic clock: span timings stay out of the byte-reproducible
    // event stream either way, but the trace itself must not depend on
    // wall time. The run stays on the scenario path (not the cached job
    // path) so solver events land in the trace.
    let mut telemetry = Telemetry::new(Box::new(jsonl), SpanProfile::deterministic());
    let scenario = run.scenario().map_err(run_err)?;
    scenario
        .execute_jobs(run.policy, run.seed, jobs, &mut telemetry)
        .map_err(run_err)?;
    if let Some(path) = out {
        let epochs_seen = telemetry
            .registry
            .counter_value("engine.epochs")
            .unwrap_or(0);
        println!("trace of {epochs_seen} epochs written to {path}");
    }
    Ok(())
}

#[derive(Serialize)]
struct RunReport {
    benchmark: String,
    policy: String,
    agents: u32,
    epochs: usize,
    seed: u64,
    tasks_per_agent_epoch: f64,
    trips: u32,
    /// Algorithm 1's residual per iteration (empty for policies that do
    /// not run the mean-field solve).
    solver_residuals: Vec<f64>,
    metrics: MetricsSnapshot,
    spans: SpanReport,
}

/// `sprint report`: one traced run distilled into an observability
/// report — solver convergence, per-epoch series, fault counters, and
/// span timings — as text or JSON.
pub fn report(args: &ParsedArgs) -> Result<(), CliError> {
    args.expect_only(&[
        "benchmark",
        "policy",
        "agents",
        "epochs",
        "seed",
        "jobs",
        "json",
        "prometheus",
        "flamegraph",
    ])?;
    let run = parse_run_spec(args)?;
    let jobs = parse_jobs(args)?;
    let json = args.get_bool("json", false)?;

    // The scenario path (not the cached job path): solver iteration
    // events must land in the in-memory recorder for the residual curve.
    let scenario = run.scenario().map_err(run_err)?;
    let mut telemetry = Telemetry::in_memory();
    let result = scenario
        .execute_jobs(run.policy, run.seed, jobs, &mut telemetry)
        .map_err(run_err)?;
    let solver_residuals: Vec<f64> = telemetry
        .events()
        .unwrap_or(&[])
        .iter()
        .filter_map(|e| match e {
            Event::SolverIteration { residual, .. } => Some(*residual),
            _ => None,
        })
        .collect();
    let run_report = RunReport {
        benchmark: run.benchmark.clone(),
        policy: run.policy.to_string(),
        agents: run.agents,
        epochs: run.epochs,
        seed: run.seed,
        tasks_per_agent_epoch: result.tasks_per_agent_epoch(),
        trips: result.trips(),
        solver_residuals,
        metrics: telemetry.registry.snapshot(),
        spans: telemetry.spans.report(),
    };
    emit(json, &run_report, || {
        println!(
            "{} on {} x {} for {} epochs (seed {})",
            run_report.policy,
            run_report.agents,
            run_report.benchmark,
            run_report.epochs,
            run_report.seed
        );
        println!(
            "tasks/agent-epoch   {:.4}",
            run_report.tasks_per_agent_epoch
        );
        println!("power emergencies   {}", run_report.trips);
        if run_report.solver_residuals.is_empty() {
            println!("solver              (no offline mean-field solve for this policy)");
        } else {
            let last = run_report.solver_residuals.last().copied().unwrap_or(0.0);
            println!(
                "solver              {} iterations, final residual {last:.3e}",
                run_report.solver_residuals.len()
            );
            let curve: Vec<String> = run_report
                .solver_residuals
                .iter()
                .take(8)
                .map(|r| format!("{r:.2e}"))
                .collect();
            println!("residual curve      {}{}", curve.join(" "), {
                if run_report.solver_residuals.len() > 8 {
                    " ..."
                } else {
                    ""
                }
            });
        }
        for name in ["engine.sprinters", "engine.tasks", "engine.tripped"] {
            if let Some(series) = run_report.metrics.series.get(name) {
                let mean = series.iter().sum::<f64>() / series.len().max(1) as f64;
                let max = series.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                println!(
                    "series {name:<19} {} samples, mean {mean:.3}, max {max:.3}",
                    series.len()
                );
            }
        }
        let fault_counters: Vec<(&String, &u64)> = run_report
            .metrics
            .counters
            .iter()
            .filter(|(name, _)| name.starts_with("faults."))
            .collect();
        for (name, value) in fault_counters {
            println!("fault counter       {name:<22} {value}");
        }
        print_span_table(&run_report.spans);
    })?;
    write_exports(args, &run_report.metrics, &run_report.spans)
}

/// Write the optional `--prometheus` / `--flamegraph` export files from
/// frozen telemetry state, announcing each path written.
fn write_exports(
    args: &ParsedArgs,
    metrics: &MetricsSnapshot,
    spans: &SpanReport,
) -> Result<(), CliError> {
    if let Some(path) = args.get("prometheus") {
        std::fs::write(path, prometheus_text(metrics)).map_err(run_err)?;
        println!("prometheus exposition written to {path}");
    }
    if let Some(path) = args.get("flamegraph") {
        std::fs::write(path, collapsed_stacks(spans)).map_err(run_err)?;
        println!("collapsed stacks written to {path}");
    }
    Ok(())
}

/// `sprint compare`: the paper's four policies, averaged over seeds.
pub fn compare(args: &ParsedArgs) -> Result<(), CliError> {
    args.expect_only(&["benchmark", "agents", "epochs", "seeds", "jobs"])?;
    let benchmark = parse_benchmark(args)?;
    let agents: u32 = args.get_parsed("agents", 1000)?;
    let epochs: usize = args.get_parsed("epochs", 600)?;
    let n_seeds: u64 = args.get_parsed("seeds", 3)?;
    let jobs = parse_jobs(args)?;
    if n_seeds == 0 {
        return Err(ArgError("--seeds must be at least 1".into()).into());
    }

    let scenario = Scenario::homogeneous(benchmark, agents, epochs).map_err(run_err)?;
    let seeds: Vec<u64> = (1..=n_seeds).collect();
    let cmp = sprint_sim::runner::compare_jobs(
        &scenario,
        &PolicyKind::ALL,
        &seeds,
        jobs,
        &mut Telemetry::noop(),
    )
    .map_err(run_err)?;
    println!(
        "{:<24} {:>11} {:>8} {:>9} {:>7}",
        "policy", "tasks/ep", "vs G", "±95% CI", "trips"
    );
    for outcome in cmp.outcomes() {
        let norm = cmp
            .normalized_to_greedy(outcome.policy)
            .expect("greedy included");
        let ci = outcome
            .tasks_ci
            .map_or_else(|| "-".to_string(), |c| format!("{:.3}", c.half_width));
        println!(
            "{:<24} {:>11.4} {:>8.2} {:>9} {:>7.1}",
            outcome.policy.to_string(),
            outcome.tasks_per_agent_epoch,
            norm,
            ci,
            outcome.trips
        );
    }
    Ok(())
}

/// Build a sweep spec from the command line: a spec file wins; otherwise
/// inline flags shape a single-game spec over all four policies.
///
/// Spec files go through [`JobSpec::parse_json`], so both versioned
/// `JobSpec` documents and legacy bare sweep specs keep working.
fn sweep_spec(args: &ParsedArgs) -> Result<SweepSpec, CliError> {
    if let Some(path) = args.get("spec") {
        for inline in ["benchmark", "agents", "epochs", "seeds"] {
            if args.get(inline).is_some() {
                return Err(
                    ArgError(format!("--spec and --{inline} are mutually exclusive")).into(),
                );
            }
        }
        let text = std::fs::read_to_string(path).map_err(run_err)?;
        let spec = JobSpec::parse_json(&text)
            .map_err(|e| ArgError(format!("invalid sweep spec `{path}`: {e}")))?;
        return match spec.job {
            JobKind::Sweep { spec } => Ok(spec),
            other => Err(ArgError(format!(
                "`{path}` is a {} job, not a sweep",
                match other {
                    JobKind::Run { .. } => "run",
                    JobKind::Chaos { .. } => "chaos",
                    JobKind::Sweep { .. } => unreachable!("matched above"),
                }
            ))
            .into()),
        };
    }
    let benchmark = parse_benchmark(args)?;
    let agents: u32 = args.get_parsed("agents", 1000)?;
    let epochs: usize = args.get_parsed("epochs", 600)?;
    let n_seeds: u64 = args.get_parsed("seeds", 4)?;
    if n_seeds == 0 {
        return Err(ArgError("--seeds must be at least 1".into()).into());
    }
    Ok(SweepSpec {
        games: vec![GameVariant::paper("paper")],
        populations: vec![PopulationSpec::homogeneous(benchmark, agents)],
        plans: Vec::new(),
        adversaries: Vec::new(),
        policies: PolicyKind::ALL.to_vec(),
        seeds: (1..=n_seeds).collect(),
        epochs,
        options: RunOptions::default(),
    })
}

/// `sprint sweep`: expand a declarative spec into trials and run them on
/// a worker pool, with equilibrium solves memoized across trials.
pub fn sweep(args: &ParsedArgs) -> Result<(), CliError> {
    args.expect_only(&[
        "spec",
        "benchmark",
        "agents",
        "epochs",
        "seeds",
        "jobs",
        "json",
        "records",
        "telemetry",
        "print-spec",
        "trial-deadline",
    ])?;
    if args.get_bool("print-spec", false)? {
        let s = serde_json::to_string_pretty(&SweepSpec::example()).map_err(run_err)?;
        println!("{s}");
        return Ok(());
    }
    let spec = sweep_spec(args)?;
    let jobs: usize = args.get_parsed("jobs", 0)?;
    let json = args.get_bool("json", false)?;
    let with_telemetry = args.get_bool("telemetry", false)?;
    let records_out = args.get("records");
    let mut supervision = Supervision::default();
    if let Some(raw) = args.get("trial-deadline") {
        let ms: u64 = raw
            .parse()
            .map_err(|_| ArgError(format!("invalid --trial-deadline `{raw}`")))?;
        supervision = supervision.with_deadline_ms(ms);
    }

    let mut kit = if with_telemetry {
        Telemetry::new(Box::new(Noop), SpanProfile::monotonic())
    } else {
        Telemetry::noop()
    };
    let job = JobSpec::new(JobKind::Sweep { spec: spec.clone() });
    let opts = ExecOptions {
        jobs,
        supervision,
        ..ExecOptions::default()
    };
    let job_report =
        execute_job(&job, EquilibriumCache::process(), &opts, &mut kit).map_err(run_err)?;
    let JobOutcome::Sweep { report } = &job_report.outcome else {
        return Err(CliError::Run(
            "sweep job produced a non-sweep outcome".into(),
        ));
    };

    if let Some(path) = records_out {
        use std::io::Write;
        let mut file = std::io::BufWriter::new(std::fs::File::create(path).map_err(run_err)?);
        for record in &report.records {
            let line = serde_json::to_string(record).map_err(run_err)?;
            writeln!(file, "{line}").map_err(run_err)?;
        }
        file.flush().map_err(run_err)?;
        eprintln!("{} records written to {path}", report.records.len());
    }

    if json {
        // Canonical JobReport bytes: identical to the daemon's HTTP
        // response for the same spec.
        println!("{}", report_json(&job_report).map_err(run_err)?);
    } else {
        println!(
            "sweep: {} trials ({} games x {} populations x {} plans x {} policies x {} seeds)",
            report.trials,
            spec.games.len(),
            spec.populations.len(),
            spec.plans.len().max(1),
            spec.policies.len(),
            spec.seeds.len()
        );
        if !report.quarantined.is_empty() {
            println!(
                "quarantined {} trial(s) after retries:",
                report.quarantined.len()
            );
            for q in &report.quarantined {
                println!(
                    "  trial {} ({}/{}/{}/{} seed {}), {} attempt(s): {}",
                    q.trial, q.game, q.population, q.plan, q.policy, q.seed, q.attempts, q.error
                );
            }
        }
        println!(
            "{:<14} {:<12} {:<12} {:<24} {:>10} {:>7} {:>7}",
            "game", "population", "plan", "policy", "tasks/ep", "vs G", "trips"
        );
        for cell in &report.cells {
            let norm = cell
                .normalized_to_greedy
                .map_or_else(|| "-".to_string(), |n| format!("{n:.3}"));
            println!(
                "{:<14} {:<12} {:<12} {:<24} {:>10.4} {:>7} {:>7.1}",
                cell.game,
                cell.population,
                cell.plan,
                cell.policy.to_string(),
                cell.tasks_per_agent_epoch,
                norm,
                cell.trips
            );
        }
    }
    if with_telemetry {
        let snapshot = kit.registry.snapshot();
        for (name, value) in &snapshot.counters {
            println!("counter {name:<28} {value}");
        }
        for (name, value) in &snapshot.gauges {
            println!("gauge   {name:<28} {value:.4}");
        }
        print_span_table(&kit.spans.report());
    }
    Ok(())
}

/// Parse the adversary-mix flags, enforcing that kind-specific knobs
/// name the matching kind.
fn parse_adversary_mix(
    args: &ParsedArgs,
    fault_seed: u64,
) -> Result<sprint_sim::AdversaryMix, CliError> {
    use sprint_sim::{AdversaryKind, AdversaryMix};

    let fraction: f64 = args.get_parsed("adversaries", 0.1)?;
    let kind_name = args.get("adversary-kind").unwrap_or("greedy_defector");
    let mut kind = AdversaryKind::from_name(kind_name).ok_or_else(|| {
        ArgError(format!(
            "unknown adversary kind `{kind_name}`; see `sprint help`"
        ))
    })?;
    if let Some(p) = args.get("cheat-probability") {
        let cheat_probability: f64 = p
            .parse()
            .map_err(|_| ArgError(format!("--cheat-probability: invalid number `{p}`")))?;
        if !matches!(kind, AdversaryKind::StochasticCheater { .. }) {
            return Err(ArgError(
                "--cheat-probability requires --adversary-kind stochastic_cheater".into(),
            )
            .into());
        }
        kind = AdversaryKind::StochasticCheater { cheat_probability };
    }
    if let Some(p) = args.get("clique-period") {
        let period: u32 = p
            .parse()
            .map_err(|_| ArgError(format!("--clique-period: invalid integer `{p}`")))?;
        if !matches!(kind, AdversaryKind::CollusiveClique { .. }) {
            return Err(ArgError(
                "--clique-period requires --adversary-kind collusive_clique".into(),
            )
            .into());
        }
        kind = AdversaryKind::CollusiveClique { period };
    }
    let ceasefire_epoch: Option<usize> = match args.get("ceasefire") {
        Some(raw) => Some(
            raw.parse()
                .map_err(|_| ArgError(format!("--ceasefire: invalid epoch `{raw}`")))?,
        ),
        None => None,
    };
    Ok(AdversaryMix {
        kind,
        fraction,
        seed: fault_seed,
        ceasefire_epoch,
    })
}

/// `sprint chaos`: the policy × fault-plan resilience matrix, or (with
/// `--partition true`) the control-plane partition-resilience suite, or
/// (with `--adversaries`) the adversary-defense suite — all expressed as
/// one canonical chaos job, so `--json true` prints the same `JobReport`
/// bytes the daemon returns for this spec.
pub fn chaos(args: &ParsedArgs) -> Result<(), CliError> {
    if args.get_bool("serve-restart", false)? {
        return chaos_serve_restart(args);
    }
    args.expect_only(&[
        "benchmark",
        "agents",
        "epochs",
        "seeds",
        "jobs",
        "fault-seed",
        "json",
        "telemetry",
        "partition",
        "partition-start",
        "partition-epochs",
        "report",
        "adversaries",
        "adversary-kind",
        "cheat-probability",
        "clique-period",
        "ceasefire",
    ])?;
    let benchmark = parse_benchmark(args)?;
    let agents: u32 = args.get_parsed("agents", 1000)?;
    let epochs: usize = args.get_parsed("epochs", 600)?;
    let n_seeds: u64 = args.get_parsed("seeds", 2)?;
    let jobs = parse_jobs(args)?;
    let fault_seed: u64 = args.get_parsed("fault-seed", 17)?;
    let json = args.get_bool("json", false)?;
    let with_telemetry = args.get_bool("telemetry", false)?;
    if n_seeds == 0 {
        return Err(ArgError("--seeds must be at least 1".into()).into());
    }

    let with_partition = args.get_bool("partition", false)?;
    let with_adversaries = args.get("adversaries").is_some();
    if with_partition && with_adversaries {
        return Err(ArgError("--partition and --adversaries are mutually exclusive".into()).into());
    }
    if !with_partition {
        for flag in ["partition-start", "partition-epochs"] {
            if args.get(flag).is_some() {
                return Err(ArgError(format!("--{flag} requires --partition true")).into());
            }
        }
    }
    if !with_adversaries {
        for flag in [
            "adversary-kind",
            "cheat-probability",
            "clique-period",
            "ceasefire",
        ] {
            if args.get(flag).is_some() {
                return Err(ArgError(format!("--{flag} requires --adversaries")).into());
            }
        }
    }
    if args.get("report").is_some() && !with_partition && !with_adversaries {
        return Err(ArgError("--report requires --partition true or --adversaries".into()).into());
    }

    let mode = if with_adversaries {
        ChaosMode::Adversaries {
            mix: parse_adversary_mix(args, fault_seed)?,
        }
    } else if with_partition {
        let start = match args.get("partition-start") {
            Some(_) => Some(args.get_parsed("partition-start", 0)?),
            None => None,
        };
        ChaosMode::Partition {
            start,
            duration: args.get_parsed("partition-epochs", 3)?,
        }
    } else {
        ChaosMode::Matrix
    };
    let job = JobSpec::new(JobKind::Chaos {
        spec: ChaosSpec {
            benchmark: benchmark.name().to_string(),
            agents,
            epochs,
            seeds: n_seeds,
            fault_seed,
            mode,
        },
    });
    let opts = ExecOptions {
        jobs,
        ..ExecOptions::default()
    };
    let mut kit = if with_telemetry {
        Telemetry::new(Box::new(Noop), SpanProfile::monotonic())
    } else {
        Telemetry::noop()
    };
    let job_report =
        execute_job(&job, EquilibriumCache::process(), &opts, &mut kit).map_err(run_err)?;
    let JobOutcome::Chaos { report: outcome } = &job_report.outcome else {
        return Err(CliError::Run(
            "chaos job produced a non-chaos outcome".into(),
        ));
    };

    if let Some(path) = args.get("report") {
        // CI archives the inner suite report, not the JobReport envelope.
        let (inner, what) = match outcome {
            ChaosOutcome::Matrix { report } => (
                serde_json::to_string_pretty(report).map_err(run_err)?,
                "chaos",
            ),
            ChaosOutcome::Partition { report } => (
                serde_json::to_string_pretty(report).map_err(run_err)?,
                "resilience",
            ),
            ChaosOutcome::Adversaries { report } => (
                serde_json::to_string_pretty(report).map_err(run_err)?,
                "adversary",
            ),
        };
        std::fs::write(path, inner).map_err(run_err)?;
        eprintln!("{what} report written to {path}");
    }
    if json {
        println!("{}", report_json(&job_report).map_err(run_err)?);
    } else {
        match outcome {
            ChaosOutcome::Matrix { report } => {
                println!(
                    "chaos matrix: {} x {} agents, {} epochs, {} seed(s), fault seed {}",
                    benchmark.name(),
                    agents,
                    epochs,
                    n_seeds,
                    fault_seed
                );
                println!(
                    "{:<24} {:<18} {:>10} {:>10} {:>7} {:>7}",
                    "policy", "fault plan", "tasks/ep", "vs clean", "trips", "crashes"
                );
                for cell in report.cells() {
                    println!(
                        "{:<24} {:<18} {:>10.4} {:>10.3} {:>7.1} {:>7}",
                        cell.policy.to_string(),
                        cell.plan,
                        cell.tasks_per_agent_epoch,
                        cell.degradation,
                        cell.trips,
                        cell.faults.crashes
                    );
                }
            }
            ChaosOutcome::Partition { report } => {
                let start: usize = args.get_parsed("partition-start", epochs / 2)?;
                let duration: usize = args.get_parsed("partition-epochs", 3)?;
                print_partition_text(report, start, duration, fault_seed);
            }
            ChaosOutcome::Adversaries { report } => print_adversary_text(report, fault_seed),
        }
        if with_telemetry {
            print_span_table(&kit.spans.report());
        }
    }
    // The acceptance gates fail the process in every output mode.
    match outcome {
        ChaosOutcome::Partition { report } if report.invariant_violations > 0 => {
            Err(CliError::Run(
                format!(
                    "{} agent-epoch(s) without a valid threshold",
                    report.invariant_violations
                )
                .into(),
            ))
        }
        ChaosOutcome::Adversaries { report } if report.false_positive_exclusions > 0 => {
            Err(CliError::Run(
                format!(
                    "{} honest agent(s) permanently excluded",
                    report.false_positive_exclusions
                )
                .into(),
            ))
        }
        _ => Ok(()),
    }
}

/// `sprint chaos --serve-restart`: the kill-restart drill. Boot a
/// journaled `sprint serve` child, queue jobs, SIGKILL it mid-queue,
/// restart on the same journal + spool, and verify every acknowledged
/// job completes with report bytes identical to an in-process
/// reference execution. Exits non-zero if any acknowledged job is lost
/// or any recovered report drifts by a byte.
fn chaos_serve_restart(args: &ParsedArgs) -> Result<(), CliError> {
    args.expect_only(&["serve-restart", "restart-jobs", "workers", "json"])?;
    let n_jobs: u64 = args.get_parsed("restart-jobs", 8)?;
    let workers: usize = args.get_parsed("workers", 2)?;
    let json = args.get_bool("json", false)?;
    if n_jobs == 0 {
        return Err(ArgError("--restart-jobs must be at least 1".into()).into());
    }

    let dir = std::env::temp_dir().join(format!("sprint-serve-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(run_err)?;
    let journal = dir.join("journal.jsonl");
    let spool = dir.join("spool");
    let exe = std::env::current_exe().map_err(run_err)?;
    let workers_flag = workers.to_string();
    let serve_args: Vec<&str> = vec![
        "serve",
        "--addr",
        "127.0.0.1:0",
        "--workers",
        &workers_flag,
        "--journal",
        journal.to_str().expect("utf-8 temp path"),
        "--spool",
        spool.to_str().expect("utf-8 temp path"),
    ];

    let spec_for = |seed: u64| {
        JobSpec::new(JobKind::Run {
            spec: RunSpec {
                benchmark: "decision".to_string(),
                policy: PolicyKind::EquilibriumThreshold,
                agents: 30,
                epochs: 40,
                seed,
                jobs: None,
            },
        })
    };

    // Phase 1: boot, queue every job, and pull the plug.
    let mut child = ServeChild::spawn(&exe, &serve_args, &[]).map_err(run_err)?;
    let addr = child.addr.clone();
    let mut acknowledged = Vec::new();
    for seed in 1..=n_jobs {
        let body = serde_json::to_string(&spec_for(seed)).map_err(run_err)?;
        let (status, ack) =
            serve_client::request(&addr, "POST", "/v1/jobs", Some(&body)).map_err(run_err)?;
        if status != 202 {
            return Err(CliError::Run(
                format!("submission rejected: {status} {ack}").into(),
            ));
        }
        let id: u64 = ack
            .split("\"id\":")
            .nth(1)
            .and_then(|rest| rest.split(',').next())
            .and_then(|digits| digits.trim().parse().ok())
            .ok_or_else(|| CliError::Run(format!("unparseable ack: {ack}").into()))?;
        acknowledged.push((id, seed));
    }
    child.kill();
    eprintln!(
        "serve-restart: SIGKILL after {} acknowledged jobs; restarting on the journal",
        acknowledged.len()
    );

    // Phase 2: restart on the same journal + spool and wait everything
    // out. Every acknowledged id must reach `done`.
    let child = ServeChild::spawn(&exe, &serve_args, &[]).map_err(run_err)?;
    let addr = child.addr.clone();
    let cache = EquilibriumCache::default();
    let mut mismatches = 0usize;
    for &(id, seed) in &acknowledged {
        harness::wait_for_job_state(&addr, id, "done", std::time::Duration::from_secs(60))
            .map_err(run_err)?;
        let (status, recovered) =
            serve_client::request(&addr, "GET", &format!("/v1/jobs/{id}/report"), None)
                .map_err(run_err)?;
        if status != 200 {
            return Err(CliError::Run(
                format!("report fetch failed: {status}").into(),
            ));
        }
        let reference = report_json(
            &execute_job(
                &spec_for(seed),
                &cache,
                &ExecOptions::default(),
                &mut Telemetry::noop(),
            )
            .map_err(run_err)?,
        )
        .map_err(run_err)?;
        if recovered != reference {
            mismatches += 1;
            eprintln!("serve-restart: job {id} report drifted from the reference bytes");
        }
    }
    let (_, metrics) = serve_client::request(&addr, "GET", "/v1/metrics", None).map_err(run_err)?;
    let recovered_counter = metrics
        .lines()
        .find(|l| l.starts_with("serve_jobs_recovered_total"))
        .map(str::to_string)
        .unwrap_or_default();
    drop(child);
    let _ = std::fs::remove_dir_all(&dir);

    if json {
        println!(
            "{{\"acknowledged\":{},\"completed\":{},\"byte_identical\":{},\"lost\":0}}",
            acknowledged.len(),
            acknowledged.len(),
            acknowledged.len() - mismatches
        );
    } else {
        eprintln!(
            "serve-restart: {} acknowledged, {} completed after restart, {} byte-identical ({})",
            acknowledged.len(),
            acknowledged.len(),
            acknowledged.len() - mismatches,
            if recovered_counter.is_empty() {
                "no recovery counter".to_string()
            } else {
                recovered_counter
            }
        );
    }
    if mismatches > 0 {
        return Err(CliError::Run(
            format!("{mismatches} recovered report(s) drifted from the reference bytes").into(),
        ));
    }
    Ok(())
}

/// Text summary for `sprint chaos --partition`: invariant, message-loss,
/// tier-occupancy, and recovery acceptance lines from the resilience
/// suite report.
fn print_partition_text(
    report: &sprint_sim::runner::ResilienceReport,
    start: usize,
    duration: usize,
    fault_seed: u64,
) {
    let lost: u64 = report.trials.iter().map(|t| t.messages.lost).sum();
    let sent: u64 = report.trials.iter().map(|t| t.messages.sent).sum();
    let mut tiers = [0u64; 3];
    for t in &report.trials {
        for (acc, &e) in tiers.iter_mut().zip(&t.tier_epochs) {
            *acc += e;
        }
    }
    println!(
        "partition chaos: {} trial(s), partition @{start} for {duration} epoch(s), \
         fault seed {fault_seed}",
        report.trials.len()
    );
    println!("  invariant violations   {}", report.invariant_violations);
    println!(
        "  messages lost          {lost}/{sent} ({:.1}%)",
        if sent > 0 {
            lost as f64 / sent as f64 * 100.0
        } else {
            0.0
        }
    );
    println!(
        "  tier epochs (eq/stale/cons)  {}/{}/{}",
        tiers[0], tiers[1], tiers[2]
    );
    println!(
        "  mean recovery          {} (budget: {} epochs = 2 leases)",
        report.mean_recovery_epochs.map_or_else(
            || "n/a (never degraded)".to_string(),
            |m| format!("{m:.2} epochs")
        ),
        2 * report.control.lease_epochs
    );
    println!(
        "  utility vs conservative baseline  {:.6} vs {:.6}",
        report.mean_utility, report.conservative_utility
    );
    let ok = report.invariant_violations == 0
        && report.recovered_within(2.0)
        && report.mean_utility >= report.conservative_utility - 1e-12;
    println!(
        "  acceptance             {}",
        if ok { "PASS" } else { "FAIL" }
    );
}

/// Text summary for `sprint chaos --adversaries`: throughput recovery,
/// detections, and sanction-error acceptance lines from the
/// adversary-defense suite report.
fn print_adversary_text(report: &sprint_sim::runner::AdversaryReport, fault_seed: u64) {
    let mix = &report.mix;
    println!(
        "adversary chaos: {} trial(s), {} {} @ {:.0}% of {} agents, fault seed {fault_seed}",
        report.trials.len(),
        mix.adversary_count(report.agents as usize),
        mix.kind.name(),
        mix.fraction * 100.0,
        report.agents,
    );
    println!(
        "  throughput (honest/unchecked/enforced)  {:.4} / {:.4} / {:.4}",
        report.honest_throughput, report.unenforced_throughput, report.enforced_throughput
    );
    println!(
        "  recovery ratio         {:.4} (unchecked: {:.4})",
        report.recovery_ratio, report.unenforced_ratio
    );
    println!(
        "  detections             {} (mean latency: {})",
        report.detections,
        report
            .mean_detection_latency_epochs
            .map_or_else(|| "n/a".to_string(), |m| format!("{m:.1} epochs")),
    );
    println!(
        "  sanctions              {} exclusion(s), {} readmission(s)",
        report.exclusions, report.readmissions
    );
    println!(
        "  errors                 {} false-positive exclusion(s), {} false negative(s)",
        report.false_positive_exclusions, report.false_negatives
    );
    let ok = report.recovery_ratio >= 0.95 && report.false_positive_exclusions == 0;
    println!(
        "  acceptance             {}",
        if ok { "PASS" } else { "FAIL" }
    );
}

/// `sprint cluster`: multi-rack simulation under a facility breaker.
pub fn cluster(args: &ParsedArgs) -> Result<(), CliError> {
    args.expect_only(&[
        "benchmark",
        "racks",
        "agents-per-rack",
        "epochs",
        "facility-n-min",
        "facility-n-max",
        "seed",
        "json",
    ])?;
    use sprint_sim::cluster::{simulate_cluster, ClusterConfig};
    use sprint_sim::policies::ThresholdPolicy;
    use sprint_sim::SprintPolicy;
    use sprint_workloads::generator::Population;

    let benchmark = parse_benchmark(args)?;
    let racks: u32 = args.get_parsed("racks", 4)?;
    let per_rack: u32 = args.get_parsed("agents-per-rack", 250)?;
    let epochs: usize = args.get_parsed("epochs", 600)?;
    let seed: u64 = args.get_parsed("seed", 1)?;
    let json = args.get_bool("json", false)?;
    let rack_game = GameConfig::builder()
        .n_agents(per_rack)
        .n_min(f64::from(per_rack) * 0.25)
        .n_max(f64::from(per_rack) * 0.75)
        .build()
        .map_err(run_err)?;
    let default_min = f64::from(racks * per_rack) * 0.25;
    let facility_n_min: f64 = args.get_parsed("facility-n-min", default_min)?;
    let facility_n_max: f64 = args.get_parsed("facility-n-max", default_min * 3.0)?;
    let config = ClusterConfig::new(
        rack_game,
        racks,
        facility_n_min,
        facility_n_max,
        0.95,
        epochs,
        seed,
    )
    .map_err(run_err)?;

    // Facility-aware equilibrium thresholds per rack.
    let density = benchmark.utility_density(512).map_err(run_err)?;
    let aware_game = config.facility_aware_band().map_err(run_err)?;
    let eq = MeanFieldSolver::new(aware_game)
        .run(&density, &mut Telemetry::noop())
        .map_err(run_err)?;
    let mut streams = Population::homogeneous(benchmark, (racks * per_rack) as usize)
        .map_err(run_err)?
        .spawn_streams(seed)
        .map_err(run_err)?;
    let mut policies: Vec<Box<dyn SprintPolicy>> = (0..racks)
        .map(|_| {
            ThresholdPolicy::uniform("E-T", eq.strategy(), per_rack as usize)
                .map(|p| Box::new(p) as Box<dyn SprintPolicy>)
        })
        .collect::<Result<_, _>>()
        .map_err(run_err)?;
    let result = simulate_cluster(&config, &mut streams, &mut policies).map_err(run_err)?;
    emit(json, &result, || {
        println!(
            "{racks} racks x {per_rack} {} agents, facility band [{facility_n_min:.0}, \
             {facility_n_max:.0}], {epochs} epochs",
            benchmark.name()
        );
        println!("threshold (facility-aware) {:.3}", eq.threshold());
        println!(
            "tasks/agent-epoch          {:.4}",
            result.tasks_per_agent_epoch
        );
        println!("rack trips                 {}", result.rack_trips);
        println!("facility trips             {}", result.facility_trips);
        let cells: Vec<String> = result
            .per_rack_tasks
            .iter()
            .map(|t| format!("{t:.3}"))
            .collect();
        println!("per-rack tasks             {}", cells.join(" "));
    })
}

/// `sprint derive-params`: physical rack → Table-2 parameters.
pub fn derive_params(args: &ParsedArgs) -> Result<(), CliError> {
    args.expect_only(&["servers", "json"])?;
    let servers: u32 = args.get_parsed("servers", 1000)?;
    if servers == 0 {
        return Err(ArgError("--servers must be at least 1".into()).into());
    }
    let json = args.get_bool("json", false)?;
    let params = RackConfig::paper_rack(servers).derive_game_parameters();
    emit(json, &params, || {
        println!("servers             {}", params.n_agents);
        println!("N_min / N_max       {} / {}", params.n_min, params.n_max);
        println!("p_cooling           {:.3}", params.p_cooling);
        println!("p_recovery          {:.3}", params.p_recovery);
        println!("epoch               {:.1} s", params.epoch_seconds);
        println!("cooling             {:.1} s", params.cooling_seconds);
    })
}

/// `sprint benchmarks`: list the Table-1 suite.
pub fn benchmarks(args: &ParsedArgs) -> Result<(), CliError> {
    args.expect_only(&[])?;
    println!(
        "{:<14} {:<22} {:<24} {:>9}",
        "name", "full name", "category", "mean x"
    );
    for b in Benchmark::ALL {
        println!(
            "{:<14} {:<22} {:<24} {:>9.2}",
            b.name(),
            b.full_name(),
            b.category().to_string(),
            b.mean_speedup()
        );
    }
    Ok(())
}

/// `sprint monitor`: rolling health snapshots from a live run or a
/// recorded JSONL trace.
///
/// Recorded mode (`--trace FILE.jsonl`) folds the trace through the
/// health aggregator and renders a snapshot line every `--every` epochs;
/// `--follow true` keeps tailing the file until its `RunEnd` arrives.
/// Live mode (`--benchmark ...`) runs the scenario on a worker thread
/// publishing into a lock-free ring; the monitor drains the ring
/// concurrently and renders rolling snapshots without ever blocking the
/// engine. `--json true` prints the final health snapshot as JSON
/// instead of the rolling lines.
pub fn monitor(args: &ParsedArgs) -> Result<(), CliError> {
    args.expect_only(&[
        "trace",
        "follow",
        "every",
        "json",
        "benchmark",
        "policy",
        "agents",
        "epochs",
        "seed",
        "jobs",
        "decisions",
        "prometheus",
        "flamegraph",
    ])?;
    let every: u64 = args.get_parsed("every", 100)?;
    let every = every.max(1);
    let json = args.get_bool("json", false)?;
    if let Some(path) = args.get("trace") {
        if args.get("benchmark").is_some() {
            return Err(ArgError("--trace and --benchmark are mutually exclusive".into()).into());
        }
        let follow = args.get_bool("follow", false)?;
        monitor_recorded(path, follow, every, json)
    } else if args.get("benchmark").is_some() {
        monitor_live(args, every, json)
    } else {
        Err(ArgError("monitor needs --trace FILE.jsonl or --benchmark <name>".into()).into())
    }
}

/// Tail a recorded JSONL trace into rolling health snapshots.
///
/// Unparseable lines are never fatal: they count into the snapshot's
/// `dropped_events` so truncation is visible, not silent. Elapsed time
/// is unknown for a recording, so rate fields derived from wall time
/// (`epochs_per_sec`) read zero and the output is deterministic for a
/// given trace.
fn monitor_recorded(path: &str, follow: bool, every: u64, json: bool) -> Result<(), CliError> {
    use std::io::BufRead;

    let file = std::fs::File::open(path)
        .map_err(|e| CliError::Run(format!("cannot open trace {path}: {e}").into()))?;
    let mut reader = std::io::BufReader::new(file);
    let mut agg = HealthAggregator::default();
    let mut unparseable = 0u64;
    let mut last_printed = 0u64;
    let mut line = String::new();
    let mut pending = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line).map_err(run_err)?;
        if n == 0 {
            if follow && !agg.finished() {
                std::thread::sleep(std::time::Duration::from_millis(50));
                continue;
            }
            // A trailing unterminated line still counts at end of file.
            if !pending.trim().is_empty() {
                fold_line(&mut agg, pending.trim(), &mut unparseable);
            }
            break;
        }
        pending.push_str(&line);
        if !pending.ends_with('\n') {
            // Mid-write partial line; wait for the writer to finish it.
            continue;
        }
        fold_line(&mut agg, pending.trim(), &mut unparseable);
        pending.clear();
        if !json && agg.epochs() >= last_printed + every {
            last_printed = agg.epochs();
            println!("{}", agg.snapshot(0, unparseable).render_line());
        }
        if follow && agg.finished() {
            break;
        }
    }
    let snapshot = agg.snapshot(0, unparseable);
    if json {
        let s = serde_json::to_string_pretty(&snapshot).map_err(run_err)?;
        println!("{s}");
    } else {
        println!("{}", snapshot.render_line());
    }
    Ok(())
}

fn fold_line(agg: &mut HealthAggregator, line: &str, unparseable: &mut u64) {
    match serde_json::from_str::<Event>(line) {
        Ok(event) => agg.fold(&event),
        Err(_) => *unparseable += 1,
    }
}

/// Run a scenario live on a worker thread and monitor it from this one.
///
/// The engine publishes into a single-producer ring segment; the monitor
/// thread drains it concurrently, so observation never takes a lock the
/// engine could block on. The decision firehose is filtered at the ring
/// (severity gate) unless `--decisions true`.
fn monitor_live(args: &ParsedArgs, every: u64, json: bool) -> Result<(), CliError> {
    let run = parse_run_spec(args)?;
    let policy = run.policy;
    let seed = run.seed;
    let jobs = parse_jobs(args)?;
    let decisions = args.get_bool("decisions", false)?;

    let scenario = run.scenario().map_err(run_err)?;
    let mut config = RingConfig::default();
    if !decisions {
        config = config.with_min_severity(Severity::Info);
    }
    let (mut ring, mut producers) = EventRing::with_config(1, &config);
    let producer = producers.pop().expect("one producer was requested");

    let started = std::time::Instant::now();
    let mut agg = HealthAggregator::default();
    let mut last_printed = 0u64;
    let (result, mut kit) = std::thread::scope(|scope| {
        let handle = scope.spawn(move || {
            let mut kit = Telemetry::new(Box::new(producer), SpanProfile::monotonic());
            let result = scenario.execute_jobs(policy, seed, jobs, &mut kit);
            (result, kit)
        });
        while !handle.is_finished() {
            std::thread::sleep(std::time::Duration::from_millis(25));
            agg.fold_all(&ring.drain());
            if !json && agg.epochs() >= last_printed + every {
                last_printed = agg.epochs();
                let snap = agg.snapshot(started.elapsed().as_nanos() as u64, ring.dropped());
                println!("{}", snap.render_line());
            }
        }
        handle.join().expect("monitored run panicked")
    });
    let result = result.map_err(run_err)?;
    agg.fold_all(&ring.drain());
    ring.export_metrics(&mut kit.registry);
    let elapsed = started.elapsed().as_nanos() as u64;
    let snapshot = agg.snapshot_with_registry(elapsed, ring.dropped(), &kit.registry);
    if json {
        let s = serde_json::to_string_pretty(&snapshot).map_err(run_err)?;
        println!("{s}");
    } else {
        println!("{}", snapshot.render_line());
        println!("tasks/agent-epoch   {:.4}", result.tasks_per_agent_epoch());
        println!("power emergencies   {}", result.trips());
    }
    write_exports(args, &kit.registry.snapshot(), &kit.spans.report())
}

/// `sprint serve`: boot the rack-as-a-service daemon and block until it
/// is drained (POST /v1/drain) and every accepted job has finished.
pub fn serve(args: &ParsedArgs) -> Result<(), CliError> {
    args.expect_only(&[
        "addr",
        "workers",
        "jobs",
        "jobs-cap",
        "spool",
        "event-log",
        "snapshot-ms",
        "journal",
        "max-queue",
        "rate-limit",
        "client-jobs",
    ])?;
    let rate_limit = args
        .get("rate-limit")
        .map(|raw| {
            raw.parse::<f64>()
                .ok()
                .filter(|r| *r > 0.0)
                .ok_or_else(|| ArgError(format!("invalid --rate-limit `{raw}`")))
        })
        .transpose()?;
    let config = ServeConfig {
        addr: args.get_or("addr", "127.0.0.1:7077"),
        workers: args.get_parsed("workers", 2)?,
        jobs: args.get_parsed("jobs", 1)?,
        jobs_cap: args.get_parsed("jobs-cap", 0)?,
        spool: args.get("spool").map(std::path::PathBuf::from),
        event_log: args.get("event-log").map(std::path::PathBuf::from),
        snapshot_every_ms: args.get_parsed("snapshot-ms", 200)?,
        journal: args.get("journal").map(std::path::PathBuf::from),
        admission: AdmissionConfig {
            max_queue: args.get_parsed("max-queue", 0)?,
            rate_limit,
            client_jobs: args.get_parsed("client-jobs", 0)?,
        },
    };
    let handle = Daemon::start(&config).map_err(run_err)?;
    // Machine-readable announcement on stdout: the kill-restart harness
    // (and scripts) scrape this line for the resolved ephemeral port.
    println!("{}", harness::addr_line(&handle.addr()));
    use std::io::Write;
    let _ = std::io::stdout().flush();
    eprintln!("sprint serve listening on http://{}", handle.addr());
    eprintln!("  POST /v1/jobs[?wait=true]    submit a JobSpec (run | sweep | chaos)");
    eprintln!("  GET  /v1/jobs[/ID[/report]]  job table, status, canonical JobReport");
    eprintln!("  POST /v1/jobs/ID/cancel      cancel a queued or running job");
    eprintln!("  GET  /v1/events              live health snapshots (SSE)");
    eprintln!("  GET  /v1/health /v1/metrics /v1/version");
    eprintln!("  POST /v1/drain               stop accepting, finish in-flight, exit");
    handle.join().map_err(run_err)
}

/// Dispatch a parsed command line.
///
/// # Errors
///
/// Returns [`CliError`] for unknown commands, bad flags, or execution
/// failures.
pub fn dispatch(args: &ParsedArgs) -> Result<(), CliError> {
    match args.command() {
        "solve" => solve(args),
        "simulate" => simulate(args),
        "trace" => trace(args),
        "report" => report(args),
        "monitor" => monitor(args),
        "compare" => compare(args),
        "sweep" => sweep(args),
        "chaos" => chaos(args),
        "cluster" => cluster(args),
        "serve" => serve(args),
        "derive-params" => derive_params(args),
        "benchmarks" => benchmarks(args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(ArgError(format!("unknown command `{other}`; try `sprint help`")).into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(args: &[&str]) -> ParsedArgs {
        ParsedArgs::parse(args.iter().copied()).unwrap()
    }

    #[test]
    fn dispatch_rejects_unknown_command() {
        assert!(dispatch(&parsed(&["frobnicate"])).is_err());
    }

    #[test]
    fn monitor_replays_a_recorded_trace() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/src/testdata/trace_greedy_40x60_seed7.jsonl"
        );
        monitor(&parsed(&["monitor", "--trace", path, "--every", "25"])).unwrap();
        monitor(&parsed(&["monitor", "--trace", path, "--json", "true"])).unwrap();
    }

    #[test]
    fn monitor_rejects_conflicting_or_missing_sources() {
        assert!(monitor(&parsed(&["monitor"])).is_err());
        assert!(monitor(&parsed(&[
            "monitor",
            "--trace",
            "x.jsonl",
            "--benchmark",
            "svm"
        ]))
        .is_err());
        assert!(monitor(&parsed(&["monitor", "--trace", "/nonexistent/x.jsonl"])).is_err());
    }

    #[test]
    fn monitor_live_exports_prometheus_and_flamegraph() {
        let stamp = format!("{}-{:?}", std::process::id(), std::thread::current().id());
        let prom = std::env::temp_dir().join(format!("sprint-mon-{stamp}.prom"));
        let folded = std::env::temp_dir().join(format!("sprint-mon-{stamp}.folded"));
        monitor(&parsed(&[
            "monitor",
            "--benchmark",
            "decision",
            "--policy",
            "g",
            "--agents",
            "40",
            "--epochs",
            "60",
            "--seed",
            "7",
            "--prometheus",
            prom.to_str().unwrap(),
            "--flamegraph",
            folded.to_str().unwrap(),
        ]))
        .unwrap();
        let prom_text = std::fs::read_to_string(&prom).unwrap();
        let _ = std::fs::remove_file(&prom);
        assert!(
            prom_text.contains("# TYPE engine_epochs_total counter"),
            "{prom_text}"
        );
        assert!(prom_text.contains("engine_epochs_total 60"), "{prom_text}");
        assert!(
            prom_text.contains("ring_published_total"),
            "ring accounting must be scrapeable: {prom_text}"
        );
        let folded_text = std::fs::read_to_string(&folded).unwrap();
        let _ = std::fs::remove_file(&folded);
        assert!(
            folded_text.contains("engine.epoch;engine.decide "),
            "nested engine spans must fold into stacks: {folded_text}"
        );
    }

    /// Run `sprint trace` into a temp file and return the bytes written.
    fn trace_bytes(extra: &[&str]) -> Vec<u8> {
        let path = std::env::temp_dir().join(format!(
            "sprint-trace-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let mut args = vec!["trace"];
        args.extend_from_slice(extra);
        args.push("--out");
        args.push(path.to_str().unwrap());
        trace(&parsed(&args)).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        bytes
    }

    #[test]
    fn trace_output_matches_the_golden_bytes() {
        // Regression pins for the engine's event stream: any change to
        // the RNG layout, draw coordinates, accumulation order, or event
        // ordering shows up here as a byte diff. Regenerate with
        //   sprint trace ... --out crates/cli/src/testdata/<name>.jsonl
        // only when such a change is intentional.
        let greedy = trace_bytes(&[
            "--benchmark",
            "decision",
            "--policy",
            "g",
            "--agents",
            "40",
            "--epochs",
            "60",
            "--seed",
            "7",
        ]);
        assert_eq!(
            greedy,
            include_bytes!("testdata/trace_greedy_40x60_seed7.jsonl"),
            "greedy trace diverged from the golden file"
        );
        let et = trace_bytes(&[
            "--benchmark",
            "svm",
            "--policy",
            "e-t",
            "--agents",
            "40",
            "--epochs",
            "60",
            "--seed",
            "11",
        ]);
        assert_eq!(
            et,
            include_bytes!("testdata/trace_et_40x60_seed11.jsonl"),
            "e-t trace (solver events included) diverged from the golden file"
        );
    }

    #[test]
    fn trace_bytes_are_identical_at_any_job_count() {
        let base = [
            "--benchmark",
            "kmeans",
            "--policy",
            "e-t",
            "--agents",
            "50",
            "--epochs",
            "40",
            "--seed",
            "3",
        ];
        let serial = trace_bytes(&base);
        for jobs in ["2", "4"] {
            let mut args = base.to_vec();
            args.extend_from_slice(&["--jobs", jobs]);
            assert_eq!(serial, trace_bytes(&args), "jobs = {jobs}");
        }
    }

    #[test]
    fn solve_requires_benchmark() {
        assert!(solve(&parsed(&["solve"])).is_err());
        assert!(solve(&parsed(&["solve", "--benchmark", "nosuch"])).is_err());
        assert!(solve(&parsed(&["solve", "--benchmark", "decision"])).is_ok());
    }

    #[test]
    fn solve_rejects_unknown_flags_and_bad_config() {
        assert!(solve(&parsed(&[
            "solve",
            "--benchmark",
            "decision",
            "--bogus",
            "1"
        ]))
        .is_err());
        assert!(solve(&parsed(&[
            "solve",
            "--benchmark",
            "decision",
            "--discount",
            "1.5"
        ]))
        .is_err());
    }

    #[test]
    fn simulate_runs_small() {
        let args = parsed(&[
            "simulate",
            "--benchmark",
            "svm",
            "--policy",
            "g",
            "--agents",
            "20",
            "--epochs",
            "10",
        ]);
        assert!(simulate(&args).is_ok());
    }

    #[test]
    fn simulate_json_output_runs() {
        let args = parsed(&[
            "simulate",
            "--benchmark",
            "svm",
            "--policy",
            "e-t",
            "--agents",
            "20",
            "--epochs",
            "10",
            "--json",
            "true",
        ]);
        assert!(simulate(&args).is_ok());
    }

    #[test]
    fn simulate_with_telemetry_runs() {
        let args = parsed(&[
            "simulate",
            "--benchmark",
            "svm",
            "--policy",
            "g",
            "--agents",
            "20",
            "--epochs",
            "10",
            "--telemetry",
            "true",
        ]);
        assert!(simulate(&args).is_ok());
        let json = parsed(&[
            "simulate",
            "--benchmark",
            "svm",
            "--policy",
            "g",
            "--agents",
            "20",
            "--epochs",
            "10",
            "--telemetry",
            "true",
            "--json",
            "true",
        ]);
        assert!(simulate(&json).is_ok());
    }

    #[test]
    fn trace_writes_deterministic_jsonl() {
        let dir = std::env::temp_dir();
        let path_a = dir.join("sprint-trace-test-a.jsonl");
        let path_b = dir.join("sprint-trace-test-b.jsonl");
        for path in [&path_a, &path_b] {
            let args = parsed(&[
                "trace",
                "--benchmark",
                "svm",
                "--policy",
                "e-t",
                "--agents",
                "20",
                "--epochs",
                "15",
                "--seed",
                "3",
                "--out",
                path.to_str().unwrap(),
            ]);
            assert!(trace(&args).is_ok());
        }
        let a = std::fs::read(&path_a).unwrap();
        let b = std::fs::read(&path_b).unwrap();
        assert!(!a.is_empty());
        assert_eq!(a, b, "repeated traces must be byte-identical");
        let text = String::from_utf8(a).unwrap();
        assert!(text.lines().all(|l| l.starts_with('{') || !l.contains('{')));
        assert!(text.contains("EpochTick"));
        assert!(text.contains("SolverOutcome"));
        assert!(!text.contains("SprintDecision"), "firehose is opt-in");
        let _ = std::fs::remove_file(path_a);
        let _ = std::fs::remove_file(path_b);
    }

    #[test]
    fn trace_includes_decisions_on_request() {
        let dir = std::env::temp_dir();
        let path = dir.join("sprint-trace-test-decisions.jsonl");
        let args = parsed(&[
            "trace",
            "--benchmark",
            "svm",
            "--policy",
            "g",
            "--agents",
            "5",
            "--epochs",
            "5",
            "--decisions",
            "true",
            "--out",
            path.to_str().unwrap(),
        ]);
        assert!(trace(&args).is_ok());
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("SprintDecision"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn report_runs_text_and_json() {
        let args = parsed(&[
            "report",
            "--benchmark",
            "svm",
            "--policy",
            "e-t",
            "--agents",
            "20",
            "--epochs",
            "15",
        ]);
        assert!(report(&args).is_ok());
        let json = parsed(&[
            "report",
            "--benchmark",
            "svm",
            "--policy",
            "g",
            "--agents",
            "20",
            "--epochs",
            "15",
            "--json",
            "true",
        ]);
        assert!(report(&json).is_ok());
        assert!(report(&parsed(&["report"])).is_err());
    }

    #[test]
    fn policy_aliases_parse() {
        assert_eq!(parse_policy("greedy").unwrap(), PolicyKind::Greedy);
        assert_eq!(
            parse_policy("E-T").unwrap(),
            PolicyKind::EquilibriumThreshold
        );
        assert_eq!(
            parse_policy("ct").unwrap(),
            PolicyKind::CooperativeThreshold
        );
        assert!(parse_policy("random").is_err());
    }

    #[test]
    fn cluster_runs_small() {
        let args = parsed(&[
            "cluster",
            "--benchmark",
            "decision",
            "--racks",
            "2",
            "--agents-per-rack",
            "20",
            "--epochs",
            "30",
        ]);
        assert!(cluster(&args).is_ok());
        // Inverted facility band is rejected.
        let bad = parsed(&[
            "cluster",
            "--benchmark",
            "decision",
            "--racks",
            "2",
            "--agents-per-rack",
            "20",
            "--epochs",
            "30",
            "--facility-n-min",
            "100",
            "--facility-n-max",
            "50",
        ]);
        assert!(cluster(&bad).is_err());
    }

    #[test]
    fn derive_params_scales() {
        assert!(derive_params(&parsed(&["derive-params", "--servers", "100"])).is_ok());
        assert!(derive_params(&parsed(&["derive-params", "--servers", "0"])).is_err());
    }

    #[test]
    fn compare_validates_seeds() {
        let args = parsed(&[
            "compare",
            "--benchmark",
            "als",
            "--agents",
            "20",
            "--epochs",
            "10",
            "--seeds",
            "0",
        ]);
        assert!(compare(&args).is_err());
    }

    #[test]
    fn sweep_runs_inline_spec() {
        let args = parsed(&[
            "sweep",
            "--benchmark",
            "svm",
            "--agents",
            "20",
            "--epochs",
            "15",
            "--seeds",
            "2",
            "--jobs",
            "2",
        ]);
        assert!(sweep(&args).is_ok());
        assert!(sweep(&parsed(&["sweep", "--benchmark", "svm", "--seeds", "0"])).is_err());
        assert!(sweep(&parsed(&["sweep", "--bogus", "1"])).is_err());
    }

    #[test]
    fn sweep_print_spec_round_trips() {
        assert!(sweep(&parsed(&["sweep", "--print-spec", "true"])).is_ok());
    }

    #[test]
    fn sweep_accepts_spec_file_and_writes_records() {
        let dir = std::env::temp_dir();
        let spec_path = dir.join("sprint-sweep-test-spec.json");
        let records_path = dir.join("sprint-sweep-test-records.jsonl");
        let mut spec = SweepSpec::example();
        spec.populations[0].agents = 20;
        spec.epochs = 10;
        spec.games.truncate(1);
        spec.policies.truncate(2);
        spec.seeds.truncate(2);
        std::fs::write(&spec_path, serde_json::to_string(&spec).unwrap()).unwrap();
        let args = parsed(&[
            "sweep",
            "--spec",
            spec_path.to_str().unwrap(),
            "--jobs",
            "2",
            "--json",
            "true",
            "--records",
            records_path.to_str().unwrap(),
            "--telemetry",
            "true",
        ]);
        assert!(sweep(&args).is_ok());
        let records = std::fs::read_to_string(&records_path).unwrap();
        assert_eq!(records.lines().count(), 4, "2 policies x 2 seeds");
        assert!(records.lines().all(|l| l.starts_with('{')));
        // --spec excludes the inline shape flags.
        let conflicted = parsed(&[
            "sweep",
            "--spec",
            spec_path.to_str().unwrap(),
            "--benchmark",
            "svm",
        ]);
        assert!(sweep(&conflicted).is_err());
        let _ = std::fs::remove_file(spec_path);
        let _ = std::fs::remove_file(records_path);
    }

    #[test]
    fn sweep_accepts_a_versioned_jobspec_file() {
        let dir = std::env::temp_dir();
        let spec_path = dir.join("sprint-sweep-test-jobspec.json");
        let mut spec = SweepSpec::example();
        spec.populations[0].agents = 20;
        spec.epochs = 10;
        spec.games.truncate(1);
        spec.policies.truncate(1);
        spec.seeds.truncate(1);
        let job = JobSpec::new(JobKind::Sweep { spec });
        std::fs::write(&spec_path, serde_json::to_string(&job).unwrap()).unwrap();
        let args = parsed(&["sweep", "--spec", spec_path.to_str().unwrap()]);
        assert!(sweep(&args).is_ok());
        // A versioned file of the wrong job kind is a flag error, not a
        // silent misparse.
        let run_job = JobSpec::new(JobKind::Run {
            spec: RunSpec {
                benchmark: "svm".to_string(),
                policy: PolicyKind::Greedy,
                agents: 20,
                epochs: 10,
                seed: 1,
                jobs: None,
            },
        });
        std::fs::write(&spec_path, serde_json::to_string(&run_job).unwrap()).unwrap();
        let err = sweep(&parsed(&["sweep", "--spec", spec_path.to_str().unwrap()]))
            .expect_err("a run job is not a sweep spec");
        assert!(err.to_string().contains("run job"), "{err}");
        let _ = std::fs::remove_file(spec_path);
    }

    #[test]
    fn chaos_runs_small_and_validates() {
        let args = parsed(&[
            "chaos",
            "--benchmark",
            "svm",
            "--agents",
            "20",
            "--epochs",
            "15",
            "--seeds",
            "1",
        ]);
        assert!(chaos(&args).is_ok());
        let json = parsed(&[
            "chaos",
            "--benchmark",
            "svm",
            "--agents",
            "20",
            "--epochs",
            "15",
            "--seeds",
            "1",
            "--json",
            "true",
        ]);
        assert!(chaos(&json).is_ok());
        let bad = parsed(&["chaos", "--benchmark", "svm", "--seeds", "0"]);
        assert!(chaos(&bad).is_err());
    }

    #[test]
    fn chaos_partition_runs_and_archives_the_report() {
        let report_path = std::env::temp_dir().join("sprint-chaos-partition-report.json");
        let args = parsed(&[
            "chaos",
            "--benchmark",
            "svm",
            "--agents",
            "20",
            "--epochs",
            "120",
            "--seeds",
            "2",
            "--partition",
            "true",
            "--partition-epochs",
            "3",
            "--report",
            report_path.to_str().unwrap(),
        ]);
        assert!(chaos(&args).is_ok());
        let text = std::fs::read_to_string(&report_path).unwrap();
        let report: sprint_sim::runner::ResilienceReport = serde_json::from_str(&text).unwrap();
        assert_eq!(report.trials.len(), 2);
        assert_eq!(report.invariant_violations, 0);
        let _ = std::fs::remove_file(report_path);
        // The partition-only flags require --partition true.
        let orphan = parsed(&[
            "chaos",
            "--benchmark",
            "svm",
            "--agents",
            "20",
            "--epochs",
            "15",
            "--seeds",
            "1",
            "--partition-epochs",
            "3",
        ]);
        assert!(chaos(&orphan).is_err());
    }

    #[test]
    fn chaos_adversaries_runs_and_archives_the_report() {
        let report_path = std::env::temp_dir().join("sprint-chaos-adversary-report.json");
        let args = parsed(&[
            "chaos",
            "--benchmark",
            "svm",
            "--agents",
            "40",
            "--epochs",
            "300",
            "--seeds",
            "1",
            "--adversaries",
            "0.1",
            "--report",
            report_path.to_str().unwrap(),
        ]);
        assert!(chaos(&args).is_ok());
        let text = std::fs::read_to_string(&report_path).unwrap();
        let report: sprint_sim::AdversaryReport = serde_json::from_str(&text).unwrap();
        assert_eq!(report.trials.len(), 1);
        assert_eq!(report.false_positive_exclusions, 0);
        let _ = std::fs::remove_file(report_path);
        // Kind-specific flags demand the matching kind.
        let mismatched = parsed(&[
            "chaos",
            "--benchmark",
            "svm",
            "--agents",
            "20",
            "--epochs",
            "15",
            "--adversaries",
            "0.1",
            "--clique-period",
            "4",
        ]);
        assert!(chaos(&mismatched).is_err());
        // Adversary flags without --adversaries are rejected.
        let orphan = parsed(&[
            "chaos",
            "--benchmark",
            "svm",
            "--agents",
            "20",
            "--epochs",
            "15",
            "--adversary-kind",
            "greedy_defector",
        ]);
        assert!(chaos(&orphan).is_err());
        // --partition and --adversaries are mutually exclusive.
        let both = parsed(&[
            "chaos",
            "--benchmark",
            "svm",
            "--partition",
            "true",
            "--adversaries",
            "0.1",
        ]);
        assert!(chaos(&both).is_err());
    }

    #[test]
    fn sweep_accepts_a_trial_deadline() {
        let args = parsed(&[
            "sweep",
            "--benchmark",
            "svm",
            "--agents",
            "20",
            "--epochs",
            "15",
            "--seeds",
            "1",
            "--trial-deadline",
            "60000",
        ]);
        assert!(sweep(&args).is_ok());
        let bad = parsed(&["sweep", "--benchmark", "svm", "--trial-deadline", "soon"]);
        assert!(sweep(&bad).is_err());
    }

    #[test]
    fn benchmarks_lists() {
        assert!(benchmarks(&parsed(&["benchmarks"])).is_ok());
        assert!(benchmarks(&parsed(&["benchmarks", "--x", "1"])).is_err());
    }
}
