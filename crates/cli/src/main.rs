//! `sprint` — command-line interface to the computational sprinting game.
//!
//! ```text
//! sprint solve --benchmark decision
//! sprint simulate --benchmark pagerank --policy e-t --agents 1000 --epochs 600
//! sprint compare --benchmark decision
//! sprint derive-params --servers 1000 --json true
//! ```

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match args::ParsedArgs::parse(raw) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::USAGE);
            return ExitCode::FAILURE;
        }
    };
    match commands::dispatch(&parsed) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
