//! Minimal dependency-free argument parsing for the `sprint` binary.
//!
//! Flags take the form `--name value`; every subcommand validates its own
//! flag set and rejects unknown flags, so typos fail loudly instead of
//! silently running a default experiment.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed command line: subcommand plus `--flag value` pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedArgs {
    command: String,
    flags: BTreeMap<String, String>,
}

/// Argument-parsing error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl ParsedArgs {
    /// Parse raw arguments (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] when no subcommand is given, a flag is missing
    /// its value, or a positional argument appears after the subcommand.
    pub fn parse<I, S>(raw: I) -> Result<Self, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut iter = raw.into_iter().map(Into::into);
        let command = iter
            .next()
            .ok_or_else(|| ArgError("missing subcommand; try `sprint help`".into()))?;
        let mut flags = BTreeMap::new();
        while let Some(arg) = iter.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(ArgError(format!(
                    "unexpected positional argument `{arg}`; flags look like --name value"
                )));
            };
            let value = iter
                .next()
                .ok_or_else(|| ArgError(format!("flag --{name} is missing its value")))?;
            if flags.insert(name.to_string(), value).is_some() {
                return Err(ArgError(format!("flag --{name} given twice")));
            }
        }
        Ok(ParsedArgs { command, flags })
    }

    /// The subcommand name.
    #[must_use]
    pub fn command(&self) -> &str {
        &self.command
    }

    /// Reject any flag not in `allowed`.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] naming the first unknown flag.
    pub fn expect_only(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for name in self.flags.keys() {
            if !allowed.contains(&name.as_str()) {
                return Err(ArgError(format!(
                    "unknown flag --{name} for `{}`; allowed: {}",
                    self.command,
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
        Ok(())
    }

    /// Raw string flag.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// String flag with a default.
    #[must_use]
    pub fn get_or(&self, name: &str, default: &str) -> String {
        self.get(name).unwrap_or(default).to_string()
    }

    /// Parsed numeric flag with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] when the value does not parse as `T`.
    pub fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| ArgError(format!("flag --{name} has invalid value `{raw}`"))),
        }
    }

    /// Boolean flag (`--name true|false`).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] for values other than `true`/`false`.
    pub fn get_bool(&self, name: &str, default: bool) -> Result<bool, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some("true") => Ok(true),
            Some("false") => Ok(false),
            Some(other) => Err(ArgError(format!(
                "flag --{name} expects true or false, got `{other}`"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_and_flags() {
        let a = ParsedArgs::parse(["solve", "--benchmark", "decision", "--json", "true"]).unwrap();
        assert_eq!(a.command(), "solve");
        assert_eq!(a.get("benchmark"), Some("decision"));
        assert!(a.get_bool("json", false).unwrap());
        assert_eq!(a.get("missing"), None);
    }

    #[test]
    fn rejects_missing_subcommand_and_values() {
        assert!(ParsedArgs::parse(Vec::<String>::new()).is_err());
        assert!(ParsedArgs::parse(["solve", "--benchmark"]).is_err());
        assert!(ParsedArgs::parse(["solve", "stray"]).is_err());
        assert!(ParsedArgs::parse(["solve", "--x", "1", "--x", "2"]).is_err());
    }

    #[test]
    fn expect_only_flags_unknowns() {
        let a = ParsedArgs::parse(["simulate", "--agents", "100"]).unwrap();
        assert!(a.expect_only(&["agents", "epochs"]).is_ok());
        assert!(a.expect_only(&["epochs"]).is_err());
    }

    #[test]
    fn numeric_defaults_and_errors() {
        let a = ParsedArgs::parse(["x", "--n", "42"]).unwrap();
        assert_eq!(a.get_parsed("n", 7u32).unwrap(), 42);
        assert_eq!(a.get_parsed("m", 7u32).unwrap(), 7);
        let bad = ParsedArgs::parse(["x", "--n", "abc"]).unwrap();
        assert!(bad.get_parsed("n", 7u32).is_err());
    }

    #[test]
    fn bool_validation() {
        let a = ParsedArgs::parse(["x", "--flag", "maybe"]).unwrap();
        assert!(a.get_bool("flag", false).is_err());
        assert!(!ParsedArgs::parse(["x"])
            .unwrap()
            .get_bool("flag", false)
            .unwrap());
    }
}
