//! Minimal, dependency-free stand-in for the parts of the `rand` crate this
//! workspace uses. Vendored so the build works fully offline.
//!
//! Surface provided (and nothing more):
//!
//! - [`RngCore`], [`Rng`] (with `gen::<T>()`, `gen_range(..)`, `gen_bool`),
//!   [`SeedableRng::seed_from_u64`].
//! - [`rngs::StdRng`]: a small, fast, high-quality generator
//!   (xoshiro256++ seeded through SplitMix64). It is *not* the upstream
//!   ChaCha12-based `StdRng`; streams differ from upstream `rand`, which is
//!   fine because the workspace only requires determinism within itself.

pub mod rngs;

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator seedable from a `u64` (the only constructor this workspace
/// uses; upstream's byte-array `from_seed` is intentionally omitted).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from a generator via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (matches upstream's
    /// `Standard` distribution for `f64` in spirit).
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                start + uniform_u64(rng, span) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u32, u64, usize, i32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        start + u * (end - start)
    }
}

/// Unbiased uniform draw from `[0, span)` (`span > 0`) via Lemire-style
/// rejection on the widening multiply.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let low = m as u64;
        if low >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
        // Reject and redraw to stay unbiased.
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of type `T` (uniform bits; `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draw uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability outside [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(0..=1u32);
            assert!(v <= 1);
            seen_lo |= v == 0;
            seen_hi |= v == 1;
            let w: usize = rng.gen_range(0..5usize);
            assert!(w < 5);
            let f: f64 = rng.gen_range(2.0..3.0);
            assert!((2.0..3.0).contains(&f));
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn inclusive_range_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ones = 0u32;
        for _ in 0..10_000 {
            ones += rng.gen_range(0..=1u32);
        }
        // Binomial(10000, 0.5): five sigma is about 250.
        assert!((4750..=5250).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
