//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard generator: xoshiro256++ with SplitMix64 seeding.
///
/// Not the upstream ChaCha12 `StdRng`; this workspace only needs internal
/// determinism, statistical quality, and speed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        // Expand the seed through SplitMix64 so similar seeds yield
        // uncorrelated streams (the xoshiro authors' recommendation).
        let mut x = state;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ (Blackman & Vigna, 2019).
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_preserves_stream() {
        let mut a = StdRng::seed_from_u64(5);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
