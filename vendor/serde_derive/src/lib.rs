//! Minimal `Serialize`/`Deserialize` derive macros for the vendored serde
//! shim. Hand-rolled over `proc_macro` token trees (no `syn`/`quote`), so
//! the workspace builds with zero external dependencies.
//!
//! Supported shapes — exactly what this workspace uses:
//!
//! - named-field structs and unit structs;
//! - enums whose variants are unit or named-field (externally tagged);
//! - the container attribute `#[serde(try_from = "T", into = "T")]`;
//! - inert attributes (`#[doc]`, `#[default]`, …) are skipped.
//!
//! Tuple structs, generics, and other serde attributes produce a
//! `compile_error!` naming the limitation rather than silently misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derive the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

struct Container {
    name: String,
    try_from: Option<String>,
    into: Option<String>,
    data: Data,
}

enum Data {
    UnitStruct,
    NamedStruct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    /// `None` for unit variants, `Some(fields)` for named-field variants.
    fields: Option<Vec<String>>,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse_container(input) {
        Ok(container) => {
            let code = match mode {
                Mode::Serialize => gen_serialize(&container),
                Mode::Deserialize => gen_deserialize(&container),
            };
            code.parse().expect("derive generated invalid Rust")
        }
        Err(message) => format!("compile_error!({message:?});").parse().unwrap(),
    }
}

// ---------------------------------------------------------------- parsing

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, c: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == c)
    }

    fn at_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    /// Skip one `#[...]` attribute if present; returns the bracket group.
    fn eat_attribute(&mut self) -> Option<TokenStream> {
        if !self.at_punct('#') {
            return None;
        }
        self.pos += 1;
        match self.bump() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => Some(g.stream()),
            _ => None,
        }
    }

    /// Skip `pub`, `pub(crate)`, `pub(in ...)` if present.
    fn eat_visibility(&mut self) {
        if self.at_ident("pub") {
            self.pos += 1;
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.pos += 1;
                }
            }
        }
    }
}

fn parse_container(input: TokenStream) -> Result<Container, String> {
    let mut cursor = Cursor::new(input);
    let mut try_from = None;
    let mut into = None;

    // Attributes and visibility before the `struct`/`enum` keyword.
    loop {
        if let Some(attr) = cursor.eat_attribute() {
            parse_serde_attr(attr, &mut try_from, &mut into)?;
            continue;
        }
        if cursor.at_ident("pub") {
            cursor.eat_visibility();
            continue;
        }
        break;
    }

    let keyword = match cursor.bump() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    let name = match cursor.bump() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    if cursor.at_punct('<') {
        return Err(format!(
            "vendored serde derive does not support generics (type `{name}`)"
        ));
    }

    let data = match keyword.as_str() {
        "struct" => match cursor.bump() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "vendored serde derive does not support tuple structs (type `{name}`)"
                ));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Data::UnitStruct,
            other => return Err(format!("unexpected struct body: {other:?}")),
        },
        "enum" => match cursor.bump() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream(), &name)?)
            }
            other => return Err(format!("unexpected enum body: {other:?}")),
        },
        other => return Err(format!("cannot derive for `{other}` items")),
    };

    Ok(Container {
        name,
        try_from,
        into,
        data,
    })
}

/// Parse `#[serde(try_from = "T", into = "T")]`; ignore non-serde attrs.
fn parse_serde_attr(
    attr: TokenStream,
    try_from: &mut Option<String>,
    into: &mut Option<String>,
) -> Result<(), String> {
    let mut cursor = Cursor::new(attr);
    if !cursor.at_ident("serde") {
        return Ok(()); // doc comment, derive list, etc.
    }
    cursor.pos += 1;
    let inner = match cursor.bump() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return Err("malformed #[serde(...)] attribute".to_string()),
    };
    let mut cursor = Cursor::new(inner);
    while let Some(tok) = cursor.bump() {
        let key = match tok {
            TokenTree::Ident(i) => i.to_string(),
            TokenTree::Punct(p) if p.as_char() == ',' => continue,
            other => return Err(format!("unsupported serde attribute token {other:?}")),
        };
        if !cursor.at_punct('=') {
            return Err(format!(
                "vendored serde derive does not support `#[serde({key})]`"
            ));
        }
        cursor.pos += 1;
        let value = match cursor.bump() {
            Some(TokenTree::Literal(l)) => {
                let s = l.to_string();
                s.trim_matches('"').to_string()
            }
            other => return Err(format!("expected string literal, found {other:?}")),
        };
        match key.as_str() {
            "try_from" => *try_from = Some(value),
            "into" => *into = Some(value),
            other => {
                return Err(format!(
                    "vendored serde derive does not support `#[serde({other} = ...)]`"
                ))
            }
        }
    }
    Ok(())
}

/// Parse `name: Type, ...` named fields, skipping attributes and visibility.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut cursor = Cursor::new(body);
    let mut fields = Vec::new();
    loop {
        while cursor.eat_attribute().is_some() {}
        if cursor.peek().is_none() {
            break;
        }
        cursor.eat_visibility();
        let field = match cursor.bump() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        if !cursor.at_punct(':') {
            return Err(format!("expected `:` after field `{field}`"));
        }
        cursor.pos += 1;
        // Consume the type: everything until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        while let Some(tok) = cursor.peek() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    cursor.pos += 1;
                    break;
                }
                _ => {}
            }
            cursor.pos += 1;
        }
        fields.push(field);
    }
    Ok(fields)
}

fn parse_variants(body: TokenStream, enum_name: &str) -> Result<Vec<Variant>, String> {
    let mut cursor = Cursor::new(body);
    let mut variants = Vec::new();
    loop {
        while cursor.eat_attribute().is_some() {}
        if cursor.peek().is_none() {
            break;
        }
        let name = match cursor.bump() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        let fields = match cursor.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let stream = g.stream();
                cursor.pos += 1;
                Some(parse_named_fields(stream)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "vendored serde derive does not support tuple variants \
                     (`{enum_name}::{name}`)"
                ));
            }
            _ => None,
        };
        if cursor.at_punct('=') {
            return Err(format!(
                "vendored serde derive does not support explicit discriminants \
                 (`{enum_name}::{name}`)"
            ));
        }
        if cursor.at_punct(',') {
            cursor.pos += 1;
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(c: &Container) -> String {
    let name = &c.name;
    if let Some(proxy) = &c.into {
        return format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     let __proxy: {proxy} = \
                         ::std::convert::Into::into(::std::clone::Clone::clone(self));\n\
                     ::serde::Serialize::to_value(&__proxy)\n\
                 }}\n\
             }}"
        );
    }
    let body = match &c.data {
        Data::UnitStruct => "::serde::Value::Null".to_string(),
        Data::NamedStruct(fields) => object_expr(fields, |f| format!("&self.{f}")),
        Data::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    None => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::String(\
                             ::std::string::String::from(\"{vname}\")),\n"
                    )),
                    Some(fields) => {
                        let bindings = fields.join(", ");
                        let inner = object_expr(fields, |f| f.to_string());
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {bindings} }} => ::serde::Value::Object(\
                                 ::std::vec![(::std::string::String::from(\"{vname}\"), {inner})]),\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

/// `Value::Object(vec![("f", to_value(<access(f)>)), ...])`.
fn object_expr(fields: &[String], access: impl Fn(&str) -> String) -> String {
    let mut entries = String::new();
    for f in fields {
        let expr = access(f);
        entries.push_str(&format!(
            "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({expr})),"
        ));
    }
    format!("::serde::Value::Object(::std::vec![{entries}])")
}

fn gen_deserialize(c: &Container) -> String {
    let name = &c.name;
    if let Some(proxy) = &c.try_from {
        return format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__value: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     let __proxy: {proxy} = ::serde::Deserialize::from_value(__value)?;\n\
                     ::std::convert::TryFrom::try_from(__proxy)\
                         .map_err(::serde::DeError::custom)\n\
                 }}\n\
             }}"
        );
    }
    let body = match &c.data {
        Data::UnitStruct => format!(
            "match __value {{\n\
                 ::serde::Value::Null => ::std::result::Result::Ok({name}),\n\
                 __other => ::std::result::Result::Err(\
                     ::serde::DeError::type_mismatch(\"null\", __other)),\n\
             }}"
        ),
        Data::NamedStruct(fields) => {
            let inits = field_inits(name, name, fields);
            format!(
                "let __obj = __value.as_object().ok_or_else(|| \
                     ::serde::DeError::custom(\"expected object for `{name}`\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        Data::Enum(variants) => gen_enum_deserialize(name, variants),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}

/// `f: match __field(__obj, "f") {...}, ...` initializers for a struct or
/// struct-variant literal.
fn field_inits(type_label: &str, _path: &str, fields: &[String]) -> String {
    let mut out = String::new();
    for f in fields {
        out.push_str(&format!(
            "{f}: match ::serde::__field(__obj, \"{f}\") {{\n\
                 ::std::option::Option::Some(__v) => ::serde::Deserialize::from_value(__v)?,\n\
                 ::std::option::Option::None => ::serde::Deserialize::missing()\
                     .ok_or_else(|| ::serde::DeError::custom(\
                         \"missing field `{f}` in `{type_label}`\"))?,\n\
             }},\n"
        ));
    }
    out
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.fields {
            None => unit_arms.push_str(&format!(
                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
            )),
            Some(fields) => {
                let inits = field_inits(&format!("{name}::{vname}"), name, fields);
                tagged_arms.push_str(&format!(
                    "\"{vname}\" => {{\n\
                         let __obj = __inner.as_object().ok_or_else(|| \
                             ::serde::DeError::custom(\
                                 \"expected object body for `{name}::{vname}`\"))?;\n\
                         ::std::result::Result::Ok({name}::{vname} {{ {inits} }})\n\
                     }}\n"
                ));
            }
        }
    }
    format!(
        "match __value {{\n\
             ::serde::Value::String(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                     ::std::format!(\"unknown variant `{{__other}}` of `{name}`\"))),\n\
             }},\n\
             ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __inner) = &__entries[0];\n\
                 let _ = __inner;\n\
                 match __tag.as_str() {{\n\
                     {tagged_arms}\
                     __other => ::std::result::Result::Err(::serde::DeError::custom(\
                         ::std::format!(\"unknown variant `{{__other}}` of `{name}`\"))),\n\
                 }}\n\
             }}\n\
             __other => ::std::result::Result::Err(\
                 ::serde::DeError::type_mismatch(\"variant of `{name}`\", __other)),\n\
         }}"
    )
}
