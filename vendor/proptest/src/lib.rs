//! Minimal, dependency-free stand-in for the parts of `proptest` this
//! workspace uses, vendored so the build works fully offline.
//!
//! Differences from upstream, by design:
//!
//! - no shrinking — a failing case reports its inputs' seed instead;
//! - cases are generated from a seed derived deterministically from the
//!   test's name, so failures reproduce across runs;
//! - only the strategies the workspace uses exist: numeric ranges, tuples,
//!   `prop::collection::vec`, `prop::sample::select`, `prop_map`,
//!   `prop_filter`, and `prop_filter_map`.

pub mod prop;

/// Deterministic generator used to drive strategies (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed through SplitMix64 so nearby seeds decorrelate.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, 1)` with 53-bit precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Unbiased uniform draw from `[0, span)`; `span > 0`.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (span as u128);
            if (m as u64) >= span.wrapping_neg() % span {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Why a generated case did not count as a pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed or a filter rejected the inputs; draw again.
    Reject,
    /// `prop_assert!`-style failure: the property is violated.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure with a message.
    #[must_use]
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` accepted cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type this strategy produces.
    type Value;

    /// Draw one value; `None` means the draw was filtered out.
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `keep` (the reason string is used in
    /// upstream diagnostics; here it is informational only).
    fn prop_filter<F>(self, _reason: &'static str, keep: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, keep }
    }

    /// Transform and filter in one step.
    fn prop_filter_map<O, F>(self, _reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.sample(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    keep: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.sample(rng).filter(|v| (self.keep)(v))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.sample(rng).and_then(&self.f)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                Some(self.start + rng.below(span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    return Some(rng.next_u64() as $t);
                }
                Some(start + rng.below(span) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> Option<f64> {
        assert!(self.start < self.end, "empty strategy range");
        Some(self.start + rng.unit_f64() * (self.end - self.start))
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> Option<f64> {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty strategy range");
        Some(start + rng.unit_f64() * (end - start))
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.sample(rng)?,)+))
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Always produces a clone of the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// Drive a property: generate cases until `config.cases` accepted runs
/// pass, panicking on the first failure. Rejection (via `prop_assume!` or
/// filters) retries with fresh draws, up to a bound.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name.as_bytes());
    let mut accepted = 0u32;
    let mut rejected = 0u64;
    let mut index = 0u64;
    let reject_budget = u64::from(config.cases) * 256 + 1024;
    while accepted < config.cases {
        let seed = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        index += 1;
        let mut rng = TestRng::new(seed);
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= reject_budget,
                    "property `{name}`: too many rejected cases \
                     ({rejected} rejects for {accepted} accepted)"
                );
            }
            Err(TestCaseError::Fail(message)) => {
                panic!("property `{name}` failed (case seed {seed:#x}):\n{message}");
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The names most property-test files import.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Define property tests (vendored subset of upstream's macro).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __config = $config;
            $crate::run_proptest(&__config, stringify!($name), |__rng| {
                $(
                    let $arg = match $crate::Strategy::sample(&($strategy), __rng) {
                        ::std::option::Option::Some(v) => v,
                        ::std::option::Option::None => {
                            return ::std::result::Result::Err($crate::TestCaseError::Reject)
                        }
                    };
                )+
                let mut __case = || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                };
                __case()
            });
        }
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
}

/// Assert a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                $($fmt)+
            )));
        }
    }};
}

/// Discard the current case unless an assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        fn ranges_respect_bounds(x in 3u32..10, y in -2.0f64..=2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..=2.0).contains(&y));
        }

        fn tuples_and_maps_compose((a, b) in (0u64..100, 0u64..100).prop_map(|(a, b)| (a.min(b), a.max(b)))) {
            prop_assert!(a <= b);
        }

        fn vec_strategy_sizes(v in prop::collection::vec(0.0f64..1.0, 4..9)) {
            prop_assert!(v.len() >= 4 && v.len() < 9);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        fn select_draws_members(x in prop::sample::select(vec![2u32, 4, 8])) {
            prop_assert!([2, 4, 8].contains(&x));
            prop_assume!(x != 2);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn runner_is_deterministic() {
        let mut seen = Vec::new();
        for _ in 0..2 {
            let mut values = Vec::new();
            crate::run_proptest(&ProptestConfig::with_cases(5), "determinism-probe", |rng| {
                values.push(rng.next_u64());
                Ok(())
            });
            seen.push(values);
        }
        assert_eq!(seen[0], seen[1]);
    }
}
