//! The `prop::` namespace (`prop::collection`, `prop::sample`).

/// Collection strategies.
pub mod collection {
    use crate::{Strategy, TestRng};

    /// Lengths accepted by [`vec`]: an exact size or a range of sizes.
    pub trait SizeRange {
        /// Pick a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (start, end) = (*self.start(), *self.end());
            assert!(start <= end, "empty size range");
            start + rng.below((end - start + 1) as u64) as usize
        }
    }

    /// Strategy producing `Vec`s of `element` draws with length in `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling strategies over explicit candidate sets.
pub mod sample {
    use crate::{Strategy, TestRng};

    /// Strategy drawing one element of `items` uniformly.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select requires at least one candidate");
        Select { items }
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> Option<T> {
            let idx = rng.below(self.items.len() as u64) as usize;
            Some(self.items[idx].clone())
        }
    }
}
