//! JSON emission (compact and pretty).

use serde::{Number, Value};

use crate::Error;

pub(crate) fn compact(value: &Value) -> crate::Result<String> {
    let mut out = String::new();
    write_value(&mut out, value, None, 0)?;
    Ok(out)
}

pub(crate) fn pretty(value: &Value) -> crate::Result<String> {
    let mut out = String::new();
    write_value(&mut out, value, Some("  "), 0)?;
    Ok(out)
}

fn write_value(
    out: &mut String,
    value: &Value,
    indent: Option<&str>,
    depth: usize,
) -> crate::Result<()> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n)?,
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_number(out: &mut String, n: &Number) -> crate::Result<()> {
    use std::fmt::Write;
    match *n {
        Number::PosInt(u) => {
            let _ = write!(out, "{u}");
        }
        Number::NegInt(i) => {
            let _ = write!(out, "{i}");
        }
        Number::Float(f) => {
            if !f.is_finite() {
                return Err(Error::new("JSON cannot represent NaN or infinity"));
            }
            // `{:?}` is Rust's shortest representation that round-trips,
            // and always includes a `.0` or exponent for integral floats.
            let _ = write!(out, "{f:?}");
        }
    }
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
