//! Recursive-descent JSON parser.

use serde::{Number, Value};

use crate::Error;

const MAX_DEPTH: usize = 128;

/// Parse a complete JSON document into a [`Value`].
///
/// # Errors
///
/// Returns [`Error`] on malformed input or trailing garbage.
pub fn from_str_value(input: &str) -> crate::Result<Value> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> Error {
        Error::new(format!("{message} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> crate::Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self, depth: usize) -> crate::Result<Value> {
        if depth > MAX_DEPTH {
            return Err(self.error("document nested too deeply"));
        }
        match self.peek() {
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_array(&mut self, depth: usize) -> crate::Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> crate::Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> crate::Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            let ch = char::from_u32(code)
                                .ok_or_else(|| self.error("invalid unicode escape"))?;
                            out.push(ch);
                        }
                        _ => return Err(self.error("invalid escape character")),
                    }
                }
                c if c < 0x20 => return Err(self.error("control character in string")),
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the source slice.
                    let start = self.pos - 1;
                    let len = utf8_len(c);
                    let end = start + len;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.error("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> crate::Result<u32> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.error("invalid \\u escape"))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> crate::Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if integral {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(i)));
            }
        }
        let f: f64 = text
            .parse()
            .map_err(|_| self.error(&format!("invalid number `{text}`")))?;
        if !f.is_finite() {
            return Err(self.error("number out of range"));
        }
        Ok(Value::Number(Number::Float(f)))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}
