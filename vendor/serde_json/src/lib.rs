//! Minimal, dependency-free stand-in for the parts of `serde_json` this
//! workspace uses: `to_string`, `to_string_pretty`, `from_str`, and the
//! [`Value`] tree (re-exported from the vendored `serde`).
//!
//! Floats are emitted via Rust's shortest-roundtrip formatting, so
//! `2.5 -> "2.5"` and values survive a serialize/parse round trip exactly
//! (the upstream `float_roundtrip` feature's guarantee).

pub use serde::{Number, Value};

mod read;
mod write;

pub use read::from_str_value;

/// Error produced by JSON serialization or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias matching upstream's shape.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` as a compact JSON string.
///
/// # Errors
///
/// Returns [`Error`] when the value contains a non-finite float (JSON has
/// no representation for `NaN`/`inf`).
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    write::compact(&value.to_value())
}

/// Serialize `value` as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Returns [`Error`] when the value contains a non-finite float.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    write::pretty(&value.to_value())
}

/// Parse a JSON document into `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or when the document's shape does
/// not fit `T`.
pub fn from_str<T: serde::Deserialize>(input: &str) -> Result<T> {
    let value = read::from_str_value(input)?;
    Ok(T::from_value(&value)?)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_roundtrip_shortest() {
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        assert_eq!(to_string(&5.0f64).unwrap(), "5.0");
        assert_eq!(to_string(&0.1f64).unwrap(), "0.1");
        let x: f64 = from_str("0.1").unwrap();
        assert_eq!(x, 0.1);
    }

    #[test]
    fn nan_is_an_error() {
        assert!(to_string(&f64::NAN).is_err());
        assert!(to_string(&f64::INFINITY).is_err());
    }

    #[test]
    fn escapes_strings() {
        let s = "a\"b\\c\nd\te\u{1}";
        let json = to_string(&s).unwrap();
        assert_eq!(json, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn object_roundtrip_preserves_order() {
        let v = Value::Object(vec![
            ("b".into(), Value::Number(Number::PosInt(1))),
            (
                "a".into(),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
        ]);
        let compact = to_string(&v).unwrap();
        assert_eq!(compact, "{\"b\":1,\"a\":[null,true]}");
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_indents() {
        let v = Value::Object(vec![("k".into(), Value::Array(vec![Value::Bool(false)]))]);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"k\": [\n    false\n  ]\n}");
    }

    #[test]
    fn parses_nested_documents() {
        let v: Value = from_str(" { \"x\" : [ 1 , -2.5e1 , \"\\u0041\" ] } ").unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj[0].0, "x");
        let arr = obj[0].1.as_array().unwrap();
        assert_eq!(arr[0], Value::Number(Number::PosInt(1)));
        assert_eq!(arr[1], Value::Number(Number::Float(-25.0)));
        assert_eq!(arr[2], Value::String("A".into()));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }
}
