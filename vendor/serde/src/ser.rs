//! Serialization into the [`Value`] data model.

use crate::value::{Number, Value};

/// Convert `self` into the JSON-shaped data model.
pub trait Serialize {
    /// Build the [`Value`] representation.
    fn to_value(&self) -> Value;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
    )*};
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
    )*};
}

impl_ser_uint!(u8, u16, u32, u64, usize);
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(f64::from(*self)))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<K: AsRef<str>, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.as_ref().to_owned(), v.to_value()))
                .collect(),
        )
    }
}
