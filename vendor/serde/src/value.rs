//! The intermediate data model: a JSON-shaped value tree.

/// A JSON-shaped value. Objects preserve insertion order so serialization
/// is deterministic (a property the workspace's determinism tests rely on).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

/// A JSON number, preserving integerness where possible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Everything else.
    Float(f64),
}

impl Value {
    /// Borrow the object entries, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrow the string, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow the array elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Numeric value as `f64`, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Short description of the value's kind, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl Number {
    /// The number as `f64` (lossy for very large integers, as in JSON).
    #[must_use]
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(u) => u as f64,
            Number::NegInt(i) => i as f64,
            Number::Float(f) => f,
        }
    }

    /// The number as `u64` if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(u) => Some(u),
            Number::NegInt(i) => u64::try_from(i).ok(),
            Number::Float(f) => {
                if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 {
                    Some(f as u64)
                } else {
                    None
                }
            }
        }
    }

    /// The number as `i64` if it is an integer in range.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(u) => i64::try_from(u).ok(),
            Number::NegInt(i) => Some(i),
            Number::Float(f) => {
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 {
                    Some(f as i64)
                } else {
                    None
                }
            }
        }
    }
}
