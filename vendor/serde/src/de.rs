//! Deserialization from the [`Value`] data model.

use crate::value::Value;

/// Error produced while mapping a [`Value`] onto a Rust type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Build an error from any displayable message.
    pub fn custom<T: std::fmt::Display>(message: T) -> Self {
        DeError {
            message: message.to_string(),
        }
    }

    /// Standard "wrong kind" error.
    #[must_use]
    pub fn type_mismatch(expected: &str, got: &Value) -> Self {
        DeError::custom(format!("expected {expected}, found {}", got.kind()))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Reconstruct `Self` from the JSON-shaped data model.
pub trait Deserialize: Sized {
    /// Map a [`Value`] onto `Self`.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value's shape or range does not fit.
    fn from_value(value: &Value) -> Result<Self, DeError>;

    /// Fallback used by derives when a field is absent from the input
    /// object. `Option<T>` overrides this to `Some(None)`, matching
    /// upstream serde's treatment of missing optional fields.
    #[must_use]
    fn missing() -> Option<Self> {
        None
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::type_mismatch("boolean", other)),
        }
    }
}

macro_rules! impl_de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = match value {
                    Value::Number(n) => n,
                    other => return Err(DeError::type_mismatch("integer", other)),
                };
                let raw = n
                    .as_u64()
                    .ok_or_else(|| DeError::custom("expected unsigned integer"))?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = match value {
                    Value::Number(n) => n,
                    other => return Err(DeError::type_mismatch("integer", other)),
                };
                let raw = n
                    .as_i64()
                    .ok_or_else(|| DeError::custom("expected integer"))?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_de_uint!(u8, u16, u32, u64, usize);
impl_de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Number(n) => Ok(n.as_f64()),
            other => Err(DeError::type_mismatch("number", other)),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::type_mismatch("string", other)),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing() -> Option<Self> {
        Some(None)
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }

    fn missing() -> Option<Self> {
        T::missing().map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::type_mismatch("array", other)),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(value)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError::custom(format!("expected array of length {N}, found {len}")))
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}
