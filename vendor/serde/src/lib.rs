//! Minimal, dependency-free stand-in for the parts of `serde` this
//! workspace uses, vendored so the build works fully offline.
//!
//! Unlike upstream serde's visitor architecture, this shim converts through
//! an owned [`Value`] tree (the `serde_json::Value` shape). That is ample
//! for the workspace's needs: JSON reports, config round-trips, and
//! derive-generated impls for plain structs and enums.
//!
//! The `Serialize`/`Deserialize` *derive macros* are re-exported from the
//! companion `serde_derive` shim; they support named-field structs, unit
//! structs, enums with unit and named-field variants, and the container
//! attribute `#[serde(try_from = "T", into = "T")]`.

pub mod de;
pub mod ser;
pub mod value;

pub use de::{DeError, Deserialize};
pub use ser::Serialize;
pub use serde_derive::{Deserialize, Serialize};
pub use value::{Number, Value};

/// Fetch a field from an object body, if present (used by derive output).
#[doc(hidden)]
pub fn __field<'v>(entries: &'v [(String, Value)], name: &str) -> Option<&'v Value> {
    entries.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}
