//! Minimal, dependency-free stand-in for the parts of `criterion` this
//! workspace's benches use, vendored so the build works fully offline.
//!
//! No statistics, plots, or warm-up heuristics: each benchmark runs its
//! routine in a short time-boxed loop and prints the mean wall-clock time.
//! Good enough to keep `cargo bench` meaningful for coarse comparisons and
//! to keep the bench targets compiling in CI.

use std::time::{Duration, Instant};

/// Re-export matching upstream's convenience: `criterion::black_box`.
pub use std::hint::black_box;

/// How much time to spend measuring each benchmark.
const TARGET_MEASURE_TIME: Duration = Duration::from_millis(300);

/// How batched setup cost is amortized (accepted, not acted on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_owned(),
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        bencher.report(name);
        self
    }
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, name));
        self
    }

    /// End the group (upstream flushes reports here; ours are immediate).
    pub fn finish(self) {}
}

/// Measures one routine.
#[derive(Debug, Default)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure `routine` repeatedly.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // One untimed call to warm caches and visibly exercise the path.
        black_box(routine());
        let start = Instant::now();
        let mut iterations = 0u64;
        while start.elapsed() < TARGET_MEASURE_TIME {
            black_box(routine());
            iterations += 1;
        }
        self.iterations = iterations.max(1);
        self.elapsed = start.elapsed();
    }

    /// Measure `routine` over inputs built by `setup` (setup untimed).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut measured = Duration::ZERO;
        let mut iterations = 0u64;
        let wall = Instant::now();
        while wall.elapsed() < TARGET_MEASURE_TIME {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
            iterations += 1;
        }
        self.iterations = iterations.max(1);
        self.elapsed = measured;
    }

    fn report(&self, name: &str) {
        if self.iterations == 0 {
            println!("{name:<40} (no measurement)");
            return;
        }
        let per_iter = self.elapsed.as_secs_f64() / self.iterations as f64;
        println!(
            "{name:<40} {:>12.3} ms/iter ({} iters)",
            per_iter * 1e3,
            self.iterations
        );
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
