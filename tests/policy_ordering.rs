//! Cross-crate integration: the paper's headline performance orderings
//! hold end to end in the simulator.

use computational_sprinting::sim::policy::PolicyKind;
use computational_sprinting::sim::runner::compare;
use computational_sprinting::sim::scenario::Scenario;
use computational_sprinting::telemetry::Telemetry;
use computational_sprinting::workloads::Benchmark;

#[test]
fn equilibrium_beats_heuristics_for_diverse_profiles() {
    // §6.2: E-T outperforms G and E-B; E-T is competitive with C-T.
    for benchmark in [Benchmark::DecisionTree, Benchmark::PageRank] {
        let scenario = Scenario::homogeneous(benchmark, 300, 500).unwrap();
        let cmp = compare(&scenario, &PolicyKind::ALL, &[5, 6], &mut Telemetry::noop()).unwrap();
        let tp = |k: PolicyKind| cmp.outcome(k).unwrap().tasks_per_agent_epoch;
        let (g, eb, et, ct) = (
            tp(PolicyKind::Greedy),
            tp(PolicyKind::ExponentialBackoff),
            tp(PolicyKind::EquilibriumThreshold),
            tp(PolicyKind::CooperativeThreshold),
        );
        assert!(et > 2.5 * g, "{benchmark}: E-T {et:.3} vs G {g:.3}");
        assert!(et > 1.2 * eb, "{benchmark}: E-T {et:.3} vs E-B {eb:.3}");
        let efficiency = et / ct;
        assert!(
            efficiency > 0.85,
            "{benchmark}: E-T achieves {efficiency:.2} of C-T"
        );
    }
}

#[test]
fn narrow_profiles_degenerate_to_greedy() {
    // §6.2: for Linear Regression and Correlation, "E-T performs as badly
    // as G and E-B ... E-T produces a greedy equilibrium".
    for benchmark in [Benchmark::LinearRegression, Benchmark::Correlation] {
        let scenario = Scenario::homogeneous(benchmark, 300, 500).unwrap();
        let cmp = compare(
            &scenario,
            &[
                PolicyKind::Greedy,
                PolicyKind::EquilibriumThreshold,
                PolicyKind::CooperativeThreshold,
            ],
            &[7],
            &mut Telemetry::noop(),
        )
        .unwrap();
        let et = cmp
            .normalized_to_greedy(PolicyKind::EquilibriumThreshold)
            .unwrap();
        assert!(
            et < 1.5,
            "{benchmark}: E-T should be near-greedy, got {et:.2}x G"
        );
        // And far from the cooperative upper bound (36–65% in the paper).
        let ct = cmp
            .normalized_to_greedy(PolicyKind::CooperativeThreshold)
            .unwrap();
        assert!(
            et / ct < 0.8,
            "{benchmark}: E-T/C-T = {:.2} should be poor",
            et / ct
        );
    }
}

#[test]
fn equilibrium_policy_rarely_trips() {
    // Figure 6: the equilibrium dynamics avoid power emergencies almost
    // entirely while greedy oscillates through them.
    let scenario = Scenario::homogeneous(Benchmark::Svm, 400, 600).unwrap();
    let greedy = scenario
        .execute(PolicyKind::Greedy, 9, &mut Telemetry::noop())
        .unwrap();
    let et = scenario
        .execute(PolicyKind::EquilibriumThreshold, 9, &mut Telemetry::noop())
        .unwrap();
    assert!(greedy.trips() > 20);
    assert!(et.trips() <= 3, "E-T trips = {}", et.trips());
}

#[test]
fn heterogeneous_mixes_preserve_the_ordering() {
    // Figure 9's claim at one representative mix.
    let scenario = Scenario::heterogeneous(
        &[
            Benchmark::DecisionTree,
            Benchmark::PageRank,
            Benchmark::LinearRegression,
            Benchmark::Kmeans,
        ],
        400,
        500,
    )
    .unwrap();
    let cmp = compare(
        &scenario,
        &[
            PolicyKind::Greedy,
            PolicyKind::ExponentialBackoff,
            PolicyKind::EquilibriumThreshold,
        ],
        &[11, 12],
        &mut Telemetry::noop(),
    )
    .unwrap();
    let et = cmp
        .normalized_to_greedy(PolicyKind::EquilibriumThreshold)
        .unwrap();
    let eb = cmp
        .normalized_to_greedy(PolicyKind::ExponentialBackoff)
        .unwrap();
    assert!(et > eb, "E-T {et:.2} must beat E-B {eb:.2}");
    assert!(et > 1.8, "E-T {et:.2} must clearly beat G");
}
