//! Cross-crate integration: the mean-field prediction must match what the
//! concrete simulator produces when the simulator's assumptions line up
//! with the analysis (iid utility draws), and stay close under realistic
//! phase persistence.

use computational_sprinting::game::{GameConfig, MeanFieldSolver, ThresholdStrategy};
use computational_sprinting::sim::engine::{run, SimConfig};
use computational_sprinting::sim::policies::ThresholdPolicy;
use computational_sprinting::stats::rng::SeedSequence;
use computational_sprinting::telemetry::Telemetry;
use computational_sprinting::workloads::phases::PhasedUtility;
use computational_sprinting::workloads::Benchmark;

/// Build iid (persistence = 1) utility streams so the simulation matches
/// the game's analytical assumptions exactly.
fn iid_streams(benchmark: Benchmark, n: usize, master_seed: u64) -> Vec<PhasedUtility> {
    let mut seq = SeedSequence::new(master_seed);
    (0..n)
        .map(|_| {
            PhasedUtility::new(benchmark.speedup_distribution(), 1.0, seq.next_seed())
                .expect("persistence 1 is valid")
        })
        .collect()
}

#[test]
fn mean_field_sprinter_count_matches_iid_simulation() {
    let config = GameConfig::paper_defaults();
    let density = Benchmark::DecisionTree.utility_density(512).unwrap();
    let eq = MeanFieldSolver::new(config)
        .run(&density, &mut Telemetry::noop())
        .unwrap();

    let mut streams = iid_streams(Benchmark::DecisionTree, 1000, 99);
    let mut policy =
        ThresholdPolicy::uniform("E-T", ThresholdStrategy::new(eq.threshold()).unwrap(), 1000)
            .unwrap();
    let sim_config = SimConfig::new(config, 2000, 99).unwrap();
    let result = run(
        &sim_config,
        &mut streams,
        &mut policy,
        &mut Telemetry::noop(),
    )
    .unwrap();

    // Equation 10's n_S versus the realized mean sprinter count. The
    // mean-field model ignores trips' interruption of the chain; with the
    // decision-tree equilibrium (P_trip ≈ 0) the two must agree within a
    // few percent.
    let predicted = eq.expected_sprinters();
    let simulated = result.mean_sprinters();
    let rel = (predicted - simulated).abs() / predicted;
    assert!(
        rel < 0.05,
        "predicted n_S = {predicted:.1}, simulated = {simulated:.1} (rel err {rel:.3})"
    );
}

#[test]
fn equation_9_sprint_rate_matches_iid_simulation() {
    let config = GameConfig::paper_defaults();
    let density = Benchmark::PageRank.utility_density(512).unwrap();
    let eq = MeanFieldSolver::new(config)
        .run(&density, &mut Telemetry::noop())
        .unwrap();

    // Single agent, huge band (never trips): the fraction of *active*
    // epochs that sprint must equal p_s.
    let solo = GameConfig::builder()
        .n_agents(1)
        .n_min(5.0)
        .n_max(6.0)
        .build()
        .unwrap();
    let mut streams = iid_streams(Benchmark::PageRank, 1, 7);
    let mut policy =
        ThresholdPolicy::uniform("E-T", ThresholdStrategy::new(eq.threshold()).unwrap(), 1)
            .unwrap();
    let sim_config = SimConfig::new(solo, 40_000, 7).unwrap();
    let result = run(
        &sim_config,
        &mut streams,
        &mut policy,
        &mut Telemetry::noop(),
    )
    .unwrap();

    let occ = result.occupancy();
    let active_epochs = occ.active_idle + occ.sprinting;
    let sim_ps = occ.sprinting as f64 / active_epochs as f64;
    assert!(
        (sim_ps - eq.sprint_probability()).abs() < 0.02,
        "Equation 9 p_s = {:.3}, simulated = {sim_ps:.3}",
        eq.sprint_probability()
    );
}

#[test]
fn phase_persistence_keeps_system_below_the_band() {
    // With realistic (correlated) phases the sprinter count drops below
    // the iid prediction — cooling consumes part of each high phase — so
    // the equilibrium stays safely below N_min. This is the documented
    // model-vs-simulation gap in EXPERIMENTS.md.
    let config = GameConfig::paper_defaults();
    let density = Benchmark::DecisionTree.utility_density(512).unwrap();
    let eq = MeanFieldSolver::new(config)
        .run(&density, &mut Telemetry::noop())
        .unwrap();

    let mut streams: Vec<PhasedUtility> = {
        let mut seq = SeedSequence::new(3);
        (0..1000)
            .map(|_| {
                PhasedUtility::new(
                    Benchmark::DecisionTree.speedup_distribution(),
                    3.0,
                    seq.next_seed(),
                )
                .unwrap()
            })
            .collect()
    };
    let mut policy =
        ThresholdPolicy::uniform("E-T", ThresholdStrategy::new(eq.threshold()).unwrap(), 1000)
            .unwrap();
    let result = run(
        &SimConfig::new(config, 1500, 3).unwrap(),
        &mut streams,
        &mut policy,
        &mut Telemetry::noop(),
    )
    .unwrap();
    assert!(result.mean_sprinters() < eq.expected_sprinters());
    assert!(result.mean_sprinters() > 0.5 * eq.expected_sprinters());
    // Finite-N phase correlation can brush the band at most rarely.
    assert!(result.trips() <= 2, "trips = {}", result.trips());
}
