//! Property-based tests on the core invariants, spanning the stats,
//! game, and simulation crates.

use proptest::prelude::*;

use computational_sprinting::game::bellman::{self, BellmanMethod};
use computational_sprinting::game::trip::TripCurve;
use computational_sprinting::game::{GameConfig, ThresholdStrategy};
use computational_sprinting::sim::engine::{run, SimConfig};
use computational_sprinting::sim::policies::ThresholdPolicy;
use computational_sprinting::stats::density::DiscreteDensity;
use computational_sprinting::stats::markov::active_cooling_stationary;
use computational_sprinting::telemetry::Telemetry;
use computational_sprinting::workloads::Benchmark;

fn arb_density() -> impl Strategy<Value = DiscreteDensity> {
    (
        prop::collection::vec(0.0f64..10.0, 4..64),
        0.0f64..5.0,
        0.1f64..20.0,
    )
        .prop_filter_map("needs positive mass", |(values, lo, width)| {
            DiscreteDensity::new(lo, lo + width, values).ok()
        })
}

proptest! {
    #[test]
    fn density_mass_is_one(d in arb_density()) {
        prop_assert!((d.total_mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cdf_tail_complement(d in arb_density(), q in 0.0f64..1.0) {
        let x = d.lo() + q * (d.hi() - d.lo());
        prop_assert!((d.cdf(x) + d.tail_mass(x) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cdf_is_monotone(d in arb_density(), a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        let xa = d.lo() + a * (d.hi() - d.lo());
        let xb = d.lo() + b * (d.hi() - d.lo());
        prop_assert!(d.cdf(xa) <= d.cdf(xb) + 1e-12);
    }

    #[test]
    fn quantile_inverts_cdf(d in arb_density(), q in 0.001f64..0.999) {
        let x = d.quantile(q).unwrap();
        prop_assert!((d.cdf(x) - q).abs() < 1e-6);
    }

    #[test]
    fn partial_expectation_bounded_by_mean_and_tail(
        d in arb_density(),
        q in 0.0f64..1.0,
    ) {
        let u = d.lo() + q * (d.hi() - d.lo());
        let pe = d.partial_expectation(u);
        // 0 <= PE(u) <= E[X] when support is non-negative; always
        // PE(u) <= tail * hi and PE(u) >= tail * max(u, lo).
        let tail = d.tail_mass(u);
        prop_assert!(pe <= tail * d.hi() + 1e-9);
        prop_assert!(pe >= tail * u.max(d.lo()) - 1e-9);
    }

    #[test]
    fn stationary_active_share_properties(
        ps in 0.0f64..=1.0,
        pc in 0.0f64..0.999,
    ) {
        let (pa, pcool) = active_cooling_stationary(ps, pc).unwrap();
        prop_assert!((pa + pcool - 1.0).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&pa));
        // More sprinting can only shrink the active share.
        if ps < 1.0 {
            let (pa2, _) = active_cooling_stationary((ps + 0.1).min(1.0), pc).unwrap();
            prop_assert!(pa2 <= pa + 1e-12);
        }
    }

    #[test]
    fn trip_curve_monotone_and_bounded(
        n_min in 1.0f64..500.0,
        width in 1.0f64..500.0,
        a in 0.0f64..1000.0,
        b in 0.0f64..1000.0,
    ) {
        let curve = TripCurve::new(n_min, n_min + width);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(curve.p_trip(lo) <= curve.p_trip(hi) + 1e-12);
        prop_assert!((0.0..=1.0).contains(&curve.p_trip(a)));
    }

    #[test]
    fn bellman_threshold_nonnegative_and_bounded(
        p_trip in 0.0f64..=1.0,
        pc in 0.0f64..0.95,
        pr in 0.0f64..=1.0,
    ) {
        let cfg = GameConfig::builder()
            .p_cooling(pc)
            .p_recovery(pr)
            .build()
            .unwrap();
        let density = Benchmark::DecisionTree.utility_density(128).unwrap();
        let sol = bellman::solve(&cfg, &density, p_trip, BellmanMethod::PolicyIteration)
            .unwrap();
        prop_assert!(sol.threshold >= 0.0);
        // The threshold never exceeds the best utility on offer.
        prop_assert!(sol.threshold <= density.hi());
        // Being active dominates both constrained states, and values are
        // non-negative.
        prop_assert!(sol.values.v_active >= sol.values.v_cooling - 1e-9);
        prop_assert!(sol.values.v_active >= sol.values.v_recovery - 1e-9);
        prop_assert!(sol.values.v_recovery >= -1e-9);
        // (No universal ordering between cooling and recovery: recovery
        // can beat cooling when it is short or when a high P_trip makes
        // cooling risky — cooling agents can still be swept into recovery
        // by others' trips, while Equation 6 lets recovery run out
        // undisturbed. The paper-parameter ordering is unit-tested in
        // `sprint_game::bellman`.)
    }

    #[test]
    fn policy_evaluation_never_beats_optimum(
        p_trip in 0.0f64..=1.0,
        alt in 0.0f64..16.0,
    ) {
        let cfg = GameConfig::paper_defaults();
        let density = Benchmark::PageRank.utility_density(128).unwrap();
        let opt = bellman::solve(&cfg, &density, p_trip, BellmanMethod::PolicyIteration)
            .unwrap();
        let v_alt = bellman::evaluate_threshold_policy(&cfg, &density, p_trip, alt)
            .unwrap()
            .v_active;
        prop_assert!(v_alt <= opt.values.v_active + 1e-6);
    }
}

proptest! {
    // Simulation properties are costlier; fewer cases suffice.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn simulation_conserves_agent_epochs(
        seed in 0u64..1000,
        threshold in 0.0f64..10.0,
        epochs in 10usize..120,
    ) {
        let n = 40u32;
        let game = GameConfig::builder()
            .n_agents(n)
            .n_min(10.0)
            .n_max(30.0)
            .build()
            .unwrap();
        let cfg = SimConfig::new(game, epochs, seed).unwrap();
        let mut streams =
            computational_sprinting::workloads::generator::Population::homogeneous(
                Benchmark::Svm,
                n as usize,
            )
            .unwrap()
            .spawn_streams(seed)
            .unwrap();
        let mut policy = ThresholdPolicy::uniform(
            "prop",
            ThresholdStrategy::new(threshold).unwrap(),
            n as usize,
        )
        .unwrap();
        let r = run(&cfg, &mut streams, &mut policy, &mut Telemetry::noop()).unwrap();
        // Every agent-epoch is accounted to exactly one condition.
        prop_assert_eq!(r.occupancy().total(), u64::from(n) * epochs as u64);
        // Throughput is bounded: at least recovery-share zero, at most
        // every agent sprinting at the maximum utility.
        prop_assert!(r.total_tasks() >= 0.0);
        prop_assert!(r.tasks_per_agent_epoch() <= 16.0);
        // Sprinter counts never exceed the population.
        prop_assert!(r.sprinters_per_epoch().iter().all(|&s| s <= n));
    }
}
