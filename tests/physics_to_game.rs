//! Cross-crate integration: physics → game parameters → equilibrium.
//!
//! The full pipeline the paper narrates: chip + PCM + breaker + UPS models
//! produce the Table-2 parameters, which parameterize the game, which
//! yields strategies consistent with the paper's equilibrium behavior.

use computational_sprinting::game::{GameConfig, MeanFieldSolver};
use computational_sprinting::power::rack::RackConfig;
use computational_sprinting::telemetry::Telemetry;
use computational_sprinting::workloads::Benchmark;

#[test]
fn derived_rack_parameters_drive_the_game() {
    let rack = RackConfig::paper_rack(1000);
    let params = rack.derive_game_parameters();

    // Physics reproduces Table 2.
    assert_eq!(params.n_min, 250);
    assert_eq!(params.n_max, 750);
    assert!((params.p_cooling - 0.5).abs() < 0.1);
    assert!((params.p_recovery - 0.88).abs() < 0.01);

    // Feed the derived parameters into the game.
    let config = GameConfig::builder()
        .n_agents(params.n_agents)
        .n_min(f64::from(params.n_min))
        .n_max(f64::from(params.n_max))
        .p_cooling(params.p_cooling)
        .p_recovery(params.p_recovery)
        .build()
        .unwrap();

    let density = Benchmark::DecisionTree.utility_density(512).unwrap();
    let derived_eq = MeanFieldSolver::new(config)
        .run(&density, &mut Telemetry::noop())
        .unwrap();
    let table2_eq = MeanFieldSolver::new(GameConfig::paper_defaults())
        .run(&density, &mut Telemetry::noop())
        .unwrap();

    // The physics-derived equilibrium matches the Table-2 equilibrium
    // closely (p_c differs by < 0.05).
    assert!(
        (derived_eq.threshold() - table2_eq.threshold()).abs() < 0.2,
        "derived threshold {} vs Table-2 threshold {}",
        derived_eq.threshold(),
        table2_eq.threshold()
    );
    assert!((derived_eq.sprint_probability() - table2_eq.sprint_probability()).abs() < 0.1);
}

#[test]
fn rack_scaling_preserves_band_fractions() {
    for n in [100u32, 400, 1000, 2000] {
        let params = RackConfig::paper_rack(n).derive_game_parameters();
        let n_f = f64::from(n);
        assert!(
            (f64::from(params.n_min) / n_f - 0.25).abs() < 0.01,
            "N = {n}: N_min = {}",
            params.n_min
        );
        assert!(
            (f64::from(params.n_max) / n_f - 0.75).abs() < 0.01,
            "N = {n}: N_max = {}",
            params.n_max
        );
    }
}

#[test]
fn epoch_and_cooling_durations_are_physical() {
    let params = RackConfig::paper_rack(1000).derive_game_parameters();
    // "We estimate a chip with paraffin wax can sprint with durations on
    // the order of 150 seconds ... cooling duration on the order of 300
    // seconds, twice the sprint's duration."
    assert!((120.0..=180.0).contains(&params.epoch_seconds));
    assert!((250.0..=380.0).contains(&params.cooling_seconds));
    let ratio = params.cooling_seconds / params.epoch_seconds;
    assert!((1.6..=2.6).contains(&ratio), "cooling/sprint ratio {ratio}");
}
