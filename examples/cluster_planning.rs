//! Facility-level planning: how much can you oversubscribe a cluster?
//!
//! Four racks of sprinting chips share a facility supply. The facility
//! architect picks how much total sprint headroom to provision; this
//! example sweeps that choice and shows the failure mode (rack-local
//! equilibria overwhelming the facility) and the fix (coordinator-assigned
//! cooperative thresholds on the facility-aware band).
//!
//! ```text
//! cargo run --release --example cluster_planning
//! ```

use computational_sprinting::game::cooperative::CooperativeSearch;
use computational_sprinting::game::{GameConfig, MeanFieldSolver};
use computational_sprinting::sim::cluster::{simulate_cluster, ClusterConfig};
use computational_sprinting::sim::policies::ThresholdPolicy;
use computational_sprinting::sim::SprintPolicy;
use computational_sprinting::telemetry::Telemetry;
use computational_sprinting::workloads::generator::Population;
use computational_sprinting::workloads::Benchmark;

const RACKS: u32 = 4;
const PER_RACK: u32 = 200;
const EPOCHS: usize = 600;

fn policies(threshold: f64) -> Result<Vec<Box<dyn SprintPolicy>>, Box<dyn std::error::Error>> {
    (0..RACKS)
        .map(|_| {
            let p = ThresholdPolicy::uniform(
                "cluster",
                computational_sprinting::game::ThresholdStrategy::new(threshold)?,
                PER_RACK as usize,
            )?;
            Ok(Box::new(p) as Box<dyn SprintPolicy>)
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rack_game = GameConfig::builder()
        .n_agents(PER_RACK)
        .n_min(f64::from(PER_RACK) * 0.25)
        .n_max(f64::from(PER_RACK) * 0.75)
        .build()?;
    let density = Benchmark::DecisionTree.utility_density(512)?;
    let rack_eq = MeanFieldSolver::new(rack_game).run(&density, &mut Telemetry::noop())?;
    println!(
        "{RACKS} racks x {PER_RACK} DecisionTree agents; rack-local equilibrium \
         threshold {:.2}\n",
        rack_eq.threshold()
    );
    println!(
        "{:>16} {:>13} {:>9} {:>13} {:>9}",
        "facility budget", "naive tasks", "fac trips", "aware tasks", "fac trips"
    );

    // Facility sprint budget as a fraction of the racks' combined N_min.
    for frac in [1.5, 1.0, 0.5, 0.25] {
        let fac_min = f64::from(RACKS * PER_RACK) * 0.25 * frac;
        let config =
            ClusterConfig::new(rack_game, RACKS, fac_min, fac_min * 3.0, 0.95, EPOCHS, 33)?;

        let mut streams =
            Population::homogeneous(Benchmark::DecisionTree, (RACKS * PER_RACK) as usize)?
                .spawn_streams(33)?;
        let mut naive = policies(rack_eq.threshold())?;
        let naive_result = simulate_cluster(&config, &mut streams, &mut naive)?;

        let aware_game = config.facility_aware_band()?;
        let aware_ct = CooperativeSearch::default_resolution().solve(&aware_game, &density)?;
        let mut streams =
            Population::homogeneous(Benchmark::DecisionTree, (RACKS * PER_RACK) as usize)?
                .spawn_streams(33)?;
        let mut aware = policies(aware_ct.threshold)?;
        let aware_result = simulate_cluster(&config, &mut streams, &mut aware)?;

        println!(
            "{frac:>15.2}x {:>13.3} {:>9} {:>13.3} {:>9}",
            naive_result.tasks_per_agent_epoch,
            naive_result.facility_trips,
            aware_result.tasks_per_agent_epoch,
            aware_result.facility_trips
        );
    }

    println!(
        "\nbelow ~1x the combined rack headroom, rack-local strategies collapse the\n\
         facility; coordinator-enforced cooperative thresholds degrade gracefully\n\
         with the budget instead."
    );
    Ok(())
}
