//! Quickstart: solve the sprinting game for one application.
//!
//! Builds the paper's Table-2 configuration, profiles the representative
//! Decision Tree workload, runs Algorithm 1 to the mean-field equilibrium,
//! and verifies that no agent can profit by deviating.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use computational_sprinting::game::{GameConfig, MeanFieldSolver};
use computational_sprinting::telemetry::Telemetry;
use computational_sprinting::workloads::Benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The game: 1000 chips behind one breaker (paper Table 2).
    let config = GameConfig::paper_defaults();
    println!(
        "rack: N = {}, band = [{}, {}], p_c = {}, p_r = {}, δ = {}",
        config.n_agents(),
        config.n_min(),
        config.n_max(),
        config.p_cooling(),
        config.p_recovery(),
        config.discount()
    );

    // 2. The workload profile: f(u) over per-epoch sprint speedups.
    let benchmark = Benchmark::DecisionTree;
    let density = benchmark.utility_density(512)?;
    println!(
        "\nworkload: {} (mean speedup {:.2}x, sd {:.2})",
        benchmark.full_name(),
        density.mean(),
        density.variance().sqrt()
    );

    // 3. Algorithm 1: iterate threshold <-> tripping probability to the
    //    mean-field equilibrium.
    let equilibrium = MeanFieldSolver::new(config).run(&density, &mut Telemetry::noop())?;
    println!("\nequilibrium:");
    println!("  sprint threshold u_T   = {:.3}", equilibrium.threshold());
    println!(
        "  P(sprint | active)     = {:.3}",
        equilibrium.sprint_probability()
    );
    println!(
        "  expected sprinters n_S = {:.1}",
        equilibrium.expected_sprinters()
    );
    println!(
        "  P(trip breaker)        = {:.3}",
        equilibrium.trip_probability()
    );

    // 4. Verify: best-response fixed point and no profitable deviation.
    let check = equilibrium.verify(&config, &density, 100)?;
    println!("\nverification:");
    println!(
        "  threshold residual     = {:.2e}",
        check.threshold_residual
    );
    println!("  trip residual          = {:.2e}", check.trip_residual);
    println!(
        "  max deviation gain     = {:.2e}",
        check.max_deviation_gain
    );
    println!("  is equilibrium (1e-4)  = {}", check.holds(1e-4));
    Ok(())
}
