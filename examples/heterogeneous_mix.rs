//! Heterogeneous rack: the coordinator assigns tailored strategies.
//!
//! Registers profiles for four different applications sharing one rack,
//! runs the coordinator's offline analysis (the heterogeneous mean-field
//! solve), and shows how thresholds differ per type — then simulates the
//! assigned strategies against Greedy.
//!
//! ```text
//! cargo run --release --example heterogeneous_mix
//! ```

use computational_sprinting::game::coordinator::Coordinator;
use computational_sprinting::game::GameConfig;
use computational_sprinting::sim::policy::PolicyKind;
use computational_sprinting::sim::scenario::Scenario;
use computational_sprinting::telemetry::Telemetry;
use computational_sprinting::workloads::Benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mix = [
        Benchmark::LinearRegression,
        Benchmark::PageRank,
        Benchmark::Svm,
        Benchmark::Als,
    ];
    let config = GameConfig::builder()
        .n_agents(1000)
        .n_min(250.0)
        .n_max(750.0)
        .build()?;

    // Offline: agents report profiles; the coordinator optimizes.
    let mut coordinator = Coordinator::new(config);
    for b in mix {
        coordinator.register_profile(b.name(), b.utility_density(512)?, 250);
    }
    let assignments = coordinator.run(&mut Telemetry::noop())?;

    println!(
        "coordinator assignments (shared P_trip = {:.3}):\n",
        assignments.trip_probability()
    );
    println!(
        "{:<14} {:>11} {:>11} {:>11}",
        "type", "threshold", "P(sprint)", "sprinters"
    );
    for t in assignments.equilibrium().types() {
        println!(
            "{:<14} {:>11.3} {:>11.3} {:>11.1}",
            t.name, t.threshold, t.p_sprint, t.expected_sprinters
        );
    }

    // Online: simulate the mix under the assigned strategies vs Greedy.
    let scenario = Scenario::heterogeneous(&mix, 1000, 500)?;
    let greedy = scenario.execute(PolicyKind::Greedy, 42, &mut Telemetry::noop())?;
    let equilibrium =
        scenario.execute(PolicyKind::EquilibriumThreshold, 42, &mut Telemetry::noop())?;
    println!(
        "\nsimulated throughput: greedy {:.3}, equilibrium {:.3} ({:.1}x better), \
         trips {} vs {}",
        greedy.tasks_per_agent_epoch(),
        equilibrium.tasks_per_agent_epoch(),
        equilibrium.tasks_per_agent_epoch() / greedy.tasks_per_agent_epoch(),
        greedy.trips(),
        equilibrium.trips()
    );
    Ok(())
}
