//! Capacity planning: from physical components to game parameters.
//!
//! A rack architect chooses a PCM heat sink and UPS battery; this example
//! derives the resulting sprint envelope, breaker band, and game
//! parameters, then shows how those choices move the equilibrium — the
//! paper's Figure 13 sensitivity story, driven from physics instead of
//! abstract probabilities.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use computational_sprinting::game::{GameConfig, MeanFieldSolver};
use computational_sprinting::power::chip::ChipModel;
use computational_sprinting::power::pcm::{PcmHeatSink, PhaseChangeMaterial};
use computational_sprinting::power::rack::RackConfig;
use computational_sprinting::power::thermal::{SprintEnvelope, ThermalPackage};
use computational_sprinting::telemetry::Telemetry;
use computational_sprinting::workloads::Benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Baseline: the paper's rack, all parameters derived.
    let rack = RackConfig::paper_rack(1000);
    let params = rack.derive_game_parameters();
    println!("paper rack (37 g paraffin, 8.3x recharge UPS):");
    println!(
        "  epoch {:.0} s, cooling {:.0} s, band [{}, {}], p_c {:.2}, p_r {:.2}",
        params.epoch_seconds,
        params.cooling_seconds,
        params.n_min,
        params.n_max,
        params.p_cooling,
        params.p_recovery
    );

    // Sweep the PCM charge: more wax = longer sprints AND longer cooling.
    println!("\nPCM mass sweep (chip fixed):");
    println!(
        "{:>10} {:>12} {:>12} {:>8} {:>12}",
        "wax (g)", "sprint (s)", "cooling (s)", "p_c", "threshold"
    );
    let chip = ChipModel::xeon_e5_like();
    let density = Benchmark::DecisionTree.utility_density(512)?;
    for grams in [20.0, 37.0, 60.0, 100.0] {
        let sink = PcmHeatSink::new(PhaseChangeMaterial::paraffin_wax(), grams / 1000.0)?;
        let package = ThermalPackage::new(sink, 0.05, 0.30, 25.0, 150.0)?;
        let envelope = SprintEnvelope::derive(&chip, &package)?;
        let config = GameConfig::builder()
            .p_cooling(envelope.p_cooling())
            .build()?;
        let eq = MeanFieldSolver::new(config).run(&density, &mut Telemetry::noop())?;
        println!(
            "{grams:>10.0} {:>12.0} {:>12.0} {:>8.2} {:>12.3}",
            envelope.sprint_duration_s,
            envelope.cooling_duration_s,
            envelope.p_cooling(),
            eq.threshold()
        );
    }
    println!(
        "\nnote: p_c barely moves with mass (both durations scale together), so the\n\
         threshold is stable — sprint *duration* is the architect's real lever."
    );

    // Sweep the UPS recharge ratio: slower recharge = longer recovery.
    println!("\nUPS recharge-ratio sweep:");
    println!(
        "{:>10} {:>8} {:>12} {:>10}",
        "ratio", "p_r", "threshold", "P(trip)"
    );
    for ratio in [2.0, 5.0, 8.33, 15.0, 40.0] {
        let p_r = 1.0 - 1.0 / ratio;
        let config = GameConfig::builder().p_recovery(p_r).build()?;
        let eq = MeanFieldSolver::new(config).run(&density, &mut Telemetry::noop())?;
        println!(
            "{ratio:>10.2} {p_r:>8.3} {:>12.3} {:>10.3}",
            eq.threshold(),
            eq.trip_probability()
        );
    }
    println!(
        "\nthresholds are insensitive to recovery cost (Figure 13): each agent sprints\n\
         for her own performance while hoping others do not trip the breaker."
    );
    Ok(())
}
