//! Thermal trace of a sprint: watch the PCM melt and refreeze.
//!
//! Steps the lumped-RC + latent-heat model through one full
//! sprint-then-cool cycle of the paper's chip and prints the junction
//! temperature and molten fraction — the physics that set the game's
//! epoch length and `p_c`.
//!
//! ```text
//! cargo run --release --example thermal_trace
//! ```

use computational_sprinting::power::chip::{ChipModel, ExecutionMode};
use computational_sprinting::power::thermal::ThermalPackage;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let chip = ChipModel::xeon_e5_like();
    let package = ThermalPackage::paper_package();
    let p_nominal = chip.power_w(ExecutionMode::Nominal);
    let p_sprint = chip.power_w(ExecutionMode::Sprint);

    let sprint_s = package.sprint_duration_s(p_nominal, p_sprint)?;
    let cooling_s = package.cooling_duration_s(p_nominal, 3.0)?;
    println!(
        "chip: nominal {p_nominal:.1} W, sprint {p_sprint:.1} W  |  \
         max sprint {sprint_s:.0} s, cooling {cooling_s:.0} s\n"
    );

    let mut state = package.nominal_steady_state(p_nominal)?;
    println!(
        "{:>8} {:>10} {:>12} {:>8}  phase",
        "t (s)", "power (W)", "T_junc (°C)", "molten"
    );
    let dt = 1.0;
    let total = sprint_s + cooling_s + 60.0;
    let mut t = 0.0;
    while t <= total {
        let sprinting = t < sprint_s;
        let power = if sprinting { p_sprint } else { p_nominal };
        if (t as u64).is_multiple_of(20) {
            println!(
                "{t:>8.0} {power:>10.1} {:>12.1} {:>7.0}%  {}",
                package.junction_temp_c(state.node_temp_c, power),
                state.melt_fraction * 100.0,
                if sprinting { "SPRINT" } else { "cooling" }
            );
        }
        package.step(&mut state, power, dt);
        t += dt;
    }
    println!(
        "\nthe wax pins the junction near its melting point for the whole sprint,\n\
         then takes ~2x as long to refreeze — hence epoch ≈ 150 s and p_c ≈ 0.5."
    );
    Ok(())
}
