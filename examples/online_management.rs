//! The Figure-4 management loop, end to end.
//!
//! Demonstrates the paper's runtime split (§2.3): agents profile their
//! applications online, ship density profiles to the coordinator, receive
//! tailored threshold strategies, and self-enforce them epoch by epoch.
//! Mid-run, the application mix changes; the coordinator re-optimizes and
//! re-assigns — the only moments requiring global communication.
//!
//! ```text
//! cargo run --release --example online_management
//! ```

use computational_sprinting::game::agent::{Decision, OnlineAgent};
use computational_sprinting::game::coordinator::Coordinator;
use computational_sprinting::game::GameConfig;
use computational_sprinting::telemetry::Telemetry;
use computational_sprinting::workloads::phases::PhasedUtility;
use computational_sprinting::workloads::profile::UtilityProfile;
use computational_sprinting::workloads::Benchmark;

const AGENTS_PER_TYPE: u32 = 500;
const PROFILE_EPOCHS: usize = 3000;

/// Offline step: profile a benchmark from sampled epochs (not the
/// analytic density — this is what a real agent would measure).
fn measured_profile(benchmark: Benchmark, seed: u64) -> UtilityProfile {
    let mut stream = PhasedUtility::for_benchmark(benchmark, seed).expect("valid persistence");
    let samples: Vec<f64> = (0..PROFILE_EPOCHS).map(|_| stream.next_utility()).collect();
    UtilityProfile::from_samples(&samples).expect("non-empty profile")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = GameConfig::paper_defaults();
    let mut coordinator = Coordinator::new(config);

    // Phase 1: the rack runs DecisionTree + PageRank.
    println!("phase 1: registering measured profiles (decision, pagerank)");
    for b in [Benchmark::DecisionTree, Benchmark::PageRank] {
        let profile = measured_profile(b, 7);
        println!(
            "  {}: measured mean {:.2}, sd {:.2} over {} epochs",
            b.name(),
            profile.mean(),
            profile.std_dev(),
            3000
        );
        coordinator.register_profile(b.name(), profile.into_density(), AGENTS_PER_TYPE);
    }
    let assignments = coordinator.run(&mut Telemetry::noop())?;
    println!(
        "  assignments (P_trip = {:.3}):",
        assignments.trip_probability()
    );
    for (name, strategy) in assignments.iter() {
        println!("    {name:<10} -> {strategy}");
    }

    // Online: one agent executes its assigned strategy with a predictor.
    let strategy = assignments
        .strategy_for("pagerank")
        .expect("pagerank registered");
    let mut agent = OnlineAgent::new(strategy);
    let mut stream = PhasedUtility::for_benchmark(Benchmark::PageRank, 99)?;
    let mut sprints = 0;
    for epoch in 0..20 {
        let measured = stream.next_utility();
        let decision = agent.begin_epoch(measured);
        if decision == Decision::Sprint {
            sprints += 1;
        }
        if epoch < 6 {
            println!(
                "    epoch {epoch}: utility {measured:5.2} -> {decision:?} (predictor: {:?})",
                agent
                    .predicted_utility()
                    .map(|p| (p * 100.0).round() / 100.0)
            );
        }
        // Resolve transitions locally; no coordinator involvement.
        agent.end_epoch(decision, false, true, true);
    }
    println!(
        "    ... agent sprinted {sprints}/20 epochs (sprint rate {:.2})",
        agent.sprint_rate()
    );

    // Phase 2: the mix changes — PageRank jobs drain, Linear Regression
    // arrives. Only now does global communication recur.
    println!("\nphase 2: mix change (pagerank -> linear); coordinator re-optimizes");
    coordinator.register_profile(
        "pagerank",
        measured_profile(Benchmark::PageRank, 11).into_density(),
        0,
    );
    coordinator.register_profile(
        "linear",
        measured_profile(Benchmark::LinearRegression, 13).into_density(),
        AGENTS_PER_TYPE,
    );
    // Rebalance: decision keeps its 500; linear takes pagerank's slots.
    let reassigned = coordinator.run(&mut Telemetry::noop())?;
    println!(
        "  assignments (P_trip = {:.3}):",
        reassigned.trip_probability()
    );
    for (name, strategy) in reassigned.iter() {
        println!("    {name:<10} -> {strategy}");
    }
    // The running agent just swaps its strategy object; everything else
    // is local.
    if let Some(s) = reassigned.strategy_for("decision") {
        agent.assign(s);
        println!("  agent re-assigned: {s}");
    }
    Ok(())
}
