//! Rack dynamics: simulate the four management policies head to head.
//!
//! Runs a 500-chip rack of Decision Tree agents for 600 epochs under
//! Greedy, Exponential Backoff, Equilibrium Threshold, and Cooperative
//! Threshold, and prints the Figure 6/7/8-style comparison.
//!
//! ```text
//! cargo run --release --example rack_dynamics
//! ```

use computational_sprinting::sim::policy::PolicyKind;
use computational_sprinting::sim::runner::compare;
use computational_sprinting::sim::scenario::Scenario;
use computational_sprinting::telemetry::Telemetry;
use computational_sprinting::workloads::Benchmark;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::homogeneous(Benchmark::DecisionTree, 500, 600)?;
    println!(
        "rack: {} agents, band [{}, {}], {} epochs\n",
        scenario.game().n_agents(),
        scenario.game().n_min(),
        scenario.game().n_max(),
        scenario.epochs()
    );

    let comparison = compare(
        &scenario,
        &PolicyKind::ALL,
        &[1, 2, 3],
        &mut Telemetry::noop(),
    )?;

    println!(
        "{:<24} {:>10} {:>8} {:>8} {:>10} {:>9} {:>7}",
        "policy", "tasks/ep", "vs G", "active%", "recovery%", "sprint%", "trips"
    );
    for outcome in comparison.outcomes() {
        let norm = comparison
            .normalized_to_greedy(outcome.policy)
            .expect("greedy included");
        println!(
            "{:<24} {:>10.3} {:>8.2} {:>8.1} {:>10.1} {:>9.1} {:>7.1}",
            outcome.policy.to_string(),
            outcome.tasks_per_agent_epoch,
            norm,
            outcome.occupancy[0] * 100.0,
            outcome.occupancy[2] * 100.0,
            outcome.occupancy[3] * 100.0,
            outcome.trips
        );
    }

    println!(
        "\nthe equilibrium policy sprints only when an epoch's utility clears its \
         optimized threshold,\nkeeping sprinters below the breaker band — no emergencies, \
         no idle recovery."
    );
    Ok(())
}
